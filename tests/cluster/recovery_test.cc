// Checkpointed-recovery tests: bounded WAL replay below the flush
// checkpoint, checkpoint corruption falling back to full replay (never
// data loss), WAL rotation + GC keeping disk bounded, failure-isolated
// per-region failover, and chained double failures.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "fault/fault_env.h"
#include "util/random.h"

namespace diffindex {
namespace {

std::string SpreadRow(int i, const char* tag) {
  char row[32];
  snprintf(row, sizeof(row), "%02x-%s%d", (i * 7) % 256, tag, i);
  return row;
}

uint64_t CounterValue(Cluster* cluster, const char* name) {
  return cluster->metrics()->GetCounter(name)->value();
}

// Two servers, one region each: every put routes deterministically, so
// the replay/skip counters can be checked exactly.
class BoundedReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 2;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
    ASSERT_TRUE(client_->RefreshLayout().ok());
  }

  // Puts `n` spread rows and returns how many routed to server 1.
  int PutSpread(int n, const char* tag, const std::string& value) {
    int on_victim = 0;
    for (int i = 0; i < n; i++) {
      const std::string row = SpreadRow(i, tag);
      EXPECT_TRUE(client_->PutColumn("t", row, "c", value).ok());
      RegionInfoWire info;
      EXPECT_TRUE(client_->RouteRow("t", row, &info).ok());
      if (info.server_id == 1) on_victim++;
    }
    return on_victim;
  }

  void ExpectAllReadable(int n, const char* tag, const std::string& value) {
    for (int i = 0; i < n; i++) {
      const std::string row = SpreadRow(i, tag);
      std::string got;
      ASSERT_TRUE(
          client_->GetCell("t", row, "c", kMaxTimestamp, &got).ok())
          << row;
      EXPECT_EQ(got, value) << row;
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(BoundedReplayTest, ReplaysOnlyEditsPastTheCheckpoint) {
  // Write N, flush (writes the checkpoints), write M, kill: recovery must
  // replay exactly the victim's M post-flush edits and skip exactly its N
  // checkpointed ones.
  const int pre_on_victim = PutSpread(40, "pre", "v1");
  ASSERT_TRUE(client_->FlushTable("t").ok());
  const int post_on_victim = PutSpread(25, "post", "v2");
  ASSERT_GT(pre_on_victim, 0);
  ASSERT_GT(post_on_victim, 0);

  const uint64_t replayed_before = CounterValue(cluster_.get(), "wal.replayed");
  const uint64_t skipped_before =
      CounterValue(cluster_.get(), "wal.replay_skipped");
  const uint64_t ckpt_writes = CounterValue(cluster_.get(), "checkpoint.writes");
  EXPECT_GE(ckpt_writes, 2u);  // one per region at the table flush

  ASSERT_TRUE(cluster_->KillServer(1).ok());

  EXPECT_EQ(CounterValue(cluster_.get(), "wal.replayed") - replayed_before,
            static_cast<uint64_t>(post_on_victim));
  EXPECT_EQ(
      CounterValue(cluster_.get(), "wal.replay_skipped") - skipped_before,
      static_cast<uint64_t>(pre_on_victim));

  ASSERT_TRUE(client_->RefreshLayout().ok());
  ExpectAllReadable(40, "pre", "v1");
  ExpectAllReadable(25, "post", "v2");
}

TEST_F(BoundedReplayTest, CheckpointsDisabledReplaysEverything) {
  // The bench baseline: with recovery_use_checkpoints off, the same
  // schedule replays the full log (nothing skipped).
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 2;
  options.server.recovery_use_checkpoints = false;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());

  int on_victim = 0;
  for (int i = 0; i < 30; i++) {
    const std::string row = SpreadRow(i, "r");
    ASSERT_TRUE(client->PutColumn("t", row, "c", "v").ok());
    RegionInfoWire info;
    ASSERT_TRUE(client->RouteRow("t", row, &info).ok());
    if (info.server_id == 1) on_victim++;
  }
  ASSERT_TRUE(client->FlushTable("t").ok());
  ASSERT_GT(on_victim, 0);

  const uint64_t replayed_before = CounterValue(cluster.get(), "wal.replayed");
  ASSERT_TRUE(cluster->KillServer(1).ok());
  // Everything the victim logged is replayed despite the flush.
  EXPECT_EQ(CounterValue(cluster.get(), "wal.replayed") - replayed_before,
            static_cast<uint64_t>(on_victim));
  EXPECT_EQ(CounterValue(cluster.get(), "wal.replay_skipped"), 0u);

  ASSERT_TRUE(client->RefreshLayout().ok());
  for (int i = 0; i < 30; i++) {
    std::string got;
    ASSERT_TRUE(
        client->GetCell("t", SpreadRow(i, "r"), "c", kMaxTimestamp, &got)
            .ok());
    EXPECT_EQ(got, "v");
  }
}

TEST_F(BoundedReplayTest, CorruptCheckpointForcesFullReplayNoDataLoss) {
  const int pre_on_victim = PutSpread(30, "pre", "v1");
  ASSERT_TRUE(client_->FlushTable("t").ok());
  const int post_on_victim = PutSpread(20, "post", "v2");
  ASSERT_GT(pre_on_victim, 0);

  // Scribble over the victim's region checkpoint. A corrupt checkpoint
  // must widen replay to the full log, never narrow it.
  uint64_t victim_region = 0;
  for (const auto& info : cluster_->master()->regions()) {
    if (info.server_id == 1) victim_region = info.region_id;
  }
  const std::string ckpt_path =
      RegionCheckpointPath(cluster_->data_root(), "t", victim_region);
  ASSERT_TRUE(Env::Default()->FileExists(ckpt_path));
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(ckpt_path, &file).ok());
    ASSERT_TRUE(file->Append("garbage, not a checkpoint").ok());
    ASSERT_TRUE(file->Close().ok());
  }

  const uint64_t corrupt_before =
      CounterValue(cluster_.get(), "checkpoint.corrupt");
  const uint64_t replayed_before = CounterValue(cluster_.get(), "wal.replayed");
  const uint64_t skipped_before =
      CounterValue(cluster_.get(), "wal.replay_skipped");
  ASSERT_TRUE(cluster_->KillServer(1).ok());

  EXPECT_EQ(CounterValue(cluster_.get(), "checkpoint.corrupt") - corrupt_before,
            1u);
  // Full replay: pre-flush edits come back too (idempotent under the
  // explicit-timestamp rule), nothing is skipped for that region.
  EXPECT_EQ(CounterValue(cluster_.get(), "wal.replayed") - replayed_before,
            static_cast<uint64_t>(pre_on_victim + post_on_victim));
  EXPECT_EQ(
      CounterValue(cluster_.get(), "wal.replay_skipped") - skipped_before, 0u);

  ASSERT_TRUE(client_->RefreshLayout().ok());
  ExpectAllReadable(30, "pre", "v1");
  ExpectAllReadable(20, "post", "v2");
}

TEST_F(BoundedReplayTest, TruncatedCheckpointForcesFullReplayNoDataLoss) {
  const int pre_on_victim = PutSpread(24, "pre", "v1");
  ASSERT_TRUE(client_->FlushTable("t").ok());
  PutSpread(16, "post", "v2");
  ASSERT_GT(pre_on_victim, 0);

  uint64_t victim_region = 0;
  for (const auto& info : cluster_->master()->regions()) {
    if (info.server_id == 1) victim_region = info.region_id;
  }
  const std::string ckpt_path =
      RegionCheckpointPath(cluster_->data_root(), "t", victim_region);
  {
    // Truncate mid-header: shorter than the CRC frame.
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(Env::Default()->NewWritableFile(ckpt_path, &file).ok());
    ASSERT_TRUE(file->Append("abc").ok());
    ASSERT_TRUE(file->Close().ok());
  }

  const uint64_t corrupt_before =
      CounterValue(cluster_.get(), "checkpoint.corrupt");
  ASSERT_TRUE(cluster_->KillServer(1).ok());
  EXPECT_EQ(CounterValue(cluster_.get(), "checkpoint.corrupt") - corrupt_before,
            1u);

  ASSERT_TRUE(client_->RefreshLayout().ok());
  ExpectAllReadable(24, "pre", "v1");
  ExpectAllReadable(16, "post", "v2");
}

TEST(RecoveryTest, MissingWalDirStillRecovers) {
  // A server that never logged anything (or whose dir was already
  // retired) must not wedge failover: replay just finds no files.
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 4;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  for (int i = 0; i < 32; i++) {
    ASSERT_TRUE(client->PutColumn("t", SpreadRow(i, "r"), "c", "v").ok());
  }
  // Everything durable in SSTables; then make the WAL dir vanish.
  ASSERT_TRUE(client->FlushTable("t").ok());
  ASSERT_TRUE(
      Env::Default()
          ->RemoveDirRecursively(cluster->server(1)->wal_dir())
          .ok());

  ASSERT_TRUE(cluster->KillServer(1).ok());
  ASSERT_TRUE(client->RefreshLayout().ok());
  for (int i = 0; i < 32; i++) {
    std::string got;
    ASSERT_TRUE(
        client->GetCell("t", SpreadRow(i, "r"), "c", kMaxTimestamp, &got)
            .ok());
    EXPECT_EQ(got, "v");
  }
}

TEST(RecoveryTest, WalDiskBoundedUnderSustainedLoad) {
  // Small segments + small memtables: sustained writes roll the WAL on
  // the append path and flush-triggered GC deletes covered segments, so
  // the directory never grows without bound.
  ClusterOptions options;
  options.num_servers = 1;
  options.regions_per_table = 2;
  options.server.wal_segment_bytes = 4 << 10;
  options.server.lsm.memtable_flush_bytes = 16 << 10;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  Random rng(11);
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(
        client->PutColumn("t", SpreadRow(i, "w"), "c", rng.RandomBytes(200))
            .ok());
  }
  ASSERT_TRUE(client->FlushTable("t").ok());

  EXPECT_GT(CounterValue(cluster.get(), "wal.gc_deleted"), 0u);
  const int64_t segments =
      cluster->metrics()->GetGauge("wal.segments")->value();
  EXPECT_GE(segments, 1);
  EXPECT_LE(segments, 2);
  std::vector<std::string> wal_files;
  ASSERT_TRUE(Env::Default()
                  ->GetChildren(cluster->server(1)->wal_dir(), &wal_files)
                  .ok());
  EXPECT_LE(wal_files.size(), 2u);

  // And the data is all there.
  for (int i = 0; i < 600; i += 37) {
    std::string got;
    ASSERT_TRUE(
        client->GetCell("t", SpreadRow(i, "w"), "c", kMaxTimestamp, &got)
            .ok())
        << i;
  }
}

TEST(RecoveryTest, PersistentOpenFailureIsolatedToOneRegion) {
  // Regression for the phase-1 early-return bug: one region's persistent
  // open failure used to abort the whole recovery, leaving every sibling
  // assigned-but-never-opened. Now the siblings must serve.
  fault::FaultEnv fenv(Env::Default());
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 6;
  options.master.recovery_open_attempts = 2;  // keep the give-up fast
  options.client.retry_backoff_ms = 1;
  options.client.retry_backoff_max_ms = 4;
  options.env = &fenv;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(client->PutColumn("t", SpreadRow(i, "r"), "c", "v").ok());
  }
  // Flush so every region has a manifest (the poisoned read target) and
  // the victim's data survives without replay.
  ASSERT_TRUE(client->FlushTable("t").ok());

  // Poison ONE victim region's manifest reads: its open fails on every
  // survivor, no matter where the master reassigns it.
  uint64_t poisoned_region = 0;
  for (const auto& info : cluster->master()->regions()) {
    if (info.server_id == 1) poisoned_region = info.region_id;
  }
  fault::FaultEnv::Rule rule;
  rule.path_substring =
      "tables/t/r" + std::to_string(poisoned_region) + "/TABLES";
  rule.kind = fault::FaultEnv::Rule::Kind::kReadError;
  fenv.AddRule(rule);

  const uint64_t failed_before = CounterValue(cluster.get(), "recovery.failed");
  ASSERT_TRUE(cluster->SilentlyCrashServer(1).ok());
  Status dead = cluster->master()->OnServerDead(1);
  EXPECT_FALSE(dead.ok());  // the poisoned region's failure is reported
  EXPECT_EQ(CounterValue(cluster.get(), "recovery.failed") - failed_before,
            1u);
  EXPECT_GT(CounterValue(cluster.get(), "recovery.reassigned"), 0u);

  // Every row OUTSIDE the poisoned region still serves.
  ASSERT_TRUE(client->RefreshLayout().ok());
  int outside = 0;
  for (int i = 0; i < 64; i++) {
    const std::string row = SpreadRow(i, "r");
    RegionInfoWire info;
    ASSERT_TRUE(client->RouteRow("t", row, &info).ok());
    if (info.region_id == poisoned_region) continue;
    outside++;
    std::string got;
    ASSERT_TRUE(client->GetCell("t", row, "c", kMaxTimestamp, &got).ok())
        << row;
    EXPECT_EQ(got, "v");
  }
  EXPECT_GT(outside, 0);
  fenv.ClearRules();
}

TEST(RecoveryTest, SecondServerDiesMidRecovery) {
  // Chained failure: while server 1's regions are being recovered, a
  // second server (often one of the new owners) dies too. Whatever the
  // interleaving, every acked write must survive to the final layout.
  ClusterOptions options;
  options.num_servers = 4;
  options.regions_per_table = 8;
  options.client.retry_backoff_ms = 1;
  options.client.retry_backoff_max_ms = 8;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  const int kRows = 150;
  for (int i = 0; i < kRows; i++) {
    ASSERT_TRUE(
        client->PutColumn("t", SpreadRow(i, "d"), "c", std::to_string(i))
            .ok());
  }

  ASSERT_TRUE(cluster->SilentlyCrashServer(1).ok());
  std::atomic<bool> first_done{false};
  std::thread first([&] {
    // May legitimately fail if server 2 stops mid-open; OnServerDead(2)
    // then owns those regions' recovery.
    (void)cluster->master()->OnServerDead(1);
    first_done.store(true);
  });
  // Kill a survivor while the first recovery is (likely) in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(cluster->SilentlyCrashServer(2).ok());
  (void)cluster->master()->OnServerDead(2);
  first.join();
  ASSERT_TRUE(first_done.load());

  ASSERT_TRUE(client->RefreshLayout().ok());
  for (int i = 0; i < kRows; i++) {
    const std::string row = SpreadRow(i, "d");
    std::string got;
    Status s = client->GetCell("t", row, "c", kMaxTimestamp, &got);
    ASSERT_TRUE(s.ok()) << row << ": " << s.ToString();
    EXPECT_EQ(got, std::to_string(i)) << row;
  }
}

TEST(RecoveryTest, DeadWalDirsRetiredAfterRecovery) {
  // Once every recovered region has flushed, the dead server's WAL dir
  // is garbage and the master deletes it.
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 2;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client->PutColumn("t", SpreadRow(i, "r"), "c", "v").ok());
  }
  const std::string dead_dir = cluster->server(1)->wal_dir();
  std::vector<std::string> files;
  ASSERT_TRUE(Env::Default()->GetChildren(dead_dir, &files).ok());
  ASSERT_FALSE(files.empty());

  ASSERT_TRUE(cluster->KillServer(1).ok());
  // Recovery flushed every region: the dir is gone.
  EXPECT_FALSE(Env::Default()->GetChildren(dead_dir, &files).ok());
}

}  // namespace
}  // namespace diffindex
