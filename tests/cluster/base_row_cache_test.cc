// BaseRowCache: the two-version verify-read contract (unit level), then
// the consistency contract end-to-end — a sync-full update's RB read must
// be served from the cache and never with a value older than what a
// writer just committed.

#include "cluster/base_row_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"

namespace diffindex {
namespace {

Cell PutCell(const std::string& column, const std::string& value) {
  return Cell{column, value, false};
}

Cell DeleteCell(const std::string& column) { return Cell{column, "", true}; }

// read_newest stand-ins for the tree read-back.
std::function<bool(Timestamp*)> NewestIs(Timestamp ts) {
  return [ts](Timestamp* out) {
    *out = ts;
    return true;
  };
}
std::function<bool(Timestamp*)> NeverCalled() {
  return [](Timestamp*) -> bool {
    ADD_FAILURE() << "verify read issued when none was needed";
    return false;
  };
}

class BaseRowCacheTest : public ::testing::Test {
 protected:
  obs::MetricsRegistry metrics_;
  BaseRowCache cache_{1 << 20, &metrics_};

  BaseRowCache::Result Lookup(Timestamp read_ts, std::string* value,
                              Timestamp* version_ts = nullptr) {
    return cache_.Lookup("t", "row", "c", read_ts, value, version_ts);
  }
};

TEST_F(BaseRowCacheTest, VerifiedFirstWriteServesReads) {
  cache_.NoteWrite("t", "row", PutCell("c", "v1"), 100, NewestIs(100));
  std::string value;
  Timestamp ts = 0;
  EXPECT_EQ(Lookup(150, &value, &ts), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(ts, 100u);
  // Below the version: nothing is known there.
  EXPECT_EQ(Lookup(50, &value), BaseRowCache::Result::kMiss);
  EXPECT_GT(metrics_.GetCounter("base_cache.hit")->value(), 0u);
  EXPECT_GT(metrics_.GetCounter("base_cache.miss")->value(), 0u);
}

TEST_F(BaseRowCacheTest, UnverifiedWriteDoesNotServeLatestReads) {
  // The tree knows a NEWER version (data adopted from elsewhere): v0 must
  // not answer "latest" reads.
  cache_.NoteWrite("t", "row", PutCell("c", "stale"), 100, NewestIs(200));
  std::string value;
  EXPECT_EQ(Lookup(300, &value), BaseRowCache::Result::kMiss);
}

TEST_F(BaseRowCacheTest, SecondWriteOpensPredecessorWindow) {
  cache_.NoteWrite("t", "row", PutCell("c", "v1"), 100, NewestIs(100));
  // v0 was certified: the successor inherits latest with NO verify read.
  cache_.NoteWrite("t", "row", PutCell("c", "v2"), 200, NeverCalled());

  std::string value;
  Timestamp ts = 0;
  EXPECT_EQ(Lookup(250, &value, &ts), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "v2");
  // The window [100, 200) answers v1 — exactly the sync-full RB read at
  // t_new - delta.
  EXPECT_EQ(Lookup(199, &value, &ts), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(ts, 100u);
  EXPECT_EQ(Lookup(99, &value), BaseRowCache::Result::kMiss);
}

TEST_F(BaseRowCacheTest, TombstoneWindowAnswersNotFound) {
  cache_.NoteWrite("t", "row", PutCell("c", "v1"), 100, NewestIs(100));
  cache_.NoteWrite("t", "row", DeleteCell("c"), 200, NeverCalled());
  std::string value;
  EXPECT_EQ(Lookup(250, &value), BaseRowCache::Result::kHitDeleted);
  // Before the delete the old value is still visible.
  EXPECT_EQ(Lookup(150, &value), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "v1");
}

TEST_F(BaseRowCacheTest, FirstSightTombstoneIsNeverCached) {
  // A tree read-back cannot tell WHICH tombstone is newest, so a delete
  // for an unknown cell must not populate the cache.
  cache_.NoteWrite("t", "row", DeleteCell("c"), 100, NeverCalled());
  std::string value;
  EXPECT_EQ(Lookup(200, &value), BaseRowCache::Result::kMiss);
}

TEST_F(BaseRowCacheTest, OutOfOrderWriteTightensTheWindow) {
  cache_.NoteWrite("t", "row", PutCell("c", "v1"), 100, NewestIs(100));
  cache_.NoteWrite("t", "row", PutCell("c", "v3"), 300, NeverCalled());
  // An explicit-timestamp write lands INSIDE the window: it becomes v3's
  // true direct predecessor.
  cache_.NoteWrite("t", "row", PutCell("c", "v2"), 200, NeverCalled());

  std::string value;
  EXPECT_EQ(Lookup(250, &value), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "v2");
  // v1 is no longer v3's predecessor; reads below 200 must miss, not get
  // served a version that may since have been superseded.
  EXPECT_EQ(Lookup(150, &value), BaseRowCache::Result::kMiss);
  // Older than the (new) window start: invisible, ignored.
  cache_.NoteWrite("t", "row", PutCell("c", "v0"), 50, NeverCalled());
  EXPECT_EQ(Lookup(150, &value), BaseRowCache::Result::kMiss);
}

TEST_F(BaseRowCacheTest, SameTimestampOverwriteReplacesValue) {
  cache_.NoteWrite("t", "row", PutCell("c", "first"), 100, NewestIs(100));
  cache_.NoteWrite("t", "row", PutCell("c", "second"), 100, NeverCalled());
  std::string value;
  EXPECT_EQ(Lookup(150, &value), BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "second");
}

TEST_F(BaseRowCacheTest, ClearDropsEverything) {
  cache_.NoteWrite("t", "row", PutCell("c", "v1"), 100, NewestIs(100));
  cache_.Clear();
  std::string value;
  EXPECT_EQ(Lookup(150, &value), BaseRowCache::Result::kMiss);
}

TEST_F(BaseRowCacheTest, KeysDoNotCollideAcrossTablesRowsColumns) {
  cache_.NoteWrite("t1", "row", PutCell("c", "a"), 100, NewestIs(100));
  cache_.NoteWrite("t2", "row", PutCell("c", "b"), 100, NewestIs(100));
  cache_.NoteWrite("t1", "row", PutCell("d", "c"), 100, NewestIs(100));
  std::string value;
  ASSERT_EQ(cache_.Lookup("t1", "row", "c", 150, &value, nullptr),
            BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "a");
  ASSERT_EQ(cache_.Lookup("t2", "row", "c", 150, &value, nullptr),
            BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "b");
  ASSERT_EQ(cache_.Lookup("t1", "row", "d", 150, &value, nullptr),
            BaseRowCache::Result::kHit);
  EXPECT_EQ(value, "c");
}

TEST_F(BaseRowCacheTest, ConcurrentWritersAndReaders) {
  // Distinct rows written concurrently (per-cell writes serialize under a
  // region's write_mu in production; across rows they do race) while
  // readers hammer lookups. TSan-clean plus no wrong value is the bar.
  constexpr int kRows = 8;
  constexpr int kWritesPerRow = 200;
  std::atomic<bool> wrong{false};

  std::vector<std::thread> writers;
  for (int r = 0; r < kRows; r++) {
    writers.emplace_back([this, r] {
      const std::string row = "row" + std::to_string(r);
      for (int i = 1; i <= kWritesPerRow; i++) {
        const Timestamp ts = static_cast<Timestamp>(i) * 10;
        cache_.NoteWrite("t", row, PutCell("c", std::to_string(i)), ts,
                         NewestIs(ts));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([this, &wrong] {
      for (int i = 0; i < 2000; i++) {
        const std::string row = "row" + std::to_string(i % kRows);
        std::string value;
        Timestamp ts = 0;
        if (cache_.Lookup("t", row, "c", kMaxTimestamp, &value, &ts) ==
            BaseRowCache::Result::kHit) {
          if (value != std::to_string(ts / 10)) wrong.store(true);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(wrong.load());
}

// ---- End-to-end: the cache serving sync-full RB reads ----

TEST(BaseRowCacheClusterTest, SyncFullUpdateHitsCacheAndStaysCorrect) {
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  auto client = cluster->NewDiffIndexClient();

  ASSERT_TRUE(cluster->master()->CreateTable("items").ok());
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = IndexScheme::kSyncFull;
  ASSERT_TRUE(cluster->master()->CreateIndex("items", index).ok());
  ASSERT_TRUE(client->raw_client()->RefreshLayout().ok());

  // Update the same rows repeatedly: every update's RB read at ts - delta
  // lands in the predecessor window the previous put opened.
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 10; i++) {
      char row[16];
      snprintf(row, sizeof(row), "%02x-%d", (i * 23) % 256, i);
      ASSERT_TRUE(client
                      ->PutColumn("items", row, "title",
                                  "v" + std::to_string(round))
                      .ok());
    }
  }
  EXPECT_GT(cluster->metrics()->GetCounter("base_cache.hit")->value(), 0u);

  // And the cache lied to no one: only the final value is indexed.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client->GetByIndex("items", "by_title", "v3", &hits).ok());
  EXPECT_EQ(hits.size(), 10u);
  for (int round = 0; round < 3; round++) {
    ASSERT_TRUE(client
                    ->GetByIndex("items", "by_title",
                                 "v" + std::to_string(round), &hits)
                    .ok());
    EXPECT_TRUE(hits.empty()) << "stale round-" << round << " entry";
  }
}

TEST(BaseRowCacheClusterTest, ReadAfterAckedWriteIsNeverStale) {
  // Concurrent writers + a reader that, after each acked write, demands
  // to see a value at least as new (the §5.3 cache invariant).
  ClusterOptions options;
  options.num_servers = 2;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("kv").ok());

  constexpr int kWriters = 4;
  constexpr int kWritesEach = 60;
  std::atomic<bool> stale_read{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&cluster, w] {
      auto client = cluster->NewDiffIndexClient();
      for (int i = 1; i <= kWritesEach; i++) {
        const int value = w * 1000 + i;
        ASSERT_TRUE(client
                        ->PutColumn("kv", "aa-shared", "c",
                                    std::to_string(value))
                        .ok());
      }
    });
  }
  std::thread reader([&cluster, &stale_read] {
    auto client = cluster->NewDiffIndexClient();
    // Writers interleave, so reads are not totally ordered across writers;
    // what must hold is that this single reader never sees any ONE
    // writer's acked sequence go backwards — that would be the cache
    // serving a version older than one already observed committed.
    std::map<int, int> last_seen;  // writer -> highest sequence seen
    for (int i = 0; i < 300; i++) {
      std::string got;
      if (client->Get("kv", "aa-shared", "c", &got).ok()) {
        const int value = std::stoi(got);
        const int writer = value / 1000, seq = value % 1000;
        auto it = last_seen.find(writer);
        if (it != last_seen.end() && seq < it->second) {
          stale_read.store(true);
        }
        last_seen[writer] = seq;
      }
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_FALSE(stale_read.load()) << "a writer's acked value went backwards";

  // Final read: the last acked write of some writer, never less.
  auto client = cluster->NewDiffIndexClient();
  std::string got;
  ASSERT_TRUE(client->Get("kv", "aa-shared", "c", &got).ok());
  EXPECT_EQ(std::stoi(got) % 1000, kWritesEach);
}

}  // namespace
}  // namespace diffindex
