// Master-specific tests: DDL validation, split points, layout epochs,
// catalog distribution, and heartbeat-based failure detection.

#include "cluster/master.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

TEST(MasterSplitsTest, UniformHexSplitsTileTheKeyspace) {
  auto splits = Master::UniformHexSplits(8);
  ASSERT_EQ(splits.size(), 7u);
  EXPECT_EQ(splits.front(), "20");
  EXPECT_EQ(splits.back(), "e0");
  for (size_t i = 1; i < splits.size(); i++) {
    EXPECT_LT(splits[i - 1], splits[i]);
  }
}

TEST(MasterSplitsTest, SingleRegionHasNoSplits) {
  EXPECT_TRUE(Master::UniformHexSplits(1).empty());
}

class MasterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(MasterTest, DuplicateTableRejected) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  EXPECT_TRUE(cluster_->master()->CreateTable("t").IsInvalidArgument());
}

TEST_F(MasterTest, IndexOnMissingTableRejected) {
  IndexDescriptor index;
  index.name = "i";
  index.column = "c";
  EXPECT_TRUE(cluster_->master()->CreateIndex("nope", index).IsNotFound());
}

TEST_F(MasterTest, DuplicateIndexRejected) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  IndexDescriptor index;
  index.name = "i";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  EXPECT_FALSE(cluster_->master()->CreateIndex("t", index).ok());
}

TEST_F(MasterTest, CreateIndexMakesPartitionedIndexTable) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());

  // The backing index table exists, is flagged, and is itself split into
  // regions across the cluster (global index).
  int index_regions = 0;
  for (const auto& region : cluster_->master()->regions()) {
    if (region.table == IndexTableNameFor("t", "by_c")) index_regions++;
  }
  EXPECT_EQ(index_regions, 4);

  auto client = cluster_->NewClient();
  CatalogSnapshot catalog = client->catalog();
  const TableDescriptor* base = catalog.GetTable("t");
  ASSERT_NE(base, nullptr);
  ASSERT_EQ(base->indexes.size(), 1u);
  EXPECT_EQ(base->indexes[0].index_table, "__idx_t_by_c");
  const TableDescriptor* idx_table = catalog.GetTable("__idx_t_by_c");
  ASSERT_NE(idx_table, nullptr);
  EXPECT_TRUE(idx_table->is_index_table);
}

TEST_F(MasterTest, DropIndexRemovesFromCatalog) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  ASSERT_TRUE(cluster_->master()->DropIndex("t", "by_c").ok());
  auto client = cluster_->NewClient();
  CatalogSnapshot catalog = client->catalog();
  EXPECT_TRUE(catalog.GetTable("t")->indexes.empty());
}

TEST_F(MasterTest, LayoutEpochAdvancesOnDdl) {
  const uint64_t e0 = cluster_->master()->layout_epoch();
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  const uint64_t e1 = cluster_->master()->layout_epoch();
  EXPECT_GT(e1, e0);
  IndexDescriptor index;
  index.name = "i";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  EXPECT_GT(cluster_->master()->layout_epoch(), e1);
}

TEST_F(MasterTest, CatalogPushedToServers) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  IndexDescriptor index;
  index.name = "i";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  for (NodeId id : cluster_->server_ids()) {
    CatalogSnapshot snapshot = cluster_->server(id)->catalog();
    const TableDescriptor* table = snapshot.GetTable("t");
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->indexes.size(), 1u);
  }
}

TEST_F(MasterTest, CreateTableWithExplicitSplits) {
  ASSERT_TRUE(
      cluster_->master()->CreateTable("custom", {"m"}).ok());
  int regions = 0;
  for (const auto& region : cluster_->master()->regions()) {
    if (region.table == "custom") regions++;
  }
  EXPECT_EQ(regions, 2);
}

TEST(MasterFailureDetectorTest, HeartbeatTimeoutTriggersRecovery) {
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 3;
  options.server.heartbeat_interval_ms = 10;
  options.master.failure_detect_ms = 120;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());

  auto client = cluster->NewClient();
  for (int i = 0; i < 30; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 9) % 256, i);
    ASSERT_TRUE(client->PutColumn("t", row, "c", "v").ok());
  }

  // Silent crash: the master is NOT told; its detector must notice the
  // missed heartbeats, declare the server dead, and recover its regions.
  ASSERT_TRUE(cluster->SilentlyCrashServer(2).ok());

  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; attempt++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    recovered = true;
    for (const auto& region : cluster->master()->regions()) {
      if (region.server_id == 2) recovered = false;
    }
  }
  ASSERT_TRUE(recovered) << "detector never reassigned the regions";

  // All data served again.
  (void)client->RefreshLayout();
  for (int i = 0; i < 30; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 9) % 256, i);
    std::string value;
    EXPECT_TRUE(client->GetCell("t", row, "c", kMaxTimestamp, &value).ok())
        << row;
  }
}

}  // namespace
}  // namespace diffindex
