// RegionServer-level tests: WAL edit encoding, WAL rolling and GC,
// region lookup, flush accounting, and the timestamp oracle contract at
// the server boundary.

#include "cluster/region_server.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "util/random.h"

namespace diffindex {
namespace {

TEST(WalEditTest, RoundTrip) {
  WalEdit edit;
  edit.table = "items";
  edit.region_id = 7;
  edit.seq = 123456789;
  edit.row = "row-42";
  edit.cells = {Cell{"title", "widget", false}, Cell{"price", "", true}};
  edit.ts = 987654321;

  std::string buf;
  edit.EncodeTo(&buf);
  Slice in(buf);
  WalEdit decoded;
  ASSERT_TRUE(WalEdit::DecodeFrom(&in, &decoded));
  EXPECT_EQ(decoded.table, "items");
  EXPECT_EQ(decoded.region_id, 7u);
  EXPECT_EQ(decoded.seq, 123456789u);
  EXPECT_EQ(decoded.row, "row-42");
  ASSERT_EQ(decoded.cells.size(), 2u);
  EXPECT_TRUE(decoded.cells[1].is_delete);
  EXPECT_EQ(decoded.ts, 987654321u);
  EXPECT_TRUE(in.empty());
}

TEST(WalEditTest, TruncatedFails) {
  WalEdit edit;
  edit.table = "t";
  edit.row = "r";
  edit.cells = {Cell{"c", "v", false}};
  std::string buf;
  edit.EncodeTo(&buf);
  buf.resize(buf.size() / 2);
  Slice in(buf);
  WalEdit decoded;
  EXPECT_FALSE(WalEdit::DecodeFrom(&in, &decoded));
}

class RegionServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 1;  // single server: direct introspection
    options.regions_per_table = 2;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
    server_ = cluster_->server(1);
    ASSERT_NE(server_, nullptr);
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
  RegionServer* server_;
};

TEST_F(RegionServerTest, HostedRegionsReflectAssignment) {
  auto regions = server_->HostedRegions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].table, "t");
}

TEST_F(RegionServerTest, LocalGetCellReadsWithoutFabric) {
  ASSERT_TRUE(client_->PutColumn("t", "aa-r", "c", "v").ok());
  const uint64_t calls_before = cluster_->fabric()->calls_made();
  std::string value;
  Timestamp ts = 0;
  ASSERT_TRUE(
      server_->LocalGetCell("t", "aa-r", "c", kMaxTimestamp, &value, &ts)
          .ok());
  EXPECT_EQ(value, "v");
  EXPECT_GT(ts, 0u);
  EXPECT_EQ(cluster_->fabric()->calls_made(), calls_before);
}

TEST_F(RegionServerTest, LocalGetCellWrongRegionForForeignRow) {
  std::string value;
  EXPECT_TRUE(server_
                  ->LocalGetCell("missing_table", "aa-r", "c",
                                 kMaxTimestamp, &value, nullptr)
                  .IsWrongRegion());
}

TEST_F(RegionServerTest, WalAppendsCounted) {
  const uint64_t before = server_->wal_appends();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        client_->PutColumn("t", "aa-" + std::to_string(i), "c", "v").ok());
  }
  EXPECT_EQ(server_->wal_appends(), before + 10);
}

TEST_F(RegionServerTest, FlushCountAndStallTracked) {
  Random rng(1);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(client_
                    ->PutColumn("t", "aa-" + std::to_string(i), "c",
                                rng.RandomBytes(100))
                    .ok());
  }
  const uint64_t before = server_->flush_count();
  ASSERT_TRUE(client_->FlushTable("t").ok());
  EXPECT_GT(server_->flush_count(), before);
}

TEST_F(RegionServerTest, WalRollsWhenLarge) {
  // Rewriting with a tiny roll threshold: several WAL files appear, and
  // flushing makes the old ones GC-able.
  ClusterOptions options;
  options.num_servers = 1;
  options.regions_per_table = 2;
  options.server.wal_segment_bytes = 8 << 10;
  options.server.lsm.memtable_flush_bytes = 16 << 10;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  Random rng(2);
  for (int i = 0; i < 400; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 3) % 256, i);
    ASSERT_TRUE(client->PutColumn("t", row, "c", rng.RandomBytes(200)).ok());
  }
  ASSERT_TRUE(client->FlushTable("t").ok());
  std::vector<std::string> wal_files;
  ASSERT_TRUE(Env::Default()
                  ->GetChildren(cluster->server(1)->wal_dir(), &wal_files)
                  .ok());
  // Everything flushed: only the open tail (and maybe one just-rolled
  // file) remains.
  EXPECT_LE(wal_files.size(), 2u);
  // And the data survives a crash+recovery from what remains... there is
  // only one server, so instead verify reads directly.
  std::string value;
  EXPECT_TRUE(client->GetCell("t", "00-0", "c", kMaxTimestamp, &value).ok());
}

TEST_F(RegionServerTest, ServerAssignedTimestampsIncreasePerRow) {
  PutResponse r1, r2;
  ASSERT_TRUE(client_
                  ->Put("t", "aa-r", {Cell{"c", "v1", false}}, 0, false, &r1)
                  .ok());
  ASSERT_TRUE(client_
                  ->Put("t", "aa-r", {Cell{"c", "v2", false}}, 0, false, &r2)
                  .ok());
  EXPECT_GT(r2.assigned_ts, r1.assigned_ts);
}

TEST_F(RegionServerTest, ExplicitTimestampHonored) {
  // Index entries reuse the base put's timestamp — the server must apply
  // an explicit ts verbatim.
  PutResponse resp;
  ASSERT_TRUE(client_
                  ->Put("t", "aa-r", {Cell{"c", "v", false}},
                        /*ts=*/42424242, false, &resp)
                  .ok());
  EXPECT_EQ(resp.assigned_ts, 42424242u);
  std::string value;
  Timestamp ts = 0;
  ASSERT_TRUE(
      client_->GetCell("t", "aa-r", "c", kMaxTimestamp, &value, &ts).ok());
  EXPECT_EQ(ts, 42424242u);
}

TEST_F(RegionServerTest, GracefulStopFlushesEverything) {
  ASSERT_TRUE(client_->PutColumn("t", "aa-r", "c", "durable").ok());
  ASSERT_TRUE(server_->Stop().ok());
  // After a graceful stop the memtable was flushed: the region's data
  // directory holds at least one SSTable.
  std::vector<std::string> files;
  RegionInfoWire region = server_->HostedRegions()[0];
  // Find the region hosting "aa-r".
  for (const auto& info : server_->HostedRegions()) {
    if ((info.start_row.empty() || info.start_row <= "aa-r") &&
        (info.end_row.empty() || std::string("aa-r") < info.end_row)) {
      region = info;
    }
  }
  const std::string dir = Region::DataDir(cluster_->data_root(), region.table,
                                          region.region_id);
  ASSERT_TRUE(Env::Default()->GetChildren(dir, &files).ok());
  bool has_sst = false;
  for (const auto& f : files) {
    if (f.find(".sst") != std::string::npos) has_sst = true;
  }
  EXPECT_TRUE(has_sst);
}

}  // namespace
}  // namespace diffindex
