// Online region splitting: data integrity across the split, version and
// tombstone preservation, routing refresh, index maintenance, and
// crash recovery of daughter regions.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

class SplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 2;  // coarse: splits create the rest
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
  }

  // The region currently containing `row`.
  RegionInfoWire RegionOf(const std::string& row) {
    RegionInfoWire info;
    EXPECT_TRUE(client_->RefreshLayout().ok());
    EXPECT_TRUE(client_->RouteRow("t", row, &info).ok());
    return info;
  }

  static std::string RowFor(int i) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%03d", (i * 41) % 256, i);
    return row;
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(SplitTest, DataIntactAfterSplit) {
  for (int i = 0; i < 80; i++) {
    ASSERT_TRUE(
        client_->PutColumn("t", RowFor(i), "c", "v" + std::to_string(i))
            .ok());
  }
  const RegionInfoWire parent = RegionOf("20-x");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "20").ok());

  ASSERT_TRUE(client_->RefreshLayout().ok());
  for (int i = 0; i < 80; i++) {
    std::string value;
    ASSERT_TRUE(
        client_->GetCell("t", RowFor(i), "c", kMaxTimestamp, &value).ok())
        << RowFor(i);
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  // Scans still see everything exactly once.
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(client_->ScanRows("t", "", "", kMaxTimestamp, 0, &rows).ok());
  EXPECT_EQ(rows.size(), 80u);
}

TEST_F(SplitTest, LayoutReflectsDaughters) {
  const RegionInfoWire parent = RegionOf("10-x");
  const uint64_t epoch = cluster_->master()->layout_epoch();
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "10").ok());
  EXPECT_GT(cluster_->master()->layout_epoch(), epoch);

  const RegionInfoWire left = RegionOf("0f-x");
  const RegionInfoWire right = RegionOf("10-x");
  EXPECT_NE(left.region_id, right.region_id);
  EXPECT_EQ(left.end_row, "10");
  EXPECT_EQ(right.start_row, "10");
  EXPECT_EQ(left.start_row, parent.start_row);
  EXPECT_EQ(right.end_row, parent.end_row);
}

TEST_F(SplitTest, VersionsAndTombstonesSurvive) {
  ASSERT_TRUE(client_->PutColumn("t", "10-k", "c", "v1").ok());
  ASSERT_TRUE(client_->PutColumn("t", "10-k", "c", "v2").ok());
  ASSERT_TRUE(client_->PutColumn("t", "18-dead", "c", "x").ok());
  ASSERT_TRUE(client_->DeleteColumns("t", "18-dead", {"c"}).ok());
  PutResponse resp;
  ASSERT_TRUE(client_
                  ->Put("t", "10-k", {Cell{"c", "v3", false}}, 0, false,
                        &resp)
                  .ok());

  const RegionInfoWire parent = RegionOf("10-k");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "15").ok());
  ASSERT_TRUE(client_->RefreshLayout().ok());

  // Latest and historical versions preserved.
  std::string value;
  ASSERT_TRUE(
      client_->GetCell("t", "10-k", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "v3");
  ASSERT_TRUE(
      client_->GetCell("t", "10-k", "c", resp.assigned_ts - 1, &value).ok());
  EXPECT_EQ(value, "v2");
  // The tombstone too.
  EXPECT_TRUE(client_->GetCell("t", "18-dead", "c", kMaxTimestamp, &value)
                  .IsNotFound());
}

TEST_F(SplitTest, WritesAfterSplitLandInDaughters) {
  const RegionInfoWire parent = RegionOf("40-x");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "40").ok());
  ASSERT_TRUE(client_->RefreshLayout().ok());
  ASSERT_TRUE(client_->PutColumn("t", "3f-new", "c", "left").ok());
  ASSERT_TRUE(client_->PutColumn("t", "41-new", "c", "right").ok());
  std::string value;
  ASSERT_TRUE(
      client_->GetCell("t", "3f-new", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "left");
  ASSERT_TRUE(
      client_->GetCell("t", "41-new", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "right");
}

TEST_F(SplitTest, StaleClientRecoversViaRetry) {
  // A client whose cached layout predates the split must transparently
  // reroute (WrongRegion -> refresh -> retry).
  auto stale_client = cluster_->NewClient();
  ASSERT_TRUE(stale_client->PutColumn("t", "30-warm", "c", "v").ok());

  const RegionInfoWire parent = RegionOf("30-warm");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "30").ok());
  // No RefreshLayout on stale_client: its next put self-heals. (Daughters
  // stay on the same server, so routing even keeps working by accident;
  // force the harder path by checking a get as well.)
  ASSERT_TRUE(stale_client->PutColumn("t", "30-warm", "c", "v2").ok());
  std::string value;
  ASSERT_TRUE(stale_client->GetCell("t", "30-warm", "c", kMaxTimestamp,
                                    &value)
                  .ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(SplitTest, InvalidSplitKeysRejected) {
  const RegionInfoWire parent = RegionOf("80-x");
  EXPECT_FALSE(cluster_->master()
                   ->SplitRegion("t", parent.region_id, parent.start_row)
                   .ok());
  EXPECT_FALSE(
      cluster_->master()->SplitRegion("t", 424242, "90").ok());
}

TEST_F(SplitTest, IndexedTableSplitKeepsIndexWorking) {
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.scheme = IndexScheme::kSyncFull;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  auto dix = cluster_->NewDiffIndexClient();
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(dix->PutColumn("t", RowFor(i), "c", "same").ok());
  }
  const RegionInfoWire parent = RegionOf("40-x");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "40").ok());
  ASSERT_TRUE(dix->raw_client()->RefreshLayout().ok());

  // Index reads and further indexed writes work across the split.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(dix->GetByIndex("t", "by_c", "same", &hits).ok());
  EXPECT_EQ(hits.size(), 40u);
  ASSERT_TRUE(dix->PutColumn("t", "40-post", "c", "same").ok());
  ASSERT_TRUE(dix->GetByIndex("t", "by_c", "same", &hits).ok());
  EXPECT_EQ(hits.size(), 41u);
}

TEST_F(SplitTest, LocalIndexRebuiltForDaughters) {
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.is_local = true;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  auto dix = cluster_->NewDiffIndexClient();
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(dix->PutColumn("t", RowFor(i), "c", "lv").ok());
  }
  const RegionInfoWire parent = RegionOf("40-x");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "40").ok());
  ASSERT_TRUE(dix->raw_client()->RefreshLayout().ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(dix->GetByIndex("t", "by_c", "lv", &hits).ok());
  EXPECT_EQ(hits.size(), 30u);
}

TEST_F(SplitTest, DaughtersSurviveServerCrash) {
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(client_->PutColumn("t", RowFor(i), "c", "pre").ok());
  }
  const RegionInfoWire parent = RegionOf("40-x");
  ASSERT_TRUE(
      cluster_->master()->SplitRegion("t", parent.region_id, "40").ok());
  // Writes after the split go into the daughters' WAL stream.
  ASSERT_TRUE(client_->RefreshLayout().ok());
  ASSERT_TRUE(client_->PutColumn("t", "3e-post", "c", "post").ok());
  ASSERT_TRUE(client_->PutColumn("t", "42-post", "c", "post").ok());

  ASSERT_TRUE(cluster_->KillServer(RegionOf("3e-post").server_id).ok());
  ASSERT_TRUE(client_->RefreshLayout().ok());
  std::string value;
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(
        client_->GetCell("t", RowFor(i), "c", kMaxTimestamp, &value).ok())
        << RowFor(i);
  }
  ASSERT_TRUE(
      client_->GetCell("t", "3e-post", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "post");
}

}  // namespace
}  // namespace diffindex
