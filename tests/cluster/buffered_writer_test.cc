// Multi-put RPC and client write buffer tests.

#include "cluster/buffered_writer.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

class BufferedWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
  }

  std::string RowFor(int i) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r%d", (i * 7) % 256, i);
    return row;
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(BufferedWriterTest, MultiPutWritesAllRows) {
  std::vector<Client::RowPut> puts;
  for (int i = 0; i < 40; i++) {
    puts.push_back(
        Client::RowPut{RowFor(i), {Cell{"c", "v" + std::to_string(i),
                                        false}}});
  }
  ASSERT_TRUE(client_->MultiPut("t", std::move(puts)).ok());
  for (int i = 0; i < 40; i++) {
    std::string value;
    ASSERT_TRUE(
        client_->GetCell("t", RowFor(i), "c", kMaxTimestamp, &value).ok())
        << RowFor(i);
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(BufferedWriterTest, MultiPutUsesOneRpcPerServer) {
  std::vector<Client::RowPut> puts;
  for (int i = 0; i < 60; i++) {
    puts.push_back(Client::RowPut{RowFor(i), {Cell{"c", "v", false}}});
  }
  // Prime the layout cache so the count below is pure data-plane calls.
  ASSERT_TRUE(client_->RefreshLayout().ok());
  const uint64_t before = cluster_->fabric()->calls_made();
  ASSERT_TRUE(client_->MultiPut("t", std::move(puts)).ok());
  const uint64_t calls = cluster_->fabric()->calls_made() - before;
  // At most one RPC per server (3), vs 60 for unbuffered puts.
  EXPECT_LE(calls, 3u);
}

TEST_F(BufferedWriterTest, EmptyMultiPutIsNoop) {
  EXPECT_TRUE(client_->MultiPut("t", {}).ok());
}

TEST_F(BufferedWriterTest, BufferAutoFlushesAtBatchSize) {
  BufferedWriter writer(client_, "t", /*flush_batch_size=*/8);
  for (int i = 0; i < 7; i++) {
    ASSERT_TRUE(writer.AddColumn(RowFor(i), "c", "buffered").ok());
  }
  EXPECT_EQ(writer.pending(), 7u);
  // Not yet visible.
  std::string value;
  EXPECT_TRUE(client_->GetCell("t", RowFor(0), "c", kMaxTimestamp, &value)
                  .IsNotFound());
  // The 8th put trips the auto-flush.
  ASSERT_TRUE(writer.AddColumn(RowFor(7), "c", "buffered").ok());
  EXPECT_EQ(writer.pending(), 0u);
  ASSERT_TRUE(
      client_->GetCell("t", RowFor(0), "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "buffered");
}

TEST_F(BufferedWriterTest, ExplicitFlushDrains) {
  BufferedWriter writer(client_, "t", 1000);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(writer.AddColumn(RowFor(i), "c", "v").ok());
  }
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.pending(), 0u);
  std::string value;
  EXPECT_TRUE(
      client_->GetCell("t", RowFor(9), "c", kMaxTimestamp, &value).ok());
}

TEST_F(BufferedWriterTest, MultiPutRunsIndexMaintenance) {
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.scheme = IndexScheme::kSyncFull;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  ASSERT_TRUE(client_->RefreshLayout().ok());

  std::vector<Client::RowPut> puts;
  for (int i = 0; i < 20; i++) {
    puts.push_back(Client::RowPut{RowFor(i), {Cell{"c", "same", false}}});
  }
  ASSERT_TRUE(client_->MultiPut("t", std::move(puts)).ok());

  auto dix = cluster_->NewDiffIndexClient();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(dix->GetByIndex("t", "by_c", "same", &hits).ok());
  EXPECT_EQ(hits.size(), 20u);
}

TEST_F(BufferedWriterTest, MultiPutSurvivesFailover) {
  std::vector<Client::RowPut> puts;
  for (int i = 0; i < 30; i++) {
    puts.push_back(Client::RowPut{RowFor(i), {Cell{"c", "v1", false}}});
  }
  ASSERT_TRUE(client_->MultiPut("t", std::move(puts)).ok());
  ASSERT_TRUE(cluster_->KillServer(2).ok());

  // A batch against the refreshed layout still lands.
  std::vector<Client::RowPut> more;
  for (int i = 30; i < 60; i++) {
    more.push_back(Client::RowPut{RowFor(i), {Cell{"c", "v2", false}}});
  }
  ASSERT_TRUE(client_->MultiPut("t", std::move(more)).ok());
  std::string value;
  EXPECT_TRUE(
      client_->GetCell("t", RowFor(45), "c", kMaxTimestamp, &value).ok());
}

}  // namespace
}  // namespace diffindex
