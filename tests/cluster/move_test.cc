// Region moves (the balancer primitive): data integrity, write fencing,
// stale-client recovery, index maintenance across the hand-off.

#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

class MoveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 3;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
  }

  RegionInfoWire RegionOf(const std::string& row) {
    RegionInfoWire info;
    EXPECT_TRUE(client_->RefreshLayout().ok());
    EXPECT_TRUE(client_->RouteRow("t", row, &info).ok());
    return info;
  }

  NodeId OtherServer(NodeId not_this) {
    for (NodeId id : cluster_->server_ids()) {
      if (id != not_this) return id;
    }
    return 0;
  }

  static std::string RowFor(int i) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%03d", (i * 43) % 256, i);
    return row;
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(MoveTest, DataServedByNewOwnerAfterMove) {
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(
        client_->PutColumn("t", RowFor(i), "c", "v" + std::to_string(i))
            .ok());
  }
  const RegionInfoWire region = RegionOf("20-x");
  const NodeId target = OtherServer(region.server_id);
  ASSERT_TRUE(
      cluster_->master()->MoveRegion("t", region.region_id, target).ok());

  const RegionInfoWire moved = RegionOf("20-x");
  EXPECT_EQ(moved.server_id, target);
  for (int i = 0; i < 60; i++) {
    std::string value;
    ASSERT_TRUE(
        client_->GetCell("t", RowFor(i), "c", kMaxTimestamp, &value).ok())
        << RowFor(i);
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(MoveTest, UnflushedDataSurvivesMove) {
  // Data only in the memtable at move time: the fence + flush must make
  // it durable before the hand-off.
  ASSERT_TRUE(client_->PutColumn("t", "30-memonly", "c", "fragile").ok());
  const RegionInfoWire region = RegionOf("30-memonly");
  ASSERT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id,
                               OtherServer(region.server_id))
                  .ok());
  std::string value;
  ASSERT_TRUE(client_->RefreshLayout().ok());
  ASSERT_TRUE(
      client_->GetCell("t", "30-memonly", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "fragile");
}

TEST_F(MoveTest, StaleClientWritesSelfHeal) {
  auto stale = cluster_->NewClient();
  ASSERT_TRUE(stale->PutColumn("t", "40-k", "c", "v1").ok());  // warm cache
  const RegionInfoWire region = RegionOf("40-k");
  ASSERT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id,
                               OtherServer(region.server_id))
                  .ok());
  // The stale client still routes to the old owner; the fence bounces it
  // into a refresh + retry.
  ASSERT_TRUE(stale->PutColumn("t", "40-k", "c", "v2").ok());
  std::string value;
  ASSERT_TRUE(stale->GetCell("t", "40-k", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(MoveTest, MoveToSameServerIsNoop) {
  const RegionInfoWire region = RegionOf("50-x");
  EXPECT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id, region.server_id)
                  .ok());
}

TEST_F(MoveTest, MoveToUnknownServerRejected) {
  const RegionInfoWire region = RegionOf("50-x");
  EXPECT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id, 999)
                  .IsNotFound());
}

TEST_F(MoveTest, IndexedWritesWorkThroughMove) {
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.scheme = IndexScheme::kAsyncSimple;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  auto dix = cluster_->NewDiffIndexClient();
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(dix->PutColumn("t", RowFor(i), "c", "idx").ok());
  }
  const RegionInfoWire region = RegionOf("20-x");
  ASSERT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id,
                               OtherServer(region.server_id))
                  .ok());
  // The move's flush drained the source AUQ, so the index is complete.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(dix->raw_client()->RefreshLayout().ok());
  ASSERT_TRUE(dix->GetByIndex("t", "by_c", "idx", &hits).ok());
  EXPECT_EQ(hits.size(), 30u);
  // And writes keep maintaining it on the new owner.
  ASSERT_TRUE(dix->PutColumn("t", "20-post", "c", "idx").ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(dix->GetByIndex("t", "by_c", "idx", &hits).ok());
    if (hits.size() == 31u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hits.size(), 31u);
}

TEST_F(MoveTest, TargetCrashAfterMoveRecoversPostMoveWrites) {
  // The nasty ordering: region moves A -> B, B takes unflushed writes,
  // B crashes. B's WAL edits must replay even though the region's
  // persisted checkpoint came from A's sequence space.
  ASSERT_TRUE(client_->PutColumn("t", "60-k", "c", "pre-move").ok());
  const RegionInfoWire region = RegionOf("60-k");
  const NodeId target = OtherServer(region.server_id);
  ASSERT_TRUE(
      cluster_->master()->MoveRegion("t", region.region_id, target).ok());

  ASSERT_TRUE(client_->RefreshLayout().ok());
  ASSERT_TRUE(client_->PutColumn("t", "60-k", "c", "post-move").ok());
  ASSERT_TRUE(client_->PutColumn("t", "61-new", "c", "fresh").ok());
  // No flush: the post-move writes live only in the target's WAL.
  ASSERT_TRUE(cluster_->KillServer(target).ok());

  ASSERT_TRUE(client_->RefreshLayout().ok());
  std::string value;
  ASSERT_TRUE(
      client_->GetCell("t", "60-k", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "post-move");
  ASSERT_TRUE(
      client_->GetCell("t", "61-new", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "fresh");
}

TEST_F(MoveTest, ConcurrentWritersSurviveMove) {
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread writer([this, &stop, &errors] {
    auto c = cluster_->NewClient();
    int i = 0;
    while (!stop.load()) {
      Status s = c->PutColumn("t", RowFor(i % 100), "c",
                              "w" + std::to_string(i));
      if (!s.ok()) errors++;
      i++;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const RegionInfoWire region = RegionOf("40-x");
  ASSERT_TRUE(cluster_->master()
                  ->MoveRegion("t", region.region_id,
                               OtherServer(region.server_id))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop = true;
  writer.join();
  // The retry loop absorbs the WrongRegion bounces entirely.
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace diffindex
