// Flush-stall admission control (RegionServerOptions::admission_*): a
// put arriving while the region's flush has been stalled past
// admission_stall_micros is delayed in bounded 1ms slices, then shed with
// kResourceExhausted instead of queueing forever behind the exclusive
// flush gate. Counters admission.delayed / admission.delayed_micros /
// admission.rejected advance by exact nominal deltas (the slice width is
// charged, not measured wall clock, precisely so these tests can assert
// equality). The L0-debt leg (admission_l0_slack) feeds the same signal
// from compaction backlog — simple compaction pacing.
//
// The stall is injected with the existing "auq.process" failpoint: every
// APS delivery fails, so the backlog never drains, so the flush blocks in
// the Figure 5 drain barrier while holding the gate exclusively.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace diffindex {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::Global()->DisarmAll();
  }

  // One server, one region: every put lands on the region whose flush we
  // stall, and counter deltas are attributable to our own requests.
  std::unique_ptr<Cluster> MakeCluster(uint64_t stall_micros,
                                       uint64_t max_delay_micros,
                                       int l0_slack, int max_retries) {
    ClusterOptions options;
    options.num_servers = 1;
    options.regions_per_table = 1;
    options.server.admission_stall_micros = stall_micros;
    options.server.admission_max_delay_micros = max_delay_micros;
    options.server.admission_l0_slack = l0_slack;
    options.server.lsm.compaction_trigger = 2;
    options.auq.retry_backoff_ms = 1;
    options.client.max_retries = max_retries;
    options.client.retry_backoff_ms = 2;
    std::unique_ptr<Cluster> cluster;
    EXPECT_TRUE(Cluster::Create(options, &cluster).ok());
    EXPECT_TRUE(cluster->master()->CreateTable("items").ok());
    IndexDescriptor index;
    index.name = "by_title";
    index.column = "title";
    index.scheme = IndexScheme::kAsyncSimple;
    EXPECT_TRUE(cluster->master()->CreateIndex("items", index).ok());
    return cluster;
  }

  uint64_t Counter(Cluster* cluster, const char* name) {
    return cluster->metrics()->GetCounter(name)->value();
  }
};

TEST_F(AdmissionTest, StalledFlushDelaysThenRejectsWithExactCounters) {
  auto cluster = MakeCluster(/*stall_micros=*/30000,
                             /*max_delay_micros=*/5000, /*l0_slack=*/-1,
                             /*max_retries=*/0);
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());

  // Backlog a task the APS can never deliver, then flush: the drain
  // barrier blocks with the gate held and the stall clock running.
  fault::FailpointRegistry::Global()->Arm(
      "auq.process", fault::FailpointPolicy::ErrorEveryNth(1));
  ASSERT_TRUE(client->PutColumn("items", "r0", "title", "t0").ok());
  std::thread flusher([&] {
    auto flush_client = cluster->NewClient();
    ASSERT_TRUE(flush_client->RefreshLayout().ok());
    EXPECT_TRUE(flush_client->FlushTable("items").ok());
  });
  // Let the stall age past admission_stall_micros.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const uint64_t delayed = Counter(cluster.get(), "admission.delayed");
  const uint64_t delayed_micros =
      Counter(cluster.get(), "admission.delayed_micros");
  const uint64_t rejected = Counter(cluster.get(), "admission.rejected");

  // Two puts, no client retries: each is delayed the full bounded window
  // (5 nominal 1ms slices) and then shed.
  Status s1 = client->PutColumn("items", "r1", "title", "t1");
  ASSERT_TRUE(s1.IsResourceExhausted()) << s1.ToString();
  Status s2 = client->PutColumn("items", "r2", "title", "t2");
  ASSERT_TRUE(s2.IsResourceExhausted()) << s2.ToString();

  EXPECT_EQ(Counter(cluster.get(), "admission.delayed"), delayed + 2);
  EXPECT_EQ(Counter(cluster.get(), "admission.delayed_micros"),
            delayed_micros + 2 * 5000);
  EXPECT_EQ(Counter(cluster.get(), "admission.rejected"), rejected + 2);

  // Clear the stall: the APS delivers, the drain barrier opens, the flush
  // finishes and resets the stall clock — puts are admitted again.
  fault::FailpointRegistry::Global()->Disarm("auq.process");
  flusher.join();
  Status s3 = client->PutColumn("items", "r3", "title", "t3");
  EXPECT_TRUE(s3.ok()) << s3.ToString();
  EXPECT_EQ(Counter(cluster.get(), "admission.rejected"), rejected + 2);
}

TEST_F(AdmissionTest, ClientBackoffRetriesSucceedOnceStallClears) {
  auto cluster = MakeCluster(/*stall_micros=*/10000,
                             /*max_delay_micros=*/5000, /*l0_slack=*/-1,
                             /*max_retries=*/8);
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());

  fault::FailpointRegistry::Global()->Arm(
      "auq.process", fault::FailpointPolicy::ErrorEveryNth(1));
  ASSERT_TRUE(client->PutColumn("items", "r0", "title", "t0").ok());
  std::thread flusher([&] {
    auto flush_client = cluster->NewClient();
    ASSERT_TRUE(flush_client->RefreshLayout().ok());
    EXPECT_TRUE(flush_client->FlushTable("items").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  // Clear the stall mid-retry: the put's first attempts are shed with
  // kResourceExhausted, the client backs off and retries, and a later
  // attempt lands after the flush completes.
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    fault::FailpointRegistry::Global()->Disarm("auq.process");
  });
  Status s = client->PutColumn("items", "r1", "title", "t1");
  healer.join();
  flusher.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // The success came through the retry loop, not first-try luck.
  EXPECT_GT(Counter(cluster.get(), "admission.rejected"), 0u);
  EXPECT_GT(Counter(cluster.get(), "client.retries"), 0u);
}

TEST_F(AdmissionTest, L0DebtTripsAdmissionUntilCompactionCatchesUp) {
  // compaction_trigger=2, slack=2: admission trips at 4 disk stores.
  auto cluster = MakeCluster(/*stall_micros=*/1000000000,
                             /*max_delay_micros=*/2000, /*l0_slack=*/2,
                             /*max_retries=*/0);
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());

  // First flush builds L0=1 with compaction off the table (1 < trigger).
  ASSERT_TRUE(client->PutColumn("items", "a0", "title", "t").ok());
  ASSERT_TRUE(client->FlushTable("items").ok());

  // From here every flush writes two SSTs in order: the flushed memtable,
  // then the compaction output (L0 is at/above trigger). EveryNth(2)
  // fails exactly the compaction ones — "compaction can't keep up" — so
  // each put+flush cycle grows the debt by one store.
  fault::FailpointRegistry::Global()->Arm(
      "lsm.sst_write", fault::FailpointPolicy::ErrorEveryNth(2));
  for (int i = 1; i <= 3; i++) {
    const std::string row = "a" + std::to_string(i);
    ASSERT_TRUE(client->PutColumn("items", row, "title", "t").ok())
        << "debt " << i;
    // The flush itself succeeds; the trailing compaction fails.
    EXPECT_FALSE(client->FlushTable("items").ok());
  }

  // Debt is now trigger + slack = 4: puts are delayed the bounded window
  // and shed, with exact nominal accounting.
  const uint64_t delayed_micros =
      Counter(cluster.get(), "admission.delayed_micros");
  const uint64_t rejected = Counter(cluster.get(), "admission.rejected");
  Status s = client->PutColumn("items", "b0", "title", "t");
  ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(Counter(cluster.get(), "admission.delayed_micros"),
            delayed_micros + 2000);
  EXPECT_EQ(Counter(cluster.get(), "admission.rejected"), rejected + 1);

  // Compaction catches up (failpoint off): the debt collapses and the
  // same put is admitted.
  fault::FailpointRegistry::Global()->Disarm("lsm.sst_write");
  ASSERT_TRUE(client->CompactTable("items").ok());
  Status retry = client->PutColumn("items", "b0", "title", "t");
  EXPECT_TRUE(retry.ok()) << retry.ToString();
}

}  // namespace
}  // namespace diffindex
