#include "cluster/scanner.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

class ScannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    client_ = cluster_->NewClient();
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(client_->PutColumn("t", RowFor(i), "c",
                                     "v" + std::to_string(i))
                      .ok());
    }
  }

  static std::string RowFor(int i) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%03d", (i * 37) % 256, i);
    return row;
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(ScannerTest, StreamsWholeTableInBatches) {
  TableScanner::Options options;
  options.batch_rows = 16;
  TableScanner scanner(client_, "t", options);
  std::set<std::string> seen;
  std::string prev;
  while (!scanner.exhausted()) {
    std::vector<ScannedRow> batch;
    ASSERT_TRUE(scanner.NextBatch(&batch).ok());
    EXPECT_LE(batch.size(), 16u);
    for (const auto& row : batch) {
      EXPECT_GT(row.row, prev);  // globally sorted, no duplicates
      prev = row.row;
      seen.insert(row.row);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(scanner.rows_returned(), 100u);
}

TEST_F(ScannerTest, HonorsRange) {
  TableScanner::Options options;
  options.start_row = "40";
  options.end_row = "80";
  options.batch_rows = 8;
  TableScanner scanner(client_, "t", options);
  uint64_t count = 0;
  while (!scanner.exhausted()) {
    std::vector<ScannedRow> batch;
    ASSERT_TRUE(scanner.NextBatch(&batch).ok());
    for (const auto& row : batch) {
      EXPECT_GE(row.row, "40");
      EXPECT_LT(row.row, "80");
      count++;
    }
  }
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 100u);
}

TEST_F(ScannerTest, EmptyRangeTerminatesImmediately) {
  TableScanner::Options options;
  options.start_row = "zz";
  TableScanner scanner(client_, "t", options);
  std::vector<ScannedRow> batch;
  ASSERT_TRUE(scanner.NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(scanner.exhausted());
}

TEST_F(ScannerTest, SurvivesFailoverMidScan) {
  TableScanner::Options options;
  options.batch_rows = 16;
  TableScanner scanner(client_, "t", options);
  std::vector<ScannedRow> batch;
  ASSERT_TRUE(scanner.NextBatch(&batch).ok());
  const uint64_t first = scanner.rows_returned();
  ASSERT_TRUE(cluster_->KillServer(1).ok());
  uint64_t total = first;
  while (!scanner.exhausted()) {
    ASSERT_TRUE(scanner.NextBatch(&batch).ok());
    total += batch.size();
  }
  EXPECT_EQ(total, 100u);  // the cursor resumes against the new layout
}

// Client::ScanRows with a limit crossing a region boundary: the client
// keeps walking regions in key order until the limit fills, so the
// caller gets exactly `limit` globally-sorted rows — not one region's
// worth. The read engine's table-range workload op depends on this.
TEST_F(ScannerTest, ScanRowsFillsLimitAcrossRegionBoundary) {
  // The first region holds only the rows below "40" — fewer than 50.
  std::vector<ScannedRow> first_region;
  ASSERT_TRUE(
      client_->ScanRows("t", "", "40", kMaxTimestamp, 0, &first_region)
          .ok());
  ASSERT_LT(first_region.size(), 50u);
  ASSERT_GT(first_region.size(), 0u);

  std::vector<ScannedRow> all;
  ASSERT_TRUE(client_->ScanRows("t", "", "", kMaxTimestamp, 0, &all).ok());
  ASSERT_EQ(all.size(), 100u);

  std::vector<ScannedRow> limited;
  ASSERT_TRUE(
      client_->ScanRows("t", "", "", kMaxTimestamp, 50, &limited).ok());
  ASSERT_EQ(limited.size(), 50u);
  for (size_t i = 0; i < limited.size(); i++) {
    EXPECT_EQ(limited[i].row, all[i].row) << i;  // sorted prefix
  }
}

}  // namespace
}  // namespace diffindex
