// WAL group commit: concurrent writers share one fsync window without
// giving up durability — every acked write survives a crash, and the
// wal.group_size histogram shows syncs actually amortizing.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"

namespace diffindex {
namespace {

ClusterOptions GroupCommitOptions() {
  ClusterOptions options;
  options.num_servers = 2;
  // Several regions per server: writers to the SAME region serialize on
  // its write_mu, so grouping happens across regions sharing a WAL.
  options.regions_per_table = 8;
  options.server.wal_sync = wal::SyncMode::kGroupCommit;
  options.server.wal_group_window_micros = 200;
  return options;
}

TEST(GroupCommitTest, ConcurrentWritersAllDurableAndReadable) {
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(GroupCommitOptions(), &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("kv").ok());

  constexpr int kWriters = 6;
  constexpr int kWritesEach = 50;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&cluster, w] {
      auto client = cluster->NewDiffIndexClient();
      for (int i = 0; i < kWritesEach; i++) {
        char row[24];
        snprintf(row, sizeof(row), "%02x-w%d-%d", (w * 41 + i) % 256, w, i);
        ASSERT_TRUE(client->PutColumn("kv", row, "c", "x").ok());
      }
    });
  }
  for (auto& writer : writers) writer.join();

  auto client = cluster->NewDiffIndexClient();
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kWritesEach; i++) {
      char row[24];
      snprintf(row, sizeof(row), "%02x-w%d-%d", (w * 41 + i) % 256, w, i);
      std::string value;
      ASSERT_TRUE(client->Get("kv", row, "c", &value).ok()) << row;
    }
  }

  // The whole point: fewer fsyncs than appends, i.e. group sizes recorded
  // and at least one batch bigger than one writer.
  Histogram* sizes = cluster->metrics()->GetHistogram("wal.group_size");
  ASSERT_GT(sizes->Count(), 0u);
  EXPECT_LT(sizes->Count(),
            static_cast<uint64_t>(kWriters) * kWritesEach)
      << "every append got its own sync; grouping never happened";
}

TEST(GroupCommitTest, AckedWritesSurviveCrash) {
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(GroupCommitOptions(), &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("kv").ok());

  auto client = cluster->NewDiffIndexClient();
  std::vector<std::string> rows;
  for (int i = 0; i < 80; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r%d", (i * 13) % 256, i);
    rows.push_back(row);
    ASSERT_TRUE(
        client->PutColumn("kv", row, "c", "v" + std::to_string(i)).ok());
  }

  // Crash one server: its memtables are gone, and WAL replay on the
  // survivor must bring back every acked write (its group's sync
  // completed before the ack).
  ASSERT_TRUE(cluster->KillServer(cluster->server_ids().front()).ok());
  for (int i = 0; i < 80; i++) {
    std::string value;
    ASSERT_TRUE(client->Get("kv", rows[i], "c", &value).ok()) << rows[i];
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(GroupCommitTest, ZeroWindowStillGroupsUnderContention) {
  // No accumulation sleep: grouping comes purely from writers landing
  // while a sync is in flight. Correctness must not depend on the window.
  ClusterOptions options = GroupCommitOptions();
  options.server.wal_group_window_micros = 0;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("kv").ok());

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&cluster, w] {
      auto client = cluster->NewDiffIndexClient();
      for (int i = 0; i < 40; i++) {
        char row[24];
        snprintf(row, sizeof(row), "%02x-z%d-%d", (w * 59 + i) % 256, w, i);
        ASSERT_TRUE(client->PutColumn("kv", row, "c", "y").ok());
      }
    });
  }
  for (auto& writer : writers) writer.join();

  auto client = cluster->NewDiffIndexClient();
  std::string value;
  ASSERT_TRUE(client->Get("kv", "00-z0-0", "c", &value).ok());
  EXPECT_EQ(value, "y");
  EXPECT_GT(cluster->metrics()->GetHistogram("wal.group_size")->Count(), 0u);
}

}  // namespace
}  // namespace diffindex
