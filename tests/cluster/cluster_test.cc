// Integration tests of the simulated cluster substrate: routing, CRUD
// across regions, scans, layout refresh, WAL-based crash recovery and
// region reassignment.

#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/random.h"

namespace diffindex {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    options.server.lsm.memtable_flush_bytes = 64 << 10;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewClient();
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Client> client_;
};

TEST_F(ClusterTest, CreateTableAssignsRegionsAcrossServers) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  auto regions = cluster_->master()->regions();
  ASSERT_EQ(regions.size(), 6u);
  std::set<uint32_t> owners;
  for (const auto& region : regions) owners.insert(region.server_id);
  EXPECT_EQ(owners.size(), 3u);  // round-robin across all three servers
  // Ranges tile the keyspace.
  EXPECT_EQ(regions.front().start_row, "");
  EXPECT_EQ(regions.back().end_row, "");
}

TEST_F(ClusterTest, PutGetAcrossRegions) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  // Keys spread over the whole hex keyspace (hit every region).
  for (int i = 0; i < 64; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-row", i * 4);
    ASSERT_TRUE(
        client_->PutColumn("items", row, "title", "t" + std::to_string(i))
            .ok());
  }
  for (int i = 0; i < 64; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-row", i * 4);
    std::string value;
    ASSERT_TRUE(
        client_->GetCell("items", row, "title", kMaxTimestamp, &value).ok());
    EXPECT_EQ(value, "t" + std::to_string(i));
  }
}

TEST_F(ClusterTest, GetMissingIsNotFound) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  std::string value;
  EXPECT_TRUE(client_->GetCell("items", "nope", "c", kMaxTimestamp, &value)
                  .IsNotFound());
}

TEST_F(ClusterTest, MultiColumnRow) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  ASSERT_TRUE(client_
                  ->Put("items", "aa-row",
                        {Cell{"title", "widget", false},
                         Cell{"price", "99", false},
                         Cell{"stock", "5", false}})
                  .ok());
  GetRowResponse row;
  ASSERT_TRUE(client_->GetRow("items", "aa-row", kMaxTimestamp, &row).ok());
  ASSERT_TRUE(row.found);
  EXPECT_EQ(row.cells.size(), 3u);
}

TEST_F(ClusterTest, DeleteColumnsRemovesCells) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  ASSERT_TRUE(client_
                  ->Put("items", "aa-row",
                        {Cell{"title", "widget", false},
                         Cell{"price", "99", false}})
                  .ok());
  ASSERT_TRUE(client_->DeleteColumns("items", "aa-row", {"price"}).ok());
  std::string value;
  EXPECT_TRUE(
      client_->GetCell("items", "aa-row", "price", kMaxTimestamp, &value)
          .IsNotFound());
  EXPECT_TRUE(
      client_->GetCell("items", "aa-row", "title", kMaxTimestamp, &value)
          .ok());
}

TEST_F(ClusterTest, ScanSpansRegionBoundaries) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 48; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-k", i * 5);
    keys.push_back(row);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "v").ok());
  }
  std::sort(keys.begin(), keys.end());

  std::vector<ScannedRow> rows;
  ASSERT_TRUE(
      client_->ScanRows("items", "", "", kMaxTimestamp, 0, &rows).ok());
  ASSERT_EQ(rows.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(rows[i].row, keys[i]);  // globally sorted across regions
  }
}

TEST_F(ClusterTest, ScanWithLimitStopsEarly) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  for (int i = 0; i < 40; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-k", i * 6);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "v").ok());
  }
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(
      client_->ScanRows("items", "", "", kMaxTimestamp, 7, &rows).ok());
  EXPECT_EQ(rows.size(), 7u);
}

TEST_F(ClusterTest, RejectsRowWithCellSeparator) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  Status s = client_->PutColumn("items", std::string("bad\0row", 7), "c", "v");
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(ClusterTest, UpdatesAreVersioned) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa", "c", "v1").ok());
  PutResponse resp;
  ASSERT_TRUE(client_
                  ->Put("items", "aa", {Cell{"c", "v2", false}}, 0,
                        /*return_old_values=*/true, &resp)
                  .ok());
  ASSERT_EQ(resp.old_values.size(), 1u);
  EXPECT_TRUE(resp.old_values[0].found);
  EXPECT_EQ(resp.old_values[0].value, "v1");
  EXPECT_GT(resp.assigned_ts, resp.old_values[0].ts);

  std::string value;
  ASSERT_TRUE(
      client_->GetCell("items", "aa", "c", kMaxTimestamp, &value).ok());
  EXPECT_EQ(value, "v2");
  // Historical read sees v1.
  ASSERT_TRUE(client_
                  ->GetCell("items", "aa", "c", resp.assigned_ts - 1, &value)
                  .ok());
  EXPECT_EQ(value, "v1");
}

TEST_F(ClusterTest, DataSurvivesMemtableFlush) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  Random rng(5);
  for (int i = 0; i < 300; i++) {
    char row[20];
    snprintf(row, sizeof(row), "%02x-%d", (i * 7) % 256, i);
    ASSERT_TRUE(
        client_->PutColumn("items", row, "c", rng.RandomBytes(400)).ok());
  }
  ASSERT_TRUE(client_->FlushTable("items").ok());
  std::string value;
  ASSERT_TRUE(
      client_->GetCell("items", "00-0", "c", kMaxTimestamp, &value).ok());
}

TEST_F(ClusterTest, KillServerRecoversDataFromWal) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  std::vector<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 128; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r%d", (i * 2) % 256, i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", value).ok());
    expected.emplace_back(row, value);
  }
  // No flush: everything lives in memtables + WAL. Kill one server.
  ASSERT_TRUE(cluster_->KillServer(2).ok());

  for (const auto& [row, value] : expected) {
    std::string got;
    Status s = client_->GetCell("items", row, "c", kMaxTimestamp, &got);
    ASSERT_TRUE(s.ok()) << row << ": " << s.ToString();
    EXPECT_EQ(got, value) << row;
  }
}

TEST_F(ClusterTest, KillServerAfterFlushStillServes) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  for (int i = 0; i < 64; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r", i * 4);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "flushed").ok());
  }
  ASSERT_TRUE(client_->FlushTable("items").ok());
  // More puts after the flush (these live only in WAL + memtable).
  for (int i = 0; i < 64; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-post", i * 4);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "post-flush").ok());
  }
  ASSERT_TRUE(cluster_->KillServer(1).ok());

  std::string value;
  for (int i = 0; i < 64; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r", i * 4);
    ASSERT_TRUE(
        client_->GetCell("items", row, "c", kMaxTimestamp, &value).ok())
        << row;
    EXPECT_EQ(value, "flushed");
    snprintf(row, sizeof(row), "%02x-post", i * 4);
    ASSERT_TRUE(
        client_->GetCell("items", row, "c", kMaxTimestamp, &value).ok())
        << row;
    EXPECT_EQ(value, "post-flush");
  }
}

TEST_F(ClusterTest, SequentialDoubleFailure) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  for (int i = 0; i < 96; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r%d", (i * 3) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "v").ok());
  }
  ASSERT_TRUE(cluster_->KillServer(1).ok());
  // Write more after the first failure.
  for (int i = 0; i < 32; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-x%d", (i * 8) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "c", "v2").ok());
  }
  ASSERT_TRUE(cluster_->KillServer(2).ok());

  // Everything still readable from the lone survivor.
  std::string value;
  for (int i = 0; i < 96; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-r%d", (i * 3) % 256, i);
    ASSERT_TRUE(
        client_->GetCell("items", row, "c", kMaxTimestamp, &value).ok())
        << row;
  }
  for (int i = 0; i < 32; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-x%d", (i * 8) % 256, i);
    ASSERT_TRUE(
        client_->GetCell("items", row, "c", kMaxTimestamp, &value).ok())
        << row;
  }
}

TEST_F(ClusterTest, AddServerJoinsAssignmentPool) {
  ASSERT_TRUE(cluster_->AddServer(9).ok());
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  std::set<uint32_t> owners;
  for (const auto& region : cluster_->master()->regions()) {
    owners.insert(region.server_id);
  }
  EXPECT_TRUE(owners.count(9) > 0);
}

TEST_F(ClusterTest, ConcurrentClientsNoLostWrites) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  constexpr int kThreads = 8, kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t] {
      auto client = cluster_->NewClient();
      for (int i = 0; i < kPerThread; i++) {
        char row[24];
        snprintf(row, sizeof(row), "%02x-t%d-i%d", (i * 11 + t) % 256, t, i);
        ASSERT_TRUE(client->PutColumn("items", row, "c",
                                      std::to_string(t * 1000 + i))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      char row[24];
      snprintf(row, sizeof(row), "%02x-t%d-i%d", (i * 11 + t) % 256, t, i);
      std::string value;
      ASSERT_TRUE(
          client_->GetCell("items", row, "c", kMaxTimestamp, &value).ok())
          << row;
      EXPECT_EQ(value, std::to_string(t * 1000 + i));
    }
  }
}

TEST_F(ClusterTest, WalFilesGcAfterFlush) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  RegionServer* server = cluster_->server(1);
  ASSERT_NE(server, nullptr);
  Random rng(6);
  // Enough data to roll the WAL (roll threshold is 8 MB by default; use a
  // smaller workload against the flush/GC path instead).
  for (int i = 0; i < 200; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-g%d", (i * 13) % 256, i);
    ASSERT_TRUE(
        client_->PutColumn("items", row, "c", rng.RandomBytes(256)).ok());
  }
  ASSERT_TRUE(client_->FlushTable("items").ok());
  // After a full flush every closed WAL file is GC-able; only the open
  // tail remains.
  std::vector<std::string> wal_files;
  ASSERT_TRUE(
      Env::Default()->GetChildren(server->wal_dir(), &wal_files).ok());
  EXPECT_LE(wal_files.size(), 2u);
}

}  // namespace
}  // namespace diffindex
