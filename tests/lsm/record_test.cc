#include "lsm/record.h"

#include <gtest/gtest.h>

namespace diffindex {
namespace {

TEST(RecordTest, InternalKeyRoundTrip) {
  const std::string ikey = MakeInternalKey("user-key", 12345,
                                           ValueType::kPut);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user-key");
  EXPECT_EQ(parsed.ts, 12345u);
  EXPECT_EQ(parsed.type, ValueType::kPut);
  EXPECT_EQ(ExtractUserKey(ikey).ToString(), "user-key");
}

TEST(RecordTest, TombstoneRoundTrip) {
  const std::string ikey = MakeInternalKey("k", 7, ValueType::kTombstone);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ(parsed.type, ValueType::kTombstone);
}

TEST(RecordTest, ParseRejectsShortKeys) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

TEST(RecordTest, EmptyUserKeySupported) {
  const std::string ikey = MakeInternalKey("", 1, ValueType::kPut);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_TRUE(parsed.user_key.empty());
}

TEST(RecordComparatorTest, OrdersByUserKeyAscending) {
  InternalKeyComparator cmp;
  const std::string a = MakeInternalKey("aaa", 5, ValueType::kPut);
  const std::string b = MakeInternalKey("bbb", 5, ValueType::kPut);
  EXPECT_LT(cmp.Compare(a, b), 0);
  EXPECT_GT(cmp.Compare(b, a), 0);
}

TEST(RecordComparatorTest, NewerTimestampSortsFirst) {
  InternalKeyComparator cmp;
  const std::string newer = MakeInternalKey("k", 10, ValueType::kPut);
  const std::string older = MakeInternalKey("k", 5, ValueType::kPut);
  EXPECT_LT(cmp.Compare(newer, older), 0);
}

TEST(RecordComparatorTest, TombstoneBeforePutAtEqualTimestamp) {
  InternalKeyComparator cmp;
  const std::string tomb = MakeInternalKey("k", 10, ValueType::kTombstone);
  const std::string put = MakeInternalKey("k", 10, ValueType::kPut);
  EXPECT_LT(cmp.Compare(tomb, put), 0);
}

TEST(RecordComparatorTest, PrefixKeysDoNotInterleave) {
  // "ab" vs "abc": the shorter user key must sort first regardless of the
  // timestamp bytes that follow it in the encoding.
  InternalKeyComparator cmp;
  const std::string ab_old = MakeInternalKey("ab", 1, ValueType::kPut);
  const std::string abc_new = MakeInternalKey("abc", UINT64_MAX,
                                              ValueType::kTombstone);
  EXPECT_LT(cmp.Compare(ab_old, abc_new), 0);
}

TEST(RecordComparatorTest, EqualKeysCompareZero) {
  InternalKeyComparator cmp;
  const std::string k = MakeInternalKey("k", 3, ValueType::kPut);
  EXPECT_EQ(cmp.Compare(k, k), 0);
}

}  // namespace
}  // namespace diffindex
