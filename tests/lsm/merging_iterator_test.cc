#include "lsm/merging_iterator.h"

#include <gtest/gtest.h>

#include "lsm/memtable.h"

namespace diffindex {
namespace {

std::unique_ptr<RecordIterator> IterOf(const MemTable& mem) {
  return mem.NewIterator();
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  MemTable a, b, c;
  a.Add("apple", 1, ValueType::kPut, "va");
  a.Add("mango", 1, ValueType::kPut, "vm");
  b.Add("banana", 1, ValueType::kPut, "vb");
  c.Add("cherry", 1, ValueType::kPut, "vc");
  c.Add("zebra", 1, ValueType::kPut, "vz");

  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(a));
  children.push_back(IterOf(b));
  children.push_back(IterOf(c));
  auto merged = NewMergingIterator(std::move(children));

  std::vector<std::string> keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys.push_back(ExtractUserKey(merged->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry",
                                            "mango", "zebra"}));
}

TEST(MergingIteratorTest, NewerVersionComesFirstAcrossSources) {
  MemTable newer, older;
  newer.Add("k", 20, ValueType::kPut, "new");
  older.Add("k", 10, ValueType::kPut, "old");
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(newer));  // youngest source first
  children.push_back(IterOf(older));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
}

TEST(MergingIteratorTest, DuplicateInternalKeysYieldYoungestFirst) {
  MemTable young, old;
  young.Add("k", 10, ValueType::kPut, "young-copy");
  old.Add("k", 10, ValueType::kPut, "old-copy");
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(young));
  children.push_back(IterOf(old));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "young-copy");
}

TEST(MergingIteratorTest, EmptyChildrenAreHarmless) {
  MemTable empty, full;
  full.Add("k", 1, ValueType::kPut, "v");
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(empty));
  children.push_back(IterOf(full));
  children.push_back(IterOf(empty));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, AllEmptyIsInvalid) {
  MemTable empty;
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(empty));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIteratorTest, SeekLandsAtLowerBoundAcrossSources) {
  MemTable a, b;
  a.Add("d", 1, ValueType::kPut, "vd");
  b.Add("b", 1, ValueType::kPut, "vb");
  b.Add("f", 1, ValueType::kPut, "vf");
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(IterOf(a));
  children.push_back(IterOf(b));
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek(MakeInternalKey("c", kMaxTimestamp, ValueType::kTombstone));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "d");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "f");
}

}  // namespace
}  // namespace diffindex
