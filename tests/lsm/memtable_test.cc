#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace diffindex {
namespace {

TEST(MemTableTest, PutThenGetLatest) {
  MemTable mem;
  mem.Add("k1", 10, ValueType::kPut, "v1");
  LookupResult r = mem.Get("k1", kMaxTimestamp);
  EXPECT_EQ(r.state, LookupState::kFound);
  EXPECT_EQ(r.value, "v1");
  EXPECT_EQ(r.ts, 10u);
}

TEST(MemTableTest, MissingKeyNotPresent) {
  MemTable mem;
  mem.Add("k1", 10, ValueType::kPut, "v1");
  EXPECT_EQ(mem.Get("k2", kMaxTimestamp).state, LookupState::kNotPresent);
}

TEST(MemTableTest, NewerVersionWins) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "old");
  mem.Add("k", 20, ValueType::kPut, "new");
  LookupResult r = mem.Get("k", kMaxTimestamp);
  EXPECT_EQ(r.value, "new");
  EXPECT_EQ(r.ts, 20u);
}

TEST(MemTableTest, HistoricalReadSeesOldVersion) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "old");
  mem.Add("k", 20, ValueType::kPut, "new");
  // This is exactly RB(k, t_new - delta) from Algorithm 1.
  LookupResult r = mem.Get("k", 20 - kDelta);
  EXPECT_EQ(r.state, LookupState::kFound);
  EXPECT_EQ(r.value, "old");
  EXPECT_EQ(r.ts, 10u);
}

TEST(MemTableTest, ReadBeforeFirstVersionIsNotPresent) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v");
  EXPECT_EQ(mem.Get("k", 9).state, LookupState::kNotPresent);
}

TEST(MemTableTest, TombstoneMasks) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v");
  mem.Add("k", 20, ValueType::kTombstone, "");
  EXPECT_EQ(mem.Get("k", kMaxTimestamp).state, LookupState::kDeleted);
  // Still visible before the delete.
  EXPECT_EQ(mem.Get("k", 15).state, LookupState::kFound);
}

TEST(MemTableTest, TombstoneAtSameTimestampWins) {
  // A delete at exactly ts T masks a put at T (delete-wins tie break).
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v");
  mem.Add("k", 10, ValueType::kTombstone, "");
  EXPECT_EQ(mem.Get("k", kMaxTimestamp).state, LookupState::kDeleted);
}

TEST(MemTableTest, PutAfterTombstoneResurrects) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v1");
  mem.Add("k", 20, ValueType::kTombstone, "");
  mem.Add("k", 30, ValueType::kPut, "v2");
  LookupResult r = mem.Get("k", kMaxTimestamp);
  EXPECT_EQ(r.state, LookupState::kFound);
  EXPECT_EQ(r.value, "v2");
}

TEST(MemTableTest, IdempotentReAdd) {
  // The AUQ recovery protocol may replay the same put twice; LSM semantics
  // make same-(key,ts) adds idempotent (Section 5.3).
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v");
  mem.Add("k", 10, ValueType::kPut, "v");
  EXPECT_EQ(mem.NumEntries(), 1u);
  EXPECT_EQ(mem.Get("k", kMaxTimestamp).value, "v");
}

TEST(MemTableTest, EmptyValueSupported) {
  // Diff-Index index tables are key-only: the rowkey is
  // index_value ⊕ base_rowkey with a null value.
  MemTable mem;
  const std::string index_rowkey("title_x\0row42", 13);
  mem.Add(index_rowkey, 5, ValueType::kPut, "");
  LookupResult r = mem.Get(index_rowkey, kMaxTimestamp);
  EXPECT_EQ(r.state, LookupState::kFound);
  EXPECT_TRUE(r.value.empty());
}

TEST(MemTableTest, MaxTimestampTracksInserts) {
  MemTable mem;
  EXPECT_EQ(mem.MaxTimestamp(), 0u);
  mem.Add("a", 5, ValueType::kPut, "v");
  mem.Add("b", 3, ValueType::kPut, "v");
  EXPECT_EQ(mem.MaxTimestamp(), 5u);
}

TEST(MemTableTest, IteratorYieldsSortedRecords) {
  MemTable mem;
  mem.Add("b", 1, ValueType::kPut, "vb");
  mem.Add("a", 2, ValueType::kPut, "va2");
  mem.Add("a", 1, ValueType::kPut, "va1");
  mem.Add("c", 9, ValueType::kTombstone, "");

  auto iter = mem.NewIterator();
  InternalKeyComparator cmp;
  std::vector<std::pair<std::string, Timestamp>> seen;
  std::string prev;
  bool has_prev = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (has_prev) {
      EXPECT_LT(cmp.Compare(prev, iter->key()), 0);
    }
    prev = iter->key().ToString();
    has_prev = true;
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    seen.emplace_back(parsed.user_key.ToString(), parsed.ts);
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair<std::string, Timestamp>{"a", 2}));
  EXPECT_EQ(seen[1], (std::pair<std::string, Timestamp>{"a", 1}));
  EXPECT_EQ(seen[2], (std::pair<std::string, Timestamp>{"b", 1}));
  EXPECT_EQ(seen[3], (std::pair<std::string, Timestamp>{"c", 9}));
}

TEST(MemTableTest, IteratorSeek) {
  MemTable mem;
  mem.Add("a", 1, ValueType::kPut, "va");
  mem.Add("m", 1, ValueType::kPut, "vm");
  mem.Add("z", 1, ValueType::kPut, "vz");
  auto iter = mem.NewIterator();
  iter->Seek(MakeInternalKey("b", kMaxTimestamp, ValueType::kTombstone));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "m");
}

// Property test: random versioned ops against a model map of
// key -> (ts -> (type, value)).
TEST(MemTableTest, RandomOpsMatchModel) {
  MemTable mem;
  // model[key] = map ts -> optional value (nullopt = tombstone); with
  // delete-wins at equal ts.
  std::map<std::string, std::map<Timestamp, std::pair<bool, std::string>>>
      model;
  Random rng(1234);
  Timestamp ts = 1;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(50));
    ts += rng.Uniform(3);  // occasionally reuse a timestamp
    if (rng.OneIn(5)) {
      mem.Add(key, ts, ValueType::kTombstone, "");
      model[key][ts] = {true, ""};
    } else {
      const std::string value = "v" + std::to_string(i);
      mem.Add(key, ts, ValueType::kPut, value);
      auto it = model[key].find(ts);
      if (it == model[key].end()) {
        model[key][ts] = {false, value};
      } else if (!it->second.first) {
        // Same (key, ts, put) re-add: first write wins; tombstone at the
        // same ts always wins over a put.
      }
    }
  }

  // Check lookups at random read timestamps.
  for (int i = 0; i < 2000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(60));
    const Timestamp read_ts = 1 + rng.Uniform(ts + 10);
    LookupResult got = mem.Get(key, read_ts);

    auto kit = model.find(key);
    if (kit == model.end()) {
      EXPECT_EQ(got.state, LookupState::kNotPresent);
      continue;
    }
    // Newest model version with ts <= read_ts.
    auto vit = kit->second.upper_bound(read_ts);
    if (vit == kit->second.begin()) {
      EXPECT_EQ(got.state, LookupState::kNotPresent);
      continue;
    }
    --vit;
    if (vit->second.first) {
      EXPECT_EQ(got.state, LookupState::kDeleted) << key << "@" << read_ts;
    } else {
      ASSERT_EQ(got.state, LookupState::kFound) << key << "@" << read_ts;
      EXPECT_EQ(got.value, vit->second.second);
      EXPECT_EQ(got.ts, vit->first);
    }
  }
}

}  // namespace
}  // namespace diffindex
