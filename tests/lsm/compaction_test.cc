// Focused compaction tests: garbage-collection policy (masked versions,
// version cap, tombstone dropping), idempotent-duplicate collapsing, and
// the accounting in CompactionStats.

#include "lsm/compaction.h"

#include <gtest/gtest.h>

#include "lsm/memtable.h"
#include "util/env.h"

namespace diffindex {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "compaction_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    (void)Env::Default()->RemoveDirRecursively(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    options_.block_size = 512;
  }

  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  std::string Path(int n) {
    return dir_ + "/" + std::to_string(n) + ".sst";
  }

  std::shared_ptr<SstReader> BuildTable(const MemTable& mem, int file_num) {
    auto iter = mem.NewIterator();
    SstMeta meta;
    EXPECT_TRUE(BuildSstFromIterator(options_, Path(file_num), file_num,
                                     iter.get(), &meta)
                    .ok());
    std::shared_ptr<SstReader> reader;
    EXPECT_TRUE(
        SstReader::Open(options_, Path(file_num), file_num, &reader).ok());
    return reader;
  }

  std::shared_ptr<SstReader> Compact(
      const std::vector<std::shared_ptr<SstReader>>& inputs,
      bool drop_tombstones, CompactionStats* stats) {
    SstMeta meta;
    EXPECT_TRUE(CompactTables(options_, inputs, Path(99), 99,
                              drop_tombstones, &meta, stats)
                    .ok());
    std::shared_ptr<SstReader> reader;
    EXPECT_TRUE(SstReader::Open(options_, Path(99), 99, &reader).ok());
    return reader;
  }

  LsmOptions options_;
  std::string dir_;
};

TEST_F(CompactionTest, MergesVersionsAcrossTables) {
  MemTable old_mem, new_mem;
  old_mem.Add("k", 10, ValueType::kPut, "v10");
  new_mem.Add("k", 20, ValueType::kPut, "v20");
  auto old_table = BuildTable(old_mem, 1);
  auto new_table = BuildTable(new_mem, 2);

  CompactionStats stats;
  // Inputs youngest first.
  auto merged = Compact({new_table, old_table}, true, &stats);
  EXPECT_EQ(stats.input_records, 2u);
  EXPECT_EQ(stats.output_records, 2u);
  EXPECT_EQ(merged->Get("k", kMaxTimestamp).value, "v20");
  EXPECT_EQ(merged->Get("k", 15).value, "v10");
}

TEST_F(CompactionTest, DropsVersionsBeyondMax) {
  options_.max_versions = 2;
  MemTable mem;
  for (Timestamp ts = 1; ts <= 5; ts++) {
    mem.Add("k", ts, ValueType::kPut, "v" + std::to_string(ts));
  }
  auto table = BuildTable(mem, 1);
  CompactionStats stats;
  auto merged = Compact({table}, true, &stats);
  EXPECT_EQ(stats.dropped_versions, 3u);
  EXPECT_EQ(merged->meta().num_entries, 2u);
  EXPECT_EQ(merged->Get("k", kMaxTimestamp).value, "v5");
  EXPECT_EQ(merged->Get("k", 4).value, "v4");
  EXPECT_EQ(merged->Get("k", 3).state, LookupState::kNotPresent);
}

TEST_F(CompactionTest, TombstoneMasksOlderVersions) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v10");
  mem.Add("k", 20, ValueType::kTombstone, "");
  mem.Add("k", 30, ValueType::kPut, "v30");
  auto table = BuildTable(mem, 1);

  CompactionStats stats;
  auto merged = Compact({table}, /*drop_tombstones=*/true, &stats);
  EXPECT_EQ(stats.dropped_masked, 1u);      // v10
  EXPECT_EQ(stats.dropped_tombstones, 1u);  // the marker itself
  EXPECT_EQ(merged->meta().num_entries, 1u);
  EXPECT_EQ(merged->Get("k", kMaxTimestamp).value, "v30");
}

TEST_F(CompactionTest, TombstoneRetainedWhenNotMajor) {
  MemTable mem;
  mem.Add("k", 20, ValueType::kTombstone, "");
  auto table = BuildTable(mem, 1);
  CompactionStats stats;
  auto merged = Compact({table}, /*drop_tombstones=*/false, &stats);
  // The marker survives so it can still mask data in older stores that
  // were not part of this compaction.
  EXPECT_EQ(merged->meta().num_entries, 1u);
  EXPECT_EQ(merged->Get("k", kMaxTimestamp).state, LookupState::kDeleted);
}

TEST_F(CompactionTest, IdempotentDuplicatesCollapse) {
  // Recovery can deliver the same (key, ts) record to two different
  // stores; compaction must emit it once.
  MemTable a, b;
  a.Add("k", 10, ValueType::kPut, "v");
  b.Add("k", 10, ValueType::kPut, "v");
  auto table_a = BuildTable(a, 1);
  auto table_b = BuildTable(b, 2);
  CompactionStats stats;
  auto merged = Compact({table_a, table_b}, true, &stats);
  EXPECT_EQ(merged->meta().num_entries, 1u);
}

TEST_F(CompactionTest, ManyKeysSurviveIntact) {
  MemTable a, b;
  for (int i = 0; i < 500; i++) {
    const std::string key = "key" + std::to_string(i);
    a.Add(key, 1, ValueType::kPut, "old" + std::to_string(i));
    if (i % 3 == 0) {
      b.Add(key, 2, ValueType::kPut, "new" + std::to_string(i));
    }
  }
  auto older = BuildTable(a, 1);
  auto newer = BuildTable(b, 2);
  CompactionStats stats;
  auto merged = Compact({newer, older}, true, &stats);
  for (int i = 0; i < 500; i += 17) {
    const std::string key = "key" + std::to_string(i);
    LookupResult r = merged->Get(key, kMaxTimestamp);
    ASSERT_EQ(r.state, LookupState::kFound) << key;
    EXPECT_EQ(r.value, (i % 3 == 0 ? "new" : "old") + std::to_string(i));
  }
}

TEST_F(CompactionTest, TombstonePerKeyIndependence) {
  // A tombstone on one key must not mask its neighbors.
  MemTable mem;
  mem.Add("a", 10, ValueType::kPut, "va");
  mem.Add("b", 20, ValueType::kTombstone, "");
  mem.Add("c", 5, ValueType::kPut, "vc");
  auto table = BuildTable(mem, 1);
  CompactionStats stats;
  auto merged = Compact({table}, true, &stats);
  EXPECT_EQ(merged->Get("a", kMaxTimestamp).value, "va");
  EXPECT_EQ(merged->Get("c", kMaxTimestamp).value, "vc");
  EXPECT_EQ(merged->Get("b", kMaxTimestamp).state,
            LookupState::kNotPresent);
}

}  // namespace
}  // namespace diffindex
