#include "lsm/wal.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/random.h"

namespace diffindex {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "wal_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
  }

  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, WriteReadRoundTrip) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  ASSERT_TRUE(writer->AddRecord("record-1").ok());
  ASSERT_TRUE(writer->AddRecord("record-2 is longer").ok());
  ASSERT_TRUE(writer->AddRecord("").ok());  // empty payloads are legal
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record-1");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record-2 is longer");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_FALSE(reader->corruption());
}

TEST_F(WalTest, ManyRecordsRoundTrip) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  Random rng(99);
  std::vector<std::string> payloads;
  for (int i = 0; i < 1000; i++) {
    payloads.push_back(rng.RandomBytes(rng.Uniform(200)));
    ASSERT_TRUE(writer->AddRecord(payloads.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  for (const auto& expected : payloads) {
    ASSERT_TRUE(reader->ReadRecord(&payload));
    ASSERT_EQ(payload, expected);
  }
  EXPECT_FALSE(reader->ReadRecord(&payload));
}

TEST_F(WalTest, TornTailStopsReplayKeepsPrefix) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  ASSERT_TRUE(writer->AddRecord("intact-1").ok());
  ASSERT_TRUE(writer->AddRecord("intact-2").ok());
  ASSERT_TRUE(writer->AddRecord("will-be-torn-away").ok());
  ASSERT_TRUE(writer->Close().ok());

  // Simulate a crash mid-append: truncate inside the last record.
  uint64_t size;
  ASSERT_TRUE(Env::Default()->GetFileSize(path_, &size).ok());
  std::filesystem::resize_file(path_, size - 5);

  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "intact-1");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "intact-2");
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->corruption());
}

TEST_F(WalTest, CorruptedByteDetected) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  ASSERT_TRUE(writer->AddRecord("good").ok());
  ASSERT_TRUE(writer->AddRecord("to-be-corrupted").ok());
  ASSERT_TRUE(writer->Close().ok());

  // Flip a byte inside the second record's payload.
  {
    FILE* f = fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, -3, SEEK_END);
    int c = fgetc(f);
    fseek(f, -3, SEEK_END);
    fputc(c ^ 0xff, f);
    fclose(f);
  }

  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "good");
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_TRUE(reader->corruption());
}

TEST_F(WalTest, EmptyLogIsCleanEnd) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  ASSERT_TRUE(writer->Close().ok());
  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  EXPECT_FALSE(reader->ReadRecord(&payload));
  EXPECT_FALSE(reader->corruption());
}

TEST_F(WalTest, SyncEveryRecordMode) {
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path_,
                                wal::SyncMode::kEveryRecord, &writer)
                  .ok());
  ASSERT_TRUE(writer->AddRecord("durable").ok());
  ASSERT_TRUE(writer->Close().ok());
  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path_, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "durable");
}

}  // namespace
}  // namespace diffindex
