#include "lsm/sstable.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "lsm/memtable.h"
#include "util/random.h"

namespace diffindex {
namespace {

class SstableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "sst_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    options_.block_size = 256;  // small blocks: exercise multi-block paths
    options_.block_cache = std::make_shared<LruCache>(1 << 20);
  }

  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  std::string Path(int n) { return dir_ + "/" + std::to_string(n) + ".sst"; }

  // Builds a table from a memtable's contents.
  std::shared_ptr<SstReader> BuildFrom(const MemTable& mem, int file_num) {
    auto iter = mem.NewIterator();
    SstMeta meta;
    Status s = BuildSstFromIterator(options_, Path(file_num), file_num,
                                    iter.get(), &meta);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::shared_ptr<SstReader> reader;
    s = SstReader::Open(options_, Path(file_num), file_num, &reader);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return reader;
  }

  LsmOptions options_;
  std::string dir_;
};

TEST_F(SstableTest, RoundTripSmall) {
  MemTable mem;
  mem.Add("alpha", 3, ValueType::kPut, "va");
  mem.Add("beta", 2, ValueType::kPut, "vb");
  mem.Add("gamma", 1, ValueType::kTombstone, "");
  auto table = BuildFrom(mem, 1);

  EXPECT_EQ(table->meta().num_entries, 3u);
  EXPECT_EQ(table->meta().smallest_user_key, "alpha");
  EXPECT_EQ(table->meta().largest_user_key, "gamma");

  LookupResult r = table->Get("alpha", kMaxTimestamp);
  EXPECT_EQ(r.state, LookupState::kFound);
  EXPECT_EQ(r.value, "va");
  EXPECT_EQ(r.ts, 3u);

  EXPECT_EQ(table->Get("gamma", kMaxTimestamp).state, LookupState::kDeleted);
  EXPECT_EQ(table->Get("nope", kMaxTimestamp).state,
            LookupState::kNotPresent);
}

TEST_F(SstableTest, MultiBlockLookups) {
  MemTable mem;
  const int n = 500;
  for (int i = 0; i < n; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    mem.Add(key, 1, ValueType::kPut, "value" + std::to_string(i));
  }
  auto table = BuildFrom(mem, 1);
  for (int i = 0; i < n; i += 7) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    LookupResult r = table->Get(key, kMaxTimestamp);
    ASSERT_EQ(r.state, LookupState::kFound) << key;
    EXPECT_EQ(r.value, "value" + std::to_string(i));
  }
}

TEST_F(SstableTest, HistoricalVersionLookup) {
  MemTable mem;
  mem.Add("k", 10, ValueType::kPut, "v10");
  mem.Add("k", 20, ValueType::kPut, "v20");
  mem.Add("k", 30, ValueType::kPut, "v30");
  auto table = BuildFrom(mem, 1);
  EXPECT_EQ(table->Get("k", kMaxTimestamp).value, "v30");
  EXPECT_EQ(table->Get("k", 29).value, "v20");
  EXPECT_EQ(table->Get("k", 20).value, "v20");
  EXPECT_EQ(table->Get("k", 19).value, "v10");
  EXPECT_EQ(table->Get("k", 9).state, LookupState::kNotPresent);
}

TEST_F(SstableTest, IteratorFullScanIsSorted) {
  MemTable mem;
  Random rng(5);
  for (int i = 0; i < 300; i++) {
    mem.Add("k" + std::to_string(rng.Uniform(100000)), i + 1,
            ValueType::kPut, "v");
  }
  auto table = BuildFrom(mem, 1);
  auto iter = table->NewIterator();
  InternalKeyComparator cmp;
  std::string prev;
  uint64_t count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (count > 0) {
      EXPECT_LT(cmp.Compare(prev, iter->key()), 0);
    }
    prev = iter->key().ToString();
    count++;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, table->meta().num_entries);
}

TEST_F(SstableTest, IteratorSeekLandsAtLowerBound) {
  MemTable mem;
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    mem.Add(key, 1, ValueType::kPut, "v");
  }
  auto table = BuildFrom(mem, 1);
  auto iter = table->NewIterator();
  // Seek to an absent odd key: should land on the next even key.
  iter->Seek(MakeInternalKey("k031", kMaxTimestamp, ValueType::kTombstone));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "k032");

  iter->Seek(MakeInternalKey("k999", kMaxTimestamp, ValueType::kTombstone));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(SstableTest, BloomFilterSkipsAbsentKeys) {
  MemTable mem;
  for (int i = 0; i < 1000; i++) {
    mem.Add("present" + std::to_string(i), 1, ValueType::kPut, "v");
  }
  auto table = BuildFrom(mem, 1);
  int admitted = 0;
  for (int i = 0; i < 1000; i++) {
    if (table->KeyMayMatch("absent" + std::to_string(i))) admitted++;
  }
  EXPECT_LT(admitted, 50);  // ~1% target, generous bound
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(table->KeyMayMatch("present" + std::to_string(i)));
  }
}

TEST_F(SstableTest, BlockCacheAvoidsRereads) {
  MemTable mem;
  for (int i = 0; i < 200; i++) {
    mem.Add("k" + std::to_string(i), 1, ValueType::kPut, "v");
  }
  auto table = BuildFrom(mem, 1);
  const uint64_t misses_before = options_.block_cache->misses();
  (void)table->Get("k5", kMaxTimestamp);
  (void)table->Get("k5", kMaxTimestamp);
  (void)table->Get("k5", kMaxTimestamp);
  const uint64_t misses_after = options_.block_cache->misses();
  // Only the first lookup of the block may miss.
  EXPECT_LE(misses_after - misses_before, 1u);
}

TEST_F(SstableTest, CorruptBlockDetected) {
  MemTable mem;
  for (int i = 0; i < 200; i++) {
    mem.Add("k" + std::to_string(i), 1, ValueType::kPut,
            "value-" + std::to_string(i));
  }
  auto iter = mem.NewIterator();
  SstMeta meta;
  ASSERT_TRUE(
      BuildSstFromIterator(options_, Path(1), 1, iter.get(), &meta).ok());

  // Flip one byte early in the file (a data block body).
  {
    FILE* f = fopen(Path(1).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 16, SEEK_SET);
    int c = fgetc(f);
    fseek(f, 16, SEEK_SET);
    fputc(c ^ 0xff, f);
    fclose(f);
  }

  // No cache so the corrupt block is actually read.
  LsmOptions no_cache = options_;
  no_cache.block_cache = nullptr;
  std::shared_ptr<SstReader> reader;
  Status s = SstReader::Open(no_cache, Path(1), 1, &reader);
  if (s.ok()) {
    // Open may succeed (corruption is in a data block); the read must not
    // return bogus data.
    LookupResult r = reader->Get("k0", kMaxTimestamp);
    EXPECT_NE(r.value, "bogus");
  } else {
    EXPECT_TRUE(s.IsCorruption());
  }
}

TEST_F(SstableTest, TruncatedFileFailsOpen) {
  MemTable mem;
  mem.Add("k", 1, ValueType::kPut, "v");
  auto iter = mem.NewIterator();
  SstMeta meta;
  ASSERT_TRUE(
      BuildSstFromIterator(options_, Path(1), 1, iter.get(), &meta).ok());
  std::filesystem::resize_file(Path(1), 10);
  std::shared_ptr<SstReader> reader;
  EXPECT_FALSE(SstReader::Open(options_, Path(1), 1, &reader).ok());
}

TEST_F(SstableTest, LargeValuesSpanBlocks) {
  MemTable mem;
  Random rng(11);
  std::vector<std::string> values;
  for (int i = 0; i < 20; i++) {
    values.push_back(rng.RandomBytes(1500));  // bigger than block_size
    mem.Add("k" + std::to_string(i), 1, ValueType::kPut, values.back());
  }
  auto table = BuildFrom(mem, 1);
  for (int i = 0; i < 20; i++) {
    LookupResult r = table->Get("k" + std::to_string(i), kMaxTimestamp);
    ASSERT_EQ(r.state, LookupState::kFound);
    EXPECT_EQ(r.value, values[i]);
  }
}

}  // namespace
}  // namespace diffindex
