// End-to-end tests of the LsmTree facade: flush, compaction, version GC,
// tombstone semantics across stores, scans, manifest recovery, and a
// property test against a model store.

#include "lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "util/random.h"

namespace diffindex {
namespace {

class LsmTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "lsm_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    (void)Env::Default()->RemoveDirRecursively(dir_);
    options_.memtable_flush_bytes = 16 << 10;
    options_.block_size = 512;
    options_.block_cache = std::make_shared<LruCache>(1 << 20);
    options_.compaction_trigger = 4;
    Reopen();
  }

  void TearDown() override {
    tree_.reset();
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  void Reopen() {
    tree_.reset();
    ASSERT_TRUE(LsmTree::Open(options_, dir_, &tree_).ok());
  }

  std::string Get(const std::string& key, Timestamp read_ts = kMaxTimestamp) {
    std::string value;
    Status s = tree_->Get(key, read_ts, &value);
    if (s.IsNotFound()) return "<absent>";
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  LsmOptions options_;
  std::string dir_;
  std::unique_ptr<LsmTree> tree_;
};

TEST_F(LsmTreeTest, PutGetDelete) {
  ASSERT_TRUE(tree_->Put("k", "v1", 10).ok());
  EXPECT_EQ(Get("k"), "v1");
  ASSERT_TRUE(tree_->Put("k", "v2", 20).ok());
  EXPECT_EQ(Get("k"), "v2");
  ASSERT_TRUE(tree_->Delete("k", 30).ok());
  EXPECT_EQ(Get("k"), "<absent>");
  // Historical reads still see the pre-delete data.
  EXPECT_EQ(Get("k", 25), "v2");
  EXPECT_EQ(Get("k", 15), "v1");
  EXPECT_EQ(Get("k", 5), "<absent>");
}

TEST_F(LsmTreeTest, VersionTsReported) {
  ASSERT_TRUE(tree_->Put("k", "v", 42).ok());
  std::string value;
  Timestamp ts = 0;
  ASSERT_TRUE(tree_->Get("k", kMaxTimestamp, &value, &ts).ok());
  EXPECT_EQ(ts, 42u);
}

TEST_F(LsmTreeTest, SurvivesFlush) {
  ASSERT_TRUE(tree_->Put("a", "va", 1).ok());
  ASSERT_TRUE(tree_->Put("b", "vb", 2).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  EXPECT_EQ(tree_->NumDiskStores(), 1);
  EXPECT_EQ(tree_->MemtableEntries(), 0u);
  EXPECT_EQ(Get("a"), "va");
  EXPECT_EQ(Get("b"), "vb");
  EXPECT_EQ(tree_->flushed_ts(), 2u);
}

TEST_F(LsmTreeTest, ReadsMergeAcrossMemtableAndStores) {
  ASSERT_TRUE(tree_->Put("k", "v1", 10).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Put("k", "v2", 20).ok());
  // Newest in memtable, older on disk.
  EXPECT_EQ(Get("k"), "v2");
  EXPECT_EQ(Get("k", 15), "v1");
}

TEST_F(LsmTreeTest, TombstoneInMemtableMasksDiskPut) {
  ASSERT_TRUE(tree_->Put("k", "v1", 10).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Delete("k", 20).ok());
  EXPECT_EQ(Get("k"), "<absent>");
}

TEST_F(LsmTreeTest, TombstoneSurvivesFlushUntilMajorCompaction) {
  ASSERT_TRUE(tree_->Put("k", "v1", 10).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Delete("k", 20).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  EXPECT_EQ(tree_->NumDiskStores(), 2);
  EXPECT_EQ(Get("k"), "<absent>");
  ASSERT_TRUE(tree_->CompactAll().ok());
  EXPECT_EQ(tree_->NumDiskStores(), 1);
  EXPECT_EQ(Get("k"), "<absent>");  // still deleted after GC
}

TEST_F(LsmTreeTest, CompactionKeepsMaxVersions) {
  options_.max_versions = 2;
  Reopen();
  for (Timestamp ts = 1; ts <= 6; ts++) {
    ASSERT_TRUE(tree_->Put("k", "v" + std::to_string(ts), ts).ok());
    ASSERT_TRUE(tree_->Flush().ok());
  }
  ASSERT_TRUE(tree_->CompactAll().ok());
  std::vector<LsmTree::Version> versions;
  ASSERT_TRUE(tree_->GetVersions("k", &versions).ok());
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].ts, 6u);
  EXPECT_EQ(versions[1].ts, 5u);
  // Latest still correct.
  EXPECT_EQ(Get("k"), "v6");
}

TEST_F(LsmTreeTest, AutoFlushOnMemtableFull) {
  Random rng(3);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(tree_->Put("key" + std::to_string(i), rng.RandomBytes(100),
                           i + 1)
                    .ok());
    if (tree_->NeedsFlush()) {
      ASSERT_TRUE(tree_->Flush().ok());
    }
  }
  EXPECT_GT(tree_->NumDiskStores(), 0);
  EXPECT_EQ(Get("key0"), Get("key0"));  // readable, deterministic
  EXPECT_NE(Get("key1999"), "<absent>");
}

TEST_F(LsmTreeTest, ScanRange) {
  ASSERT_TRUE(tree_->Put("a", "va", 1).ok());
  ASSERT_TRUE(tree_->Put("b", "vb", 2).ok());
  ASSERT_TRUE(tree_->Put("c", "vc", 3).ok());
  ASSERT_TRUE(tree_->Put("d", "vd", 4).ok());
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("b", "d", kMaxTimestamp, 0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "b");
  EXPECT_EQ(out[1].key, "c");
}

TEST_F(LsmTreeTest, ScanSeesLatestVersionOnly) {
  ASSERT_TRUE(tree_->Put("k", "old", 1).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Put("k", "new", 2).ok());
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("", "", kMaxTimestamp, 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "new");
}

TEST_F(LsmTreeTest, ScanSkipsDeleted) {
  ASSERT_TRUE(tree_->Put("a", "va", 1).ok());
  ASSERT_TRUE(tree_->Put("b", "vb", 2).ok());
  ASSERT_TRUE(tree_->Delete("a", 3).ok());
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("", "", kMaxTimestamp, 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "b");
}

TEST_F(LsmTreeTest, ScanAtHistoricalTimestamp) {
  ASSERT_TRUE(tree_->Put("a", "va", 10).ok());
  ASSERT_TRUE(tree_->Put("b", "vb", 20).ok());
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("", "", 15, 0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "a");
}

TEST_F(LsmTreeTest, ScanLimit) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        tree_->Put("k" + std::to_string(i), "v", i + 1).ok());
  }
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("", "", kMaxTimestamp, 3, &out).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(LsmTreeTest, ScanPrefixStyleRange) {
  // Index reads scan [v, v+1) style ranges over concatenated keys.
  ASSERT_TRUE(tree_->Put(std::string("title_a\0r1", 10), "", 1).ok());
  ASSERT_TRUE(tree_->Put(std::string("title_a\0r2", 10), "", 2).ok());
  ASSERT_TRUE(tree_->Put(std::string("title_b\0r3", 10), "", 3).ok());
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan(std::string("title_a", 7),
                          std::string("title_a\xff", 8), kMaxTimestamp, 0,
                          &out)
                  .ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(LsmTreeTest, PersistsAcrossReopen) {
  ASSERT_TRUE(tree_->Put("k1", "v1", 1).ok());
  ASSERT_TRUE(tree_->Put("k2", "v2", 2).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Put("k3", "only-in-memtable", 3).ok());
  Reopen();
  // Flushed data persisted; memtable data is the WAL's job (owned by the
  // region server), so k3 is gone at this layer.
  EXPECT_EQ(Get("k1"), "v1");
  EXPECT_EQ(Get("k2"), "v2");
  EXPECT_EQ(Get("k3"), "<absent>");
  EXPECT_EQ(tree_->flushed_ts(), 2u);
}

TEST_F(LsmTreeTest, ReopenAfterCompaction) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v", i + 1).ok());
    ASSERT_TRUE(tree_->Flush().ok());
  }
  ASSERT_TRUE(tree_->CompactAll().ok());
  Reopen();
  EXPECT_EQ(tree_->NumDiskStores(), 1);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(Get("k" + std::to_string(i)), "v");
  }
}

TEST_F(LsmTreeTest, OrphanSstRemovedOnOpen) {
  ASSERT_TRUE(tree_->Put("k", "v", 1).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  // Simulate a crashed compaction output: an .sst not in the manifest.
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(
        Env::Default()->NewWritableFile(dir_ + "/99999999.sst", &f).ok());
    ASSERT_TRUE(f->Append("garbage").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  Reopen();
  EXPECT_FALSE(Env::Default()->FileExists(dir_ + "/99999999.sst"));
  EXPECT_EQ(Get("k"), "v");
}

TEST_F(LsmTreeTest, CompactionTriggerFiresAutomatically) {
  options_.compaction_trigger = 3;
  Reopen();
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v", i + 1).ok());
    ASSERT_TRUE(tree_->Flush().ok());
  }
  // Third flush reached the trigger; stores merged into one.
  EXPECT_EQ(tree_->NumDiskStores(), 1);
}

TEST_F(LsmTreeTest, GetVersionsNewestFirst) {
  ASSERT_TRUE(tree_->Put("k", "v1", 1).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  ASSERT_TRUE(tree_->Put("k", "v2", 2).ok());
  ASSERT_TRUE(tree_->Delete("k", 3).ok());
  std::vector<LsmTree::Version> versions;
  ASSERT_TRUE(tree_->GetVersions("k", &versions).ok());
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_TRUE(versions[0].is_tombstone);
  EXPECT_EQ(versions[1].value, "v2");
  EXPECT_EQ(versions[2].value, "v1");
}

// Property test: random op stream (with interleaved flush/compaction)
// matches a model multi-version map at arbitrary read timestamps.
TEST_F(LsmTreeTest, RandomOpsMatchModelAcrossFlushes) {
  options_.max_versions = 1000;  // disable version GC for exact modeling
  Reopen();
  std::map<std::string, std::map<Timestamp, std::optional<std::string>>>
      model;
  Random rng(2024);
  Timestamp ts = 0;
  for (int i = 0; i < 4000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(80));
    ts += 1 + rng.Uniform(2);
    if (rng.OneIn(6)) {
      ASSERT_TRUE(tree_->Delete(key, ts).ok());
      model[key][ts] = std::nullopt;
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(tree_->Put(key, value, ts).ok());
      model[key][ts] = value;
    }
    if (rng.OneIn(500)) {
      ASSERT_TRUE(tree_->Flush().ok());
    }
    if (rng.OneIn(1500)) {
      ASSERT_TRUE(tree_->CompactAll().ok());
    }
  }

  // Latest reads.
  for (const auto& [key, versions] : model) {
    const auto& [last_ts, last_value] = *versions.rbegin();
    std::string got;
    Status s = tree_->Get(key, kMaxTimestamp, &got);
    if (last_value.has_value()) {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(got, *last_value);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key << " deleted at " << last_ts;
    }
  }

  // Historical reads at random timestamps. A tombstone at T masks
  // versions with ts <= T, so the model lookup mirrors the LSM rule: the
  // newest record with ts <= read_ts decides. Keys that were ever deleted
  // are skipped here: a major compaction legitimately garbage-collects
  // tombstones together with the masked history, so historical reads
  // below a GC'd tombstone are not answerable (latest reads, verified
  // above, still are).
  for (int i = 0; i < 1000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(80));
    const Timestamp read_ts = 1 + rng.Uniform(ts);
    auto kit = model.find(key);
    std::string got;
    Status s = tree_->Get(key, read_ts, &got);
    if (kit == model.end()) {
      EXPECT_TRUE(s.IsNotFound());
      continue;
    }
    bool ever_deleted = false;
    for (const auto& [vts, v] : kit->second) {
      if (!v.has_value()) {
        ever_deleted = true;
        break;
      }
    }
    if (ever_deleted) continue;
    auto vit = kit->second.upper_bound(read_ts);
    if (vit == kit->second.begin()) {
      EXPECT_TRUE(s.IsNotFound()) << key << "@" << read_ts;
      continue;
    }
    --vit;
    if (vit->second.has_value()) {
      ASSERT_TRUE(s.ok()) << key << "@" << read_ts << ": " << s.ToString();
      EXPECT_EQ(got, *vit->second);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key << "@" << read_ts;
    }
  }

  // Scans agree with the model at the latest timestamp.
  std::vector<LsmTree::ScanEntry> out;
  ASSERT_TRUE(tree_->Scan("", "", kMaxTimestamp, 0, &out).ok());
  size_t live = 0;
  for (const auto& [key, versions] : model) {
    if (versions.rbegin()->second.has_value()) live++;
  }
  EXPECT_EQ(out.size(), live);
}

}  // namespace
}  // namespace diffindex
