// Unit tests of the prefix-compressed block format (restart points,
// binary search, corruption handling).

#include "lsm/block.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace diffindex {
namespace {

std::shared_ptr<const std::string> BuildBlock(
    const std::vector<std::pair<std::string, std::string>>& entries,
    int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (const auto& [key, value] : entries) {
    builder.Add(key, value);
  }
  return std::make_shared<std::string>(builder.Finish().ToString());
}

std::vector<std::pair<std::string, std::string>> SortedEntries(int n) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < n; i++) {
    char key[24];
    snprintf(key, sizeof(key), "prefix-shared-%05d", i);
    entries.emplace_back(MakeInternalKey(key, 1, ValueType::kPut),
                         "value" + std::to_string(i));
  }
  return entries;
}

TEST(BlockTest, RoundTripAllEntries) {
  auto entries = SortedEntries(100);
  auto contents = BuildBlock(entries);
  Block block{Slice(*contents)};
  ASSERT_TRUE(block.valid());
  auto iter = block.NewIterator(contents);
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(iter->key().ToString(), entries[i].first);
    EXPECT_EQ(iter->value().ToString(), entries[i].second);
    i++;
  }
  EXPECT_EQ(i, entries.size());
  EXPECT_TRUE(iter->status().ok());
}

TEST(BlockTest, PrefixCompressionShrinksSharedKeys) {
  auto entries = SortedEntries(200);
  auto compressed = BuildBlock(entries, 16);
  auto uncompressed = BuildBlock(entries, 1);  // restart at every entry
  EXPECT_LT(compressed->size(), uncompressed->size() * 3 / 4);
}

TEST(BlockTest, SeekFindsExactAndLowerBound) {
  auto entries = SortedEntries(100);
  auto contents = BuildBlock(entries);
  Block block{Slice(*contents)};
  auto iter = block.NewIterator(contents);

  // Exact hit.
  iter->Seek(entries[37].first);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), entries[37].first);

  // Between two keys: lands on the next one. Keys for i=41 at ts=1; seek
  // to the same user key at an OLDER timestamp (ts=0 sorts after ts=1).
  char key41[24];
  snprintf(key41, sizeof(key41), "prefix-shared-%05d", 41);
  iter->Seek(MakeInternalKey(key41, 0, ValueType::kTombstone));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), entries[42].first);

  // Before everything.
  iter->Seek(MakeInternalKey("a", kMaxTimestamp, ValueType::kTombstone));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), entries[0].first);

  // Past everything.
  iter->Seek(MakeInternalKey("zzzz", kMaxTimestamp, ValueType::kTombstone));
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, SeekWorksAtEveryPosition) {
  auto entries = SortedEntries(64);
  for (int restart_interval : {1, 4, 16, 64}) {
    auto contents = BuildBlock(entries, restart_interval);
    Block block{Slice(*contents)};
    auto iter = block.NewIterator(contents);
    for (const auto& [key, value] : entries) {
      iter->Seek(key);
      ASSERT_TRUE(iter->Valid()) << "interval " << restart_interval;
      EXPECT_EQ(iter->key().ToString(), key);
      EXPECT_EQ(iter->value().ToString(), value);
    }
  }
}

TEST(BlockTest, HandlesNonSharedKeys) {
  std::vector<std::pair<std::string, std::string>> entries;
  Random rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 50; i++) keys.push_back(rng.RandomBytes(8));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const auto& k : keys) {
    entries.emplace_back(MakeInternalKey(k, 1, ValueType::kPut), "v");
  }
  auto contents = BuildBlock(entries);
  Block block{Slice(*contents)};
  auto iter = block.NewIterator(contents);
  size_t count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  EXPECT_EQ(count, entries.size());
}

TEST(BlockTest, EmptyValueEntries) {
  // Index-table entries have empty values.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 30; i++) {
    char key[16];
    snprintf(key, sizeof(key), "idx%04d", i);
    entries.emplace_back(MakeInternalKey(key, 1, ValueType::kPut), "");
  }
  auto contents = BuildBlock(entries);
  Block block{Slice(*contents)};
  auto iter = block.NewIterator(contents);
  iter->Seek(entries[10].first);
  ASSERT_TRUE(iter->Valid());
  EXPECT_TRUE(iter->value().empty());
}

TEST(BlockTest, TruncatedBlockIsInvalid) {
  Block block{Slice("ab")};
  EXPECT_FALSE(block.valid());
}

TEST(BlockTest, GarbageRestartCountIsInvalid) {
  // num_restarts claims more restarts than the block can hold.
  std::string garbage = "xxxx";
  garbage.push_back(static_cast<char>(0xff));
  garbage.push_back(static_cast<char>(0xff));
  garbage.push_back(static_cast<char>(0xff));
  garbage.push_back(static_cast<char>(0x7f));
  Block block{Slice(garbage)};
  EXPECT_FALSE(block.valid());
}

TEST(BlockTest, ResetReusesBuilder) {
  BlockBuilder builder(4);
  builder.Add(MakeInternalKey("a", 1, ValueType::kPut), "1");
  (void)builder.Finish();
  builder.Reset();
  builder.Add(MakeInternalKey("b", 1, ValueType::kPut), "2");
  auto contents = std::make_shared<std::string>(
      builder.Finish().ToString());
  Block block{Slice(*contents)};
  auto iter = block.NewIterator(contents);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "b");
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

}  // namespace
}  // namespace diffindex
