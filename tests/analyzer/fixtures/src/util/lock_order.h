// Miniature rank ladder for the analyzer fixture corpus. The fixtures
// are analyzed with --root pointing at tests/analyzer/fixtures, so this
// file plays the role src/util/lock_order.h plays in the real tree.
// Never compiled — the analyzer reads it textually.

enum class LockRank : int {
  kNone = 0,
  kLow = 10,
  kHigh = 20,
  kLeaf = 90,
};
