// The waived unsynced-rename case: a self-verifying sidecar file. The
// format carries a full-content checksum footer and replay rebuilds a
// torn copy from primary state, so the fsync is deliberately elided.

class SidecarPublisher {
 public:
  Status Publish() {
    Status s = env_->NewWritableFile(tmp_path_, nullptr);
    if (!s.ok()) return s;
    // ANALYZER_WAIVE(rename-after-sync): the sidecar carries a
    // full-content checksum footer; replay detects a torn publish and
    // rebuilds it from primary state, so the fsync is elided here.
    return env_->RenameFile(tmp_path_, final_path_);
  }

 private:
  FixtureEnv* env_;
  const char* tmp_path_;
  const char* final_path_;
};
