// Seeded ack-after-durable mutant: a fixture copy of the RegionServer
// put path with the success return reordered ahead of the WAL fsync.
// The append lands, the handler acks, nothing forced the bytes down —
// a crash after the ack loses an acknowledged write.

class BadAckWal {
 public:
  Status AddRecord(unsigned long rec) { return Status::OK(); }
};

class BadAckRegionServer {
 public:
  Status HandlePut(unsigned long rec) {
    Status s = wal_->AddRecord(rec);
    if (!s.ok()) return s;
    return Status::OK();  // mutant: ack issued before any wal Sync()
  }

 private:
  BadAckWal* wal_;
};
