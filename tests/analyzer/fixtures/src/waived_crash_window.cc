// The waived unmarked-window case: the dead-letter record here is a
// pure cache of state already durable in the WAL, so there is no
// acked-but-not-durable window for the chaos harness to cut.

class RedundantEscapeHatch {
 public:
  void Escape(unsigned long task) {
    // ANALYZER_WAIVE(crash-window-failpoint): this record duplicates
    // state already durable in the WAL; a crash here loses nothing
    // recovery cannot rebuild, so there is no window to cut.
    dead_letters_.push_back(task);
  }

 private:
  std::vector<unsigned long> dead_letters_;
};
