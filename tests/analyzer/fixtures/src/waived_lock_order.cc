// Same inversion as bad_lock_order.cc, suppressed by an in-source
// waiver with a written rationale — the fixture proves the waiver
// grammar works for this rule.

class WaivedInverted {
 public:
  void Backwards() {
    MutexLock high(high_mu_);
    // ANALYZER_WAIVE(lock-order-global): fixture-only inversion kept to
    // prove the waiver grammar; no real code path takes this edge.
    MutexLock low(low_mu_);
  }

 private:
  Mutex low_mu_{LockRank::kLow};
  Mutex high_mu_{LockRank::kHigh};
};
