// Seeded yield-coverage violation: this file carries CHECK_YIELD seams
// (so it is a model-checked module), but Reset mutates guarded state
// with no seam of its own and no seamed callee — the model checker can
// never schedule around that mutation.

class MiniQueue {
 public:
  void Enqueue() {
    CHECK_YIELD_RES("fixture.enqueue", &mu_);
    MutexLock lock(mu_);
    depth_ = depth_ + 1;
  }

  void Reset() {
    MutexLock lock(mu_);
    depth_ = 0;  // invisible to every explored schedule
  }

 private:
  Mutex mu_;
  unsigned long depth_ GUARDED_BY(mu_) = 0;
};
