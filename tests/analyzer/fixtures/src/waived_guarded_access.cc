// Same write-before-guard shape as bad_guarded_access.cc, waived with
// the only argument that ever justifies it: no second thread exists yet.

class WaivedMiniOracle {
 public:
  void Seed(unsigned long ts) {
    // ANALYZER_WAIVE(guarded-access): seeding runs before Start()
    // returns, while the fixture object is still single-threaded; the
    // guard contract begins with the first reader thread.
    last_ts_ = ts;
  }

 private:
  Mutex mu_;
  unsigned long last_ts_ GUARDED_BY(mu_) = 0;
};
