// A fixture that does everything right: locks taken in ladder order,
// guarded writes under their guard, the guarded mutation carries a
// CHECK_YIELD seam, and the Status is propagated. Must stay clean.

class WellBehaved {
 public:
  Status Append(unsigned long ts) {
    CHECK_YIELD_RES("fixture.append", &low_mu_);
    MutexLock low(low_mu_);
    MutexLock high(high_mu_);
    last_ts_ = ts;
    return Persist();
  }

  Status Persist() { return Status::OK(); }

 private:
  Mutex low_mu_{LockRank::kLow};
  Mutex high_mu_{LockRank::kHigh};
  unsigned long last_ts_ GUARDED_BY(low_mu_) = 0;
};
