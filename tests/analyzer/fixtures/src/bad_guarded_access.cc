// Seeded guarded-access violation in the PR 5 ts-inversion shape: the
// guarded timestamp is published BEFORE the guard is taken, so a racing
// reader can observe it ahead of the state it is supposed to cover.

class MiniOracle {
 public:
  void Publish(unsigned long ts) {
    last_ts_ = ts;  // guarded write runs before the lock below
    MutexLock lock(mu_);
    sequence_ = sequence_ + 1;
  }

 private:
  Mutex mu_;
  unsigned long last_ts_ GUARDED_BY(mu_) = 0;
  unsigned long sequence_ GUARDED_BY(mu_) = 0;
};
