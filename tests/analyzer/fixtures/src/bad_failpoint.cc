// Seeded failpoint-reachability violation: the first consult below is
// armed by name in tests/armed_fixture_test.cc (so it is covered); the
// second is consulted here but armed nowhere — dead chaos coverage.

class MiniApplier {
 public:
  Status Apply() {
    DIFFINDEX_FAILPOINT("fixture.apply.armed");
    DIFFINDEX_FAILPOINT("fixture.apply.never_armed");
    return Status::OK();
  }
};
