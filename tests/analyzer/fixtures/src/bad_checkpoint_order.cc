// Seeded checkpoint-after-data violation: the recovery checkpoint
// frame is written before the manifest commit that makes the flushed
// SSTables durable — replay would trust a checkpoint pointing past
// data that may not exist.

class EagerCheckpointer {
 public:
  Status PublishFlush(unsigned long seq) {
    Status c = WriteRegionCheckpoint(seq);  // frame first: the violation
    if (!c.ok()) return c;
    return WriteManifest(seq);
  }
};
