// Same seamless mutation as bad_yield_coverage.cc, waived: some state
// changes genuinely run only between checked schedules.

class WaivedMiniQueue {
 public:
  void Enqueue() {
    CHECK_YIELD_RES("fixture.enqueue", &mu_);
    MutexLock lock(mu_);
    depth_ = depth_ + 1;
  }

  void Reset() {
    MutexLock lock(mu_);
    // ANALYZER_WAIVE(yield-coverage): fixture reset runs between model
    // checker schedules, never concurrently with an explored one.
    depth_ = 0;
  }

 private:
  Mutex mu_;
  unsigned long depth_ GUARDED_BY(mu_) = 0;
};
