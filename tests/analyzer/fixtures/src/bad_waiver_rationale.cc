// A waiver with no written rationale is itself a finding
// (waiver-rationale) and suppresses nothing — the rationale is the
// price of the exception.

class SilentWaiver {
 public:
  void WarmCache() {
    // ANALYZER_WAIVE(status-flow)
    Persist();
  }

  Status Persist() { return Status::OK(); }
};
