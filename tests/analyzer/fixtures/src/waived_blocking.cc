// Same shape as bad_blocking.cc, waived at the CALL SITE rather than
// the blocking line: an interprocedural finding may be suppressed at
// any call site on its chain, so the by-design edge is waived once,
// where the design decision lives.

class WaivedMiniServer {
 public:
  void OnServerDead() {
    MutexLock lock(regions_mu_);
    // ANALYZER_WAIVE(blocking-under-lock): fixture models a recovery
    // path that owns every region it touches; nothing else can wait on
    // this registry entry during failover.
    FlushRegion();
  }

  void FlushRegion() { file_->Sync(); }

 private:
  Mutex regions_mu_{LockRank::kHigh};
  WritableFile* file_ = nullptr;
};
