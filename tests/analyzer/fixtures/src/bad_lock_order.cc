// Seeded lock-order-global violation: takes the high-rank lock first,
// then the low-rank one — the exact inversion the ladder forbids.

class Inverted {
 public:
  void Backwards() {
    MutexLock high(high_mu_);
    MutexLock low(low_mu_);  // rank 10 acquired under rank 20
  }

 private:
  Mutex low_mu_{LockRank::kLow};
  Mutex high_mu_{LockRank::kHigh};
};
