// Seeded crash-window-failpoint violation: the first escape path
// records a dead letter with no named failpoint in the same scope, so
// the chaos harness cannot crash inside the acked-but-not-durable
// window. The second path carries its seam (armed by name in
// tests/armed_fixture_test.cc) and must stay clean.

class EscapeHatch {
 public:
  void EscapeUnmarked(unsigned long task) {
    dead_letters_.push_back(task);  // no failpoint: the seeded violation
  }

  void EscapeMarked(unsigned long task) {
    if (FailpointRegistry::Global()->Fires("fixture.crash_window.cut")) {
      return;
    }
    dead_letters_.push_back(task);
  }

 private:
  std::vector<unsigned long> dead_letters_;
};
