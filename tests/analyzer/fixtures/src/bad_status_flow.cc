// Seeded status-flow violation, the interprocedural half: a void
// wrapper calls a Status-returning member as a bare statement — no
// propagation, no .IgnoreError(), the error simply evaporates.

class MiniCommitter {
 public:
  void CommitQuietly() {
    Persist();  // Status dropped on the floor
  }

  Status Persist() { return Status::OK(); }
};
