// The waived checkpoint-before-manifest case: region bootstrap. The
// first frame is empty and replay re-validates every checkpoint frame
// against the manifest before trusting it, so the inverted order is
// harmless on this one path.

class BootstrapCheckpointer {
 public:
  Status PublishBootstrap(unsigned long seq) {
    // ANALYZER_WAIVE(checkpoint-after-data): bootstrap path — the
    // first checkpoint frame is empty and replay re-validates every
    // frame against the manifest before trusting it.
    Status c = WriteRegionCheckpoint(seq);
    if (!c.ok()) return c;
    return WriteManifest(seq);
  }
};
