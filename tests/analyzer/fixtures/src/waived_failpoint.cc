// An unreachable failpoint kept on purpose, with the waiver explaining
// why the dead coverage is acceptable.

class RetiredApplier {
 public:
  Status Apply() {
    // ANALYZER_WAIVE(failpoint-reachability): retired injection point
    // kept for wire compatibility with recorded fixture chaos traces.
    DIFFINDEX_FAILPOINT("fixture.apply.retired");
    return Status::OK();
  }
};
