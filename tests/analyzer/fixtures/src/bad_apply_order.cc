// Seeded log-before-apply violation: the memtable apply runs before
// the WAL append that covers it. A crash between the two loses an edit
// the log never saw. The apply classifies through receiver typing —
// `mem_` is a MemTable member, so `mem_->Add` resolves to an apply
// site; a counter's Add would not.

class MemTable {
 public:
  void Add(unsigned long key) {}
};

class ApplyWal {
 public:
  Status AddRecord(unsigned long rec) { return Status::OK(); }
};

class ApplyFirstWriter {
 public:
  Status Put(unsigned long key) {
    mem_->Add(key);  // apply first: the seeded violation
    return wal_->AddRecord(key);
  }

 private:
  MemTable* mem_;
  ApplyWal* wal_;
};
