// Seeded blocking-under-lock violation in the PR 7 failover shape:
// recovery holds the region registry lock and calls into a flush that
// does a durable sync. The finding must carry the interprocedural
// chain (OnServerDead -> FlushRegion) — the sync itself is innocent,
// the lock context it inherits is not.

class MiniServer {
 public:
  void OnServerDead() {
    MutexLock lock(regions_mu_);
    FlushRegion();  // fsync now reachable under the registry lock
  }

  void FlushRegion() { file_->Sync(); }

 private:
  Mutex regions_mu_{LockRank::kHigh};
  WritableFile* file_ = nullptr;
};
