// The waived ack-before-durable case: a group-commit follower. The
// leader batches fsyncs for the whole group; the follower's handler
// returns after its append and the fabric releases the ack only once
// the leader's batched Sync covering that append has completed.

class GroupCommitWal {
 public:
  Status AddRecord(unsigned long rec) { return Status::OK(); }
};

class WaivedAckRegionServer {
 public:
  Status HandlePut(unsigned long rec) {
    Status s = wal_->AddRecord(rec);
    if (!s.ok()) return s;
    // ANALYZER_WAIVE(ack-after-durable): group-commit leader protocol —
    // the fabric releases this ack only after the leader's batched
    // fsync covering the append completes.
    return Status::OK();
  }

 private:
  GroupCommitWal* wal_;
};
