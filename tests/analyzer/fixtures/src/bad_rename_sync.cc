// Seeded rename-after-sync violation: a durable file is built in a tmp
// path and published by rename with no fsync in between — a crash
// right after the rename can publish a torn file.

class TornPublisher {
 public:
  Status Publish() {
    Status s = env_->NewWritableFile(tmp_path_, nullptr);
    if (!s.ok()) return s;
    return env_->RenameFile(tmp_path_, final_path_);  // no Sync first
  }

 private:
  FixtureEnv* env_;
  const char* tmp_path_;
  const char* final_path_;
};
