// Same dropped-Status shape as bad_status_flow.cc, waived where a
// fire-and-forget call is genuinely the design.

class WaivedMiniCommitter {
 public:
  void WarmCache() {
    // ANALYZER_WAIVE(status-flow): fixture warmup is fire-and-forget;
    // a failure only costs one cold read, never correctness.
    Persist();
  }

  Status Persist() { return Status::OK(); }
};
