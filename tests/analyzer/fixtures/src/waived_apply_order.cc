// The waived apply-before-log case: WAL replay. The edit being applied
// was decoded from the log, so it is already durable; the append later
// on the same linearized path belongs to the next incoming write, not
// to this edit.

class LsmTree {
 public:
  Status Put(unsigned long key) { return Status::OK(); }
};

class ReplayWal {
 public:
  Status AddRecord(unsigned long rec) { return Status::OK(); }
};

class ReplayApplier {
 public:
  Status ReplayThenAccept(unsigned long key) {
    // ANALYZER_WAIVE(log-before-apply): WAL replay — the edit being
    // applied was decoded from the log, so it is already durable.
    Status s = tree_->Put(key);
    if (!s.ok()) return s;
    return wal_->AddRecord(key);
  }

 private:
  LsmTree* tree_;
  ReplayWal* wal_;
};
