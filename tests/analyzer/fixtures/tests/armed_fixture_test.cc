// The fixture corpus's "test tree": arming a failpoint by literal name
// here is what makes it reachable for failpoint-reachability. Only
// "fixture.apply.armed" is covered — bad_failpoint.cc's second consult
// must still fire.

void ArmFixtureFailpoints() {
  FailpointRegistry::Global()->Arm("fixture.apply.armed",
                                   FailpointPolicy::ErrorOnce());
  FailpointRegistry::Global()->Arm("fixture.crash_window.cut",
                                   FailpointPolicy::ErrorOnce());
}
