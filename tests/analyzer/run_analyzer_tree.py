#!/usr/bin/env python3
"""Gates the real tree on the whole-program analyzer.

Two checks, registered together as the `analyzer_tree` ctest:

  1. `python3 tools/analyzer` over src/ + tests/ must exit 0 — every
     finding is either fixed or carries an ANALYZER_WAIVE with a written
     rationale. The full report is echoed on failure.
  2. The deterministic lock-graph dump must match the golden snapshot
     (tests/analyzer/golden/lock_graph.txt). Any refactor that changes
     the rank ladder, a declared ACQUIRED_BEFORE edge, or an observed
     held->acquired nesting changes this text; review the diff, then
     regenerate with `python3 tools/analyzer --dump-lock-graph`.
"""

import argparse
import difflib
import os
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True, help="repo root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    analyzer = os.path.join(root, "tools", "analyzer")

    proc = subprocess.run(
        [sys.executable, analyzer, "--root", root],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print("FAIL: analyzer reported unwaived findings (exit %d):"
              % proc.returncode)
        print(proc.stdout, end="")
        print(proc.stderr, end="")
        return 1
    summary = [l for l in proc.stdout.splitlines()
               if l.startswith("diffindex_analyzer:")]
    print(summary[0] if summary else proc.stdout.strip())

    golden_path = os.path.join(root, "tests", "analyzer", "golden",
                               "lock_graph.txt")
    with open(golden_path, encoding="utf-8") as f:
        golden = f.read()
    proc = subprocess.run(
        [sys.executable, analyzer, "--root", root, "--dump-lock-graph"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print("FAIL: --dump-lock-graph exited %d:\n%s%s"
              % (proc.returncode, proc.stdout, proc.stderr))
        return 1
    if proc.stdout != golden:
        print("FAIL: lock graph drifted from the golden snapshot.")
        print("If the change is intentional, review the diff below and")
        print("regenerate: python3 tools/analyzer --dump-lock-graph >"
              " tests/analyzer/golden/lock_graph.txt")
        sys.stdout.writelines(difflib.unified_diff(
            golden.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="golden/lock_graph.txt",
            tofile="--dump-lock-graph",
        ))
        return 1
    print("ok: lock graph matches golden snapshot")
    return 0


if __name__ == "__main__":
    sys.exit(main())
