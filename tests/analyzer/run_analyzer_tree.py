#!/usr/bin/env python3
"""Gates the real tree on the whole-program analyzer.

Five checks, registered together as the `analyzer_tree` ctest:

  1. `python3 tools/analyzer` over src/ + tests/ must exit 0 — every
     finding is either fixed or carries an ANALYZER_WAIVE with a written
     rationale. The full report is echoed on failure.
  2. The unresolved under-lock call-site count must stay at or below
     MAX_UNRESOLVED — the receiver-chain typing (accessor chains, member
     paths, auto locals, value decls) keeps it an order of magnitude
     below the pre-typing count (~73); regressions here silently shrink
     every interprocedural rule's coverage.
  3. The deterministic lock-graph dump must match the golden snapshot
     (tests/analyzer/golden/lock_graph.txt). Any refactor that changes
     the rank ladder, a declared ACQUIRED_BEFORE edge, or an observed
     held->acquired nesting changes this text; review the diff, then
     regenerate with `python3 tools/analyzer --dump-lock-graph`.
  4. The durable-effect dump must match its golden
     (tests/analyzer/golden/effect_graph.txt) the same way; regenerate
     with `python3 tools/analyzer --dump-effect-graph`.
  5. A cold `--cache-dir` run and a warm one must produce byte-identical
     reports, and both identical to the uncached report — the cache may
     only change speed, never output. Wall times are printed for the
     record.
"""

import argparse
import difflib
import os
import re
import subprocess
import sys
import tempfile
import time

# Check 2's ceiling. 10 sites remain unresolved today (overloaded names
# behind receivers no textual typing can recover); small headroom so an
# honest new overload doesn't flake the gate.
MAX_UNRESOLVED = 15

UNRESOLVED_RE = re.compile(
    r"note: (\d+) under-lock call site\(s\) left unresolved")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True, help="repo root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    analyzer = os.path.join(root, "tools", "analyzer")

    proc = subprocess.run(
        [sys.executable, analyzer, "--root", root],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print("FAIL: analyzer reported unwaived findings (exit %d):"
              % proc.returncode)
        print(proc.stdout, end="")
        print(proc.stderr, end="")
        return 1
    summary = [l for l in proc.stdout.splitlines()
               if l.startswith("diffindex_analyzer:")]
    print(summary[0] if summary else proc.stdout.strip())
    clean_report = proc.stdout

    m = UNRESOLVED_RE.search(clean_report)
    unresolved = int(m.group(1)) if m else 0
    if unresolved > MAX_UNRESOLVED:
        print("FAIL: %d under-lock call sites unresolved (ceiling %d); "
              "receiver-chain typing regressed — every interprocedural "
              "rule loses coverage at these sites" %
              (unresolved, MAX_UNRESOLVED))
        return 1
    print("ok: %d unresolved under-lock call site(s) (ceiling %d)"
          % (unresolved, MAX_UNRESOLVED))

    for flag, name in (("--dump-lock-graph", "lock_graph.txt"),
                       ("--dump-effect-graph", "effect_graph.txt")):
        golden_path = os.path.join(root, "tests", "analyzer", "golden",
                                   name)
        with open(golden_path, encoding="utf-8") as f:
            golden = f.read()
        proc = subprocess.run(
            [sys.executable, analyzer, "--root", root, flag],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print("FAIL: %s exited %d:\n%s%s"
                  % (flag, proc.returncode, proc.stdout, proc.stderr))
            return 1
        if proc.stdout != golden:
            print("FAIL: %s drifted from the golden snapshot." % flag)
            print("If the change is intentional, review the diff below and")
            print("regenerate: python3 tools/analyzer %s >"
                  " tests/analyzer/golden/%s" % (flag, name))
            sys.stdout.writelines(difflib.unified_diff(
                golden.splitlines(keepends=True),
                proc.stdout.splitlines(keepends=True),
                fromfile="golden/" + name,
                tofile=flag,
            ))
            return 1
        print("ok: %s matches golden snapshot" % name)

    with tempfile.TemporaryDirectory(prefix="analyzer_cache_") as cache:
        runs = {}
        for label in ("cold", "warm"):
            t0 = time.monotonic()
            proc = subprocess.run(
                [sys.executable, analyzer, "--root", root,
                 "--cache-dir", cache],
                capture_output=True,
                text=True,
            )
            runs[label] = (proc, time.monotonic() - t0)
            if proc.returncode != 0:
                print("FAIL: %s --cache-dir run exited %d:\n%s%s"
                      % (label, proc.returncode, proc.stdout, proc.stderr))
                return 1
        for label in ("cold", "warm"):
            if runs[label][0].stdout != clean_report:
                print("FAIL: %s cached report differs from the uncached "
                      "one — the cache changed analyzer output:" % label)
                sys.stdout.writelines(difflib.unified_diff(
                    clean_report.splitlines(keepends=True),
                    runs[label][0].stdout.splitlines(keepends=True),
                    fromfile="uncached", tofile=label + "-cache",
                ))
                return 1
        stats = [l for l in runs["warm"][0].stderr.splitlines()
                 if "cache" in l]
        print("ok: cached reports byte-identical "
              "(cold %.2fs, warm %.2fs; %s)"
              % (runs["cold"][1], runs["warm"][1],
                 stats[0].strip() if stats else "no stats line"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
