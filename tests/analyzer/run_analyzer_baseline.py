#!/usr/bin/env python3
"""SARIF baseline diff gate, registered as the `analyzer_baseline` ctest.

The committed baseline (tests/analyzer/golden/baseline.sarif) is the
reviewed set of analyzer results for the tree — today that is all
waived findings (warnings; the tree gate already proves zero unwaived).
This gate diffs a fresh run against it by line-insensitive fingerprint
(ruleId, file, level, message), so moving code around does not flake it
but adding or removing a finding does:

  * a NEW unwaived finding fails — fix it or waive it with a rationale;
  * a NEW waived finding fails with a refresh hint — the waiver was
    reviewed in code, so record it in the baseline in the same change;
  * a RESOLVED finding fails with a refresh hint — keep the baseline
    honest instead of letting it claim findings that no longer exist.

Refresh after review:
  python3 tools/analyzer --json tests/analyzer/golden/baseline.sarif
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REFRESH = ("python3 tools/analyzer --json "
           "tests/analyzer/golden/baseline.sarif")


def fingerprints(sarif_path):
    with open(sarif_path, encoding="utf-8") as f:
        doc = json.load(f)
    out = set()
    for run in doc.get("runs", ()):
        for res in run.get("results", ()):
            loc = res["locations"][0]["physicalLocation"]
            out.add((res["ruleId"],
                     loc["artifactLocation"]["uri"],
                     res["level"],
                     res["message"]["text"]))
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True, help="repo root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    analyzer = os.path.join(root, "tools", "analyzer")
    baseline_path = os.path.join(root, "tests", "analyzer", "golden",
                                 "baseline.sarif")

    with tempfile.TemporaryDirectory(prefix="analyzer_sarif_") as tmp:
        current_path = os.path.join(tmp, "current.sarif")
        proc = subprocess.run(
            [sys.executable, analyzer, "--root", root,
             "--json", current_path],
            capture_output=True,
            text=True,
        )
        # exit 1 (unwaived findings present) still writes the SARIF; the
        # diff below names exactly what is new.
        if proc.returncode not in (0, 1):
            print("FAIL: analyzer exited %d:\n%s%s"
                  % (proc.returncode, proc.stdout, proc.stderr))
            return 1
        current = fingerprints(current_path)
    baseline = fingerprints(baseline_path)

    failures = []
    new = current - baseline
    for fp in sorted(new):
        rule, uri, level, message = fp
        if level == "error":
            failures.append(
                "new unwaived finding: %s [%s] %s" % (uri, rule, message))
        else:
            failures.append(
                "new waived finding not in the baseline: %s [%s] %s\n"
                "  if the waiver is reviewed, refresh: %s"
                % (uri, rule, message, REFRESH))
    for fp in sorted(baseline - current):
        rule, uri, level, message = fp
        failures.append(
            "baseline finding no longer reported (resolved): %s [%s] %s\n"
            "  refresh the baseline so it stays honest: %s"
            % (uri, rule, message, REFRESH))

    if failures:
        for f in failures:
            print("FAIL:", f)
        return 1
    print("ok: %d finding(s) match the SARIF baseline" % len(current))
    return 0


if __name__ == "__main__":
    sys.exit(main())
