#!/usr/bin/env python3
"""Proves every tools/analyzer rule still fires — and every waiver
still suppresses.

The fixture corpus under tests/analyzer/fixtures/ is a miniature repo
(its own src/, tests/, and rank ladder). For each rule it holds one
seeded violation (bad_*.cc) and one waived twin (waived_*.cc); the
analyzer is run ONCE over the whole corpus with --root pointed at it,
so the whole-program rules (yield-coverage, failpoint-reachability) see
the same src/-vs-tests/ split they see in the real tree. Registered as
the `analyzer_fixtures` ctest.
"""

import argparse
import os
import re
import subprocess
import sys

# fixture file (relative to the corpus root) -> the rules it must trip.
# Waived twins and clean.cc must trip nothing; their suppressed findings
# are counted through the report's "waived" tally instead.
EXPECTATIONS = {
    os.path.join("src", "bad_lock_order.cc"): {"lock-order-global"},
    os.path.join("src", "bad_blocking.cc"): {"blocking-under-lock"},
    os.path.join("src", "bad_guarded_access.cc"): {"guarded-access"},
    os.path.join("src", "bad_yield_coverage.cc"): {"yield-coverage"},
    os.path.join("src", "bad_status_flow.cc"): {"status-flow"},
    os.path.join("src", "bad_failpoint.cc"): {"failpoint-reachability"},
    # A rationale-less waiver is itself reported AND suppresses nothing,
    # so the underlying status-flow finding must surface alongside it.
    os.path.join("src", "bad_waiver_rationale.cc"):
        {"waiver-rationale", "status-flow"},
    os.path.join("src", "bad_ack_order.cc"): {"ack-after-durable"},
    os.path.join("src", "bad_apply_order.cc"): {"log-before-apply"},
    os.path.join("src", "bad_rename_sync.cc"): {"rename-after-sync"},
    os.path.join("src", "bad_checkpoint_order.cc"): {"checkpoint-after-data"},
    os.path.join("src", "bad_crash_window.cc"): {"crash-window-failpoint"},
    os.path.join("src", "waived_lock_order.cc"): set(),
    os.path.join("src", "waived_blocking.cc"): set(),
    os.path.join("src", "waived_guarded_access.cc"): set(),
    os.path.join("src", "waived_yield_coverage.cc"): set(),
    os.path.join("src", "waived_status_flow.cc"): set(),
    os.path.join("src", "waived_failpoint.cc"): set(),
    os.path.join("src", "waived_ack_order.cc"): set(),
    os.path.join("src", "waived_apply_order.cc"): set(),
    os.path.join("src", "waived_rename_sync.cc"): set(),
    os.path.join("src", "waived_checkpoint_order.cc"): set(),
    os.path.join("src", "waived_crash_window.cc"): set(),
    os.path.join("src", "clean.cc"): set(),
    os.path.join("src", "util", "lock_order.h"): set(),
    os.path.join("tests", "armed_fixture_test.cc"): set(),
}

# One suppressed finding per waived_*.cc fixture.
EXPECTED_WAIVED = 11

FINDING_RE = re.compile(r"^(\S+?):(\d+): \[([a-z-]+)\]")
SUMMARY_RE = re.compile(
    r"^diffindex_analyzer: (\d+) finding\(s\), (\d+) waived")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True, help="repo root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    corpus = os.path.join(root, "tests", "analyzer", "fixtures")
    analyzer = os.path.join(root, "tools", "analyzer")

    paths = []
    for dirpath, _, filenames in os.walk(corpus):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                paths.append(os.path.join(dirpath, name))

    proc = subprocess.run(
        [sys.executable, analyzer, "--root", corpus] + paths,
        capture_output=True,
        text=True,
    )

    failures = []
    if proc.returncode != 1:
        failures.append(
            "expected exit 1 (seeded violations present), got %d:\n%s%s"
            % (proc.returncode, proc.stdout, proc.stderr))

    by_file = {}  # corpus-relative path -> set of rules reported
    waived = None
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            rel = os.path.normpath(m.group(1))
            by_file.setdefault(rel, set()).add(m.group(3))
        m = SUMMARY_RE.match(line)
        if m:
            waived = int(m.group(2))

    for rel, expected in sorted(EXPECTATIONS.items()):
        if not os.path.exists(os.path.join(corpus, rel)):
            failures.append("%s: fixture missing" % rel)
            continue
        got = by_file.pop(rel, set())
        if got != expected:
            failures.append(
                "%s: expected rules %s, got %s\n%s"
                % (rel, sorted(expected) or "none", sorted(got) or "none",
                   proc.stdout))
    for rel, got in sorted(by_file.items()):
        failures.append("%s: unexpected findings %s (no expectation entry)"
                        % (rel, sorted(got)))

    if waived is None:
        failures.append("no summary line in analyzer output:\n%s"
                        % proc.stdout)
    elif waived != EXPECTED_WAIVED:
        failures.append(
            "expected %d waived finding(s) (one per waived_*.cc), got %d:"
            "\n%s" % (EXPECTED_WAIVED, waived, proc.stdout))

    # A fixture on disk without an expectation entry would rot silently.
    for p in paths:
        rel = os.path.relpath(p, corpus)
        if rel not in EXPECTATIONS:
            failures.append("%s: fixture has no expectation entry" % rel)

    if failures:
        for f in failures:
            print("FAIL:", f)
        return 1
    print("ok: %d fixtures checked, %d waived findings suppressed"
          % (len(EXPECTATIONS), waived))
    return 0


if __name__ == "__main__":
    sys.exit(main())
