// Sustained-load substrate tests: statistical sanity of the key choosers
// (chi-square for the flat ones, skew/mass checks for the skewed ones),
// pacing accuracy of the closed-loop runner, and the windowed SLO
// accounting — including the regression that motivated it: a mid-run
// stall must be visible in the window series even when the whole-run
// histogram averages it away.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "obs/slo.h"
#include "util/histogram.h"
#include "workload/generators.h"
#include "workload/item_table.h"
#include "workload/runner.h"

namespace diffindex {
namespace {

// Pearson chi-square statistic for `draws` samples binned uniformly into
// `bins` bins over [0, num_items).
double ChiSquare(KeyChooser* chooser, uint64_t num_items, int bins,
                 int draws) {
  std::vector<int> observed(bins, 0);
  for (int i = 0; i < draws; i++) {
    const uint64_t key = chooser->Next();
    EXPECT_LT(key, num_items);
    observed[key * bins / num_items]++;
  }
  const double expected = static_cast<double>(draws) / bins;
  double stat = 0;
  for (int count : observed) {
    const double d = count - expected;
    stat += d * d / expected;
  }
  return stat;
}

TEST(SustainedChooserTest, UniformPassesChiSquare) {
  auto chooser = KeyChooser::Create(KeyDistribution::kUniform, 10000, 17);
  // 20 bins -> 19 dof; chi-square critical value at alpha=0.001 is 43.8.
  EXPECT_LT(ChiSquare(chooser.get(), 10000, 20, 20000), 43.8);
}

TEST(SustainedChooserTest, ZipfianFailsChiSquareAndIsHeadHeavy) {
  auto chooser = KeyChooser::Create(KeyDistribution::kZipfian, 10000, 17);
  // The same test a uniform stream passes must reject zipfian decisively.
  EXPECT_GT(ChiSquare(chooser.get(), 10000, 20, 20000), 1000.0);
  // And the skew is head-heavy the YCSB way: the single most popular key
  // owns a few percent of all draws.
  std::map<uint64_t, int> counts;
  auto skewed = KeyChooser::Create(KeyDistribution::kZipfian, 10000, 18);
  for (int i = 0; i < 20000; i++) counts[skewed->Next()]++;
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 100);
}

TEST(SustainedChooserTest, HotspotSplitsMassPerKnobs) {
  KeyChooserParams params;
  params.hotspot_set_fraction = 0.1;   // keys [0, 1000) are hot
  params.hotspot_op_fraction = 0.9;    // and take 90% of operations
  auto chooser =
      KeyChooser::Create(KeyDistribution::kHotspot, 10000, 23, params);
  const int draws = 30000;
  int hot = 0;
  std::vector<int> hot_bins(10, 0);
  for (int i = 0; i < draws; i++) {
    const uint64_t key = chooser->Next();
    ASSERT_LT(key, 10000u);
    if (key < 1000) {
      hot++;
      hot_bins[key / 100]++;
    }
  }
  const double hot_share = static_cast<double>(hot) / draws;
  EXPECT_GT(hot_share, 0.87);
  EXPECT_LT(hot_share, 0.93);
  // Within the hot set draws are uniform: chi-square over 10 bins
  // (9 dof, critical value 27.9 at alpha=0.001).
  const double expected = static_cast<double>(hot) / 10;
  double stat = 0;
  for (int count : hot_bins) {
    const double d = count - expected;
    stat += d * d / expected;
  }
  EXPECT_LT(stat, 27.9);
}

TEST(SustainedChooserTest, LatestConcentratesBehindRecencyCursor) {
  std::atomic<uint64_t> recency{0};
  KeyChooserParams params;
  params.recency = &recency;
  auto chooser =
      KeyChooser::Create(KeyDistribution::kLatest, 10000, 31, params);

  auto mass_within = [&](uint64_t edge, uint64_t radius) {
    int near = 0;
    for (int i = 0; i < 5000; i++) {
      const uint64_t key = chooser->Next();
      EXPECT_LT(key, 10000u);
      // distance backwards from the cursor, with wraparound
      const uint64_t back = (edge + 10000 - key) % 10000;
      if (back < radius) near++;
    }
    return static_cast<double>(near) / 5000;
  };

  // With the cursor parked at 4000, most draws land just behind it...
  recency.store(4000);
  EXPECT_GT(mass_within(4000, 100), 0.5);
  // ...and the hot region follows the cursor when it advances.
  recency.store(9990);  // wraps: hot region straddles the 0 boundary
  EXPECT_GT(mass_within(9990, 100), 0.5);
  EXPECT_LT(mass_within(4000, 100), 0.2);
}

TEST(SustainedSloTest, WindowAccountingMatchesHandComputedHistograms) {
  obs::SloOptions options;
  options.window_micros = 1000;
  obs::SloTracker tracker(options);

  // Window 0: latencies 10..190 step 20 (10 samples), one error.
  Histogram w0;
  for (uint64_t l = 10; l < 200; l += 20) {
    tracker.RecordAt(l, l, /*ok=*/l != 10);
    w0.Add(l);
  }
  // Window 2 (window 1 stays empty): constant 5000us, 4 samples.
  Histogram w2;
  for (int i = 0; i < 4; i++) {
    tracker.RecordAt(2100 + i, 5000, true);
    w2.Add(5000);
  }

  auto windows = tracker.Finish(3000);
  ASSERT_EQ(windows.size(), 3u);

  EXPECT_EQ(windows[0].start_micros, 0u);
  EXPECT_EQ(windows[0].end_micros, 1000u);
  EXPECT_EQ(windows[0].operations, 10u);
  EXPECT_EQ(windows[0].errors, 1u);
  EXPECT_EQ(windows[0].p50_micros,
            static_cast<uint64_t>(w0.Percentile(50.0)));
  EXPECT_EQ(windows[0].p99_micros,
            static_cast<uint64_t>(w0.Percentile(99.0)));
  EXPECT_EQ(windows[0].p999_micros,
            static_cast<uint64_t>(w0.Percentile(99.9)));
  EXPECT_EQ(windows[0].max_micros, 190u);

  // The gap window is emitted, empty — that is the stall signal.
  EXPECT_EQ(windows[1].operations, 0u);
  EXPECT_EQ(windows[1].p99_micros, 0u);

  EXPECT_EQ(windows[2].operations, 4u);
  EXPECT_EQ(windows[2].p99_micros,
            static_cast<uint64_t>(w2.Percentile(99.0)));
  EXPECT_EQ(windows[2].max_micros, 5000u);
}

TEST(SustainedSloTest, ViolationsCountWindowsPastTarget) {
  obs::MetricsRegistry metrics;
  obs::SloOptions options;
  options.window_micros = 1000;
  options.p99_target_micros = 100;
  options.metrics = &metrics;
  obs::SloTracker tracker(options);

  for (int i = 0; i < 20; i++) tracker.RecordAt(i, 50, true);      // ok
  for (int i = 0; i < 20; i++) tracker.RecordAt(1000 + i, 900, true);  // bad
  auto windows = tracker.Finish(2000);
  ASSERT_EQ(windows.size(), 2u);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("slo.windows"), 2u);
  EXPECT_EQ(snapshot.counters.at("slo.violations"), 1u);
}

// Regression for the unwindowed-percentile bug: a synthetic 1-window
// stall (every op in it takes 100x normal) is invisible in the whole-run
// histogram's p99 but pinned by the window series.
TEST(SustainedSloTest, WindowSeriesExposesStallWholeRunHistogramMasks) {
  obs::SloOptions options;
  options.window_micros = 1000;
  obs::SloTracker tracker(options);
  Histogram whole_run;

  // 9 healthy windows of 100 ops at ~50us, 1 stalled window where the few
  // ops that complete take 5000us.
  uint64_t stall_start = 5000;
  for (uint64_t w = 0; w < 10; w++) {
    const bool stalled = w * 1000 == stall_start;
    const int ops = stalled ? 3 : 100;
    const uint64_t latency = stalled ? 5000 : 50;
    for (int i = 0; i < ops; i++) {
      tracker.RecordAt(w * 1000 + i, latency, true);
      whole_run.Add(latency);
    }
  }

  // Whole-run p99: 903 samples, 3 slow -> the 99th percentile still sits
  // in the healthy bucket. This is the masking the old runner result had.
  EXPECT_LT(whole_run.Percentile(99.0), 100.0);

  auto windows = tracker.Finish(10000);
  ASSERT_EQ(windows.size(), 10u);
  // The window series pins the stall: window 5 reports the 5000us p99 and
  // the 30x drop in completed operations.
  EXPECT_GE(windows[5].p99_micros, 4000u);
  EXPECT_EQ(windows[5].operations, 3u);
  for (size_t w = 0; w < windows.size(); w++) {
    if (w == 5) continue;
    EXPECT_LT(windows[w].p99_micros, 100u) << "window " << w;
    EXPECT_EQ(windows[w].operations, 100u) << "window " << w;
  }
}

class SustainedRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(SustainedRunnerTest, PacingHoldsTargetWithinTolerance) {
  ItemTableOptions item_options;
  item_options.num_items = 200;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions options;
  options.op = WorkloadOp::kUpdateTitle;
  options.threads = 4;
  options.total_operations = 0;
  options.max_duration_ms = 1000;
  options.target_tps = 500;
  options.slo_window_micros = 250000;
  WorkloadRunner runner(cluster_.get(), &items, options);
  ASSERT_TRUE(runner.LoadItems(4).ok());
  RunnerResult result;
  ASSERT_TRUE(runner.Run(&result).ok());
  // +-30%: generous for CI noise, tight enough to catch a broken pacer
  // (unpaced this cluster does tens of thousands of TPS).
  EXPECT_GT(result.tps, 350.0);
  EXPECT_LT(result.tps, 650.0);
  // And the pacing is steady per window, not front-loaded.
  ASSERT_GE(result.windows.size(), 3u);
  for (size_t w = 0; w + 1 < result.windows.size(); w++) {
    EXPECT_GT(result.windows[w].operations, 60u) << "window " << w;
    EXPECT_LT(result.windows[w].operations, 250u) << "window " << w;
  }
}

TEST_F(SustainedRunnerTest, MixedRunDrivesAllOpsAndFillsWindows) {
  ItemTableOptions item_options;
  item_options.num_items = 300;
  item_options.title_scheme = IndexScheme::kSyncFull;
  item_options.price_scheme = IndexScheme::kAsyncSimple;
  item_options.create_price_index = true;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions options;
  options.mix = {
      {WorkloadOp::kUpdateTitle, 0.5},
      {WorkloadOp::kReadIndexExact, 0.3},
      {WorkloadOp::kScanIndexRange, 0.2},
  };
  options.threads = 4;
  options.total_operations = 600;
  options.distribution = KeyDistribution::kLatest;
  options.slo_window_micros = 100000;
  WorkloadRunner runner(cluster_.get(), &items, options);
  ASSERT_TRUE(runner.LoadItems(4).ok());
  RunnerResult result;
  ASSERT_TRUE(runner.Run(&result).ok());
  EXPECT_GE(result.operations, 600u);
  EXPECT_EQ(result.errors, 0u);

  // Each op in the mix ran and was instrumented under its own histogram.
  auto snapshot = cluster_->metrics()->Snapshot();
  for (const char* name :
       {"workload.update_title_micros", "workload.read_index_exact_micros",
        "workload.scan_index_range_micros"}) {
    auto it = snapshot.histograms.find(name);
    ASSERT_NE(it, snapshot.histograms.end()) << name;
    EXPECT_GT(it->second.count, 0u) << name;
  }
  // Windows cover the run and sum to the op total.
  ASSERT_FALSE(result.windows.empty());
  uint64_t windowed_ops = 0;
  for (const auto& w : result.windows) windowed_ops += w.operations;
  EXPECT_EQ(windowed_ops, result.operations);
}

TEST_F(SustainedRunnerTest, WindowingDisabledKeepsLegacyShape) {
  ItemTableOptions item_options;
  item_options.num_items = 100;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions options;
  options.op = WorkloadOp::kUpdateTitle;
  options.threads = 2;
  options.total_operations = 100;
  options.slo_window_micros = 0;
  WorkloadRunner runner(cluster_.get(), &items, options);
  ASSERT_TRUE(runner.LoadItems(2).ok());
  RunnerResult result;
  ASSERT_TRUE(runner.Run(&result).ok());
  EXPECT_TRUE(result.windows.empty());
  EXPECT_EQ(result.latency->Count(), result.operations);
}

}  // namespace
}  // namespace diffindex
