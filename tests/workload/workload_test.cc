// Tests of the YCSB-style workload substrate: item table determinism,
// key choosers, the closed-loop runner and its pacing.

#include <gtest/gtest.h>

#include <map>

#include "workload/generators.h"
#include "workload/item_table.h"
#include "workload/runner.h"

namespace diffindex {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(WorkloadTest, RowKeysAreDeterministicAndSpread) {
  ItemTableOptions options;
  options.num_items = 1000;
  ItemTable items(cluster_.get(), options);
  EXPECT_EQ(items.RowKey(42), items.RowKey(42));
  EXPECT_NE(items.RowKey(1), items.RowKey(2));
  // Keys spread over the hex keyspace: every first hex digit appears.
  std::map<char, int> first_digit;
  for (uint64_t id = 0; id < 1000; id++) {
    first_digit[items.RowKey(id)[0]]++;
  }
  EXPECT_EQ(first_digit.size(), 16u);
}

TEST_F(WorkloadTest, TitleAndPriceAreVersioned) {
  ItemTableOptions options;
  ItemTable items(cluster_.get(), options);
  EXPECT_NE(items.TitleValue(1, 0), items.TitleValue(1, 1));
  EXPECT_NE(items.TitleValue(1, 0), items.TitleValue(2, 0));
  EXPECT_LT(items.PriceNumeric(1, 0), options.price_domain);
}

TEST_F(WorkloadTest, MakeRowHasTenColumns) {
  ItemTableOptions options;
  ItemTable items(cluster_.get(), options);
  Random rng(1);
  auto cells = items.MakeRow(7, 0, &rng);
  EXPECT_EQ(cells.size(), 10u);  // title + price + 8 filler columns
  EXPECT_EQ(cells[0].column, ItemTable::kTitleColumn);
  EXPECT_EQ(cells[1].column, ItemTable::kPriceColumn);
  EXPECT_EQ(cells[2].value.size(), 100u);
}

TEST_F(WorkloadTest, CreateAndLoadMakesRowsQueryable) {
  ItemTableOptions options;
  options.num_items = 50;
  ItemTable items(cluster_.get(), options);
  ASSERT_TRUE(items.Create().ok());
  auto client = cluster_->NewClient();
  ASSERT_TRUE(items.Load(client.get()).ok());
  GetRowResponse row;
  ASSERT_TRUE(
      client->GetRow("item", items.RowKey(7), kMaxTimestamp, &row).ok());
  EXPECT_TRUE(row.found);
  EXPECT_EQ(row.cells.size(), 10u);
}

TEST_F(WorkloadTest, RunnerExecutesRequestedOperations) {
  ItemTableOptions item_options;
  item_options.num_items = 200;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions options;
  options.op = WorkloadOp::kUpdateTitle;
  options.threads = 4;
  options.total_operations = 300;
  WorkloadRunner runner(cluster_.get(), &items, options);
  ASSERT_TRUE(runner.LoadItems(4).ok());

  RunnerResult result;
  ASSERT_TRUE(runner.Run(&result).ok());
  EXPECT_GE(result.operations, 300u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.tps, 0.0);
  EXPECT_EQ(result.latency->Count(), result.operations);
}

TEST_F(WorkloadTest, ReadAfterUpdateHitsCurrentVersion) {
  ItemTableOptions item_options;
  item_options.num_items = 100;
  item_options.title_scheme = IndexScheme::kSyncFull;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions update_options;
  update_options.op = WorkloadOp::kUpdateTitle;
  update_options.threads = 2;
  update_options.total_operations = 200;
  WorkloadRunner runner(cluster_.get(), &items, update_options);
  ASSERT_TRUE(runner.LoadItems(4).ok());
  RunnerResult update_result;
  ASSERT_TRUE(runner.Run(&update_result).ok());

  RunnerOptions read_options = update_options;
  read_options.op = WorkloadOp::kReadIndexExact;
  read_options.total_operations = 100;
  RunnerResult read_result;
  ASSERT_TRUE(runner.RunWith(read_options, &read_result).ok());
  EXPECT_EQ(read_result.errors, 0u);
}

TEST_F(WorkloadTest, PacingApproximatesTargetTps) {
  ItemTableOptions item_options;
  item_options.num_items = 100;
  ItemTable items(cluster_.get(), item_options);
  ASSERT_TRUE(items.Create().ok());

  RunnerOptions options;
  options.op = WorkloadOp::kUpdateTitle;
  options.threads = 2;
  options.total_operations = 0;
  options.max_duration_ms = 500;
  options.target_tps = 400;
  WorkloadRunner runner(cluster_.get(), &items, options);
  ASSERT_TRUE(runner.LoadItems(2).ok());
  RunnerResult result;
  ASSERT_TRUE(runner.Run(&result).ok());
  EXPECT_GT(result.tps, 200.0);
  EXPECT_LT(result.tps, 800.0);
}

TEST_F(WorkloadTest, KeyChooserStaysInRange) {
  for (KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kZipfian}) {
    auto chooser = KeyChooser::Create(dist, 500, 9);
    for (int i = 0; i < 5000; i++) {
      EXPECT_LT(chooser->Next(), 500u);
    }
  }
}

TEST_F(WorkloadTest, ZipfianChooserIsSkewed) {
  auto uniform = KeyChooser::Create(KeyDistribution::kUniform, 1000, 5);
  auto zipf = KeyChooser::Create(KeyDistribution::kZipfian, 1000, 5);
  auto max_freq = [](KeyChooser* chooser) {
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 20000; i++) counts[chooser->Next()]++;
    int max_count = 0;
    for (auto& [k, c] : counts) max_count = std::max(max_count, c);
    return max_count;
  };
  EXPECT_GT(max_freq(zipf.get()), 3 * max_freq(uniform.get()));
}

}  // namespace
}  // namespace diffindex
