// Read-engine scan tests (DESIGN.md §13): paged scatter-gather index
// range scans checked against the legacy single-walker read path
// (IndexReader::RangeByIndex), cursor resumability across scanner
// instances, covered projections (zero base reads), batched read-repair
// for sync-insert, and fault handling at the merge seam and on the wire.
//
// Indexed values here are plain hex-prefixed strings: they contain no
// 0x00/0x01 bytes, so the codec escape leaves them untouched and the
// index rows spread across all four index-table regions (split points
// "40"/"80"/"c0") — every full-range page genuinely fans out.

#include "query/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "fault/failpoint.h"

namespace diffindex {
namespace {

constexpr char kTable[] = "items";
constexpr char kIndex[] = "by_val";
constexpr char kColumn[] = "val";

class ScanByIndexTest : public ::testing::Test {
 protected:
  void Setup(IndexScheme scheme,
             std::vector<std::string> extra_columns = {}) {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
    ASSERT_TRUE(cluster_->master()->CreateTable(kTable).ok());
    IndexDescriptor index;
    index.name = kIndex;
    index.column = kColumn;
    index.scheme = scheme;
    index.extra_columns = std::move(extra_columns);
    ASSERT_TRUE(cluster_->master()->CreateIndex(kTable, index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
    ASSERT_TRUE(
        client_->reader()->FindIndex(kTable, kIndex, &index_).ok());
  }

  static std::string RowName(int i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "%02x-row%03d", (i * 53) % 256, i);
    return buf;
  }

  // Unique per i; distributes over the index-table regions (see header
  // comment).
  static std::string ValName(int i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "%02x-val%03d", (i * 37) % 256, i);
    return buf;
  }

  // Every cell of a row lands in ONE put: the covered path serves
  // non-leading components at the index entry's timestamp, which equals
  // each cell's own timestamp only when they were written together.
  void LoadRows(int n, bool with_extras = false) {
    for (int i = 0; i < n; i++) {
      std::vector<Cell> cells = {Cell{kColumn, ValName(i), false}};
      if (with_extras) {
        cells.push_back(Cell{"extra", "x" + std::to_string(i), false});
        cells.push_back(Cell{"other", "o" + std::to_string(i), false});
      }
      ASSERT_TRUE(client_->Put(kTable, RowName(i), std::move(cells)).ok())
          << RowName(i);
    }
  }

  std::vector<IndexHit> Reference(const std::string& lo,
                                  const std::string& hi,
                                  uint32_t limit = 0) {
    std::vector<IndexHit> hits;
    EXPECT_TRUE(
        client_->RangeByIndex(kTable, kIndex, lo, hi, limit, &hits).ok());
    return hits;
  }

  static void ExpectSameHits(const std::vector<IndexHit>& got,
                             const std::vector<IndexHit>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); i++) {
      EXPECT_EQ(got[i].base_row, want[i].base_row) << "hit " << i;
      EXPECT_EQ(got[i].value_encoded, want[i].value_encoded) << "hit " << i;
      EXPECT_EQ(got[i].ts, want[i].ts) << "hit " << i;
    }
  }

  static ScanSpec Spec() {
    ScanSpec spec;
    spec.table = kTable;
    spec.index_name = kIndex;
    return spec;
  }

  uint64_t CounterValue(const char* name) {
    return cluster_->metrics()->GetCounter(name)->value();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
  IndexDescriptor index_;
};

// The scatter-gather engine and the sequential single-walker path are
// observationally identical: same hits, same order, same timestamps —
// full range and bounded sub-range (the bounds cut across index-table
// region boundaries).
TEST_F(ScanByIndexTest, ScatterGatherMatchesSequentialReference) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(80);

  ReadEngine engine(client_.get());
  const uint64_t legs_before = CounterValue("query.legs");

  std::vector<ScannedRow> rows;
  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      engine.ScanByIndex(Spec(), ScanOptions(), &rows,
                         &hits)
          .ok());
  ExpectSameHits(hits, Reference("", ""));
  ASSERT_EQ(rows.size(), hits.size());
  for (size_t i = 0; i < rows.size(); i++) {
    EXPECT_EQ(rows[i].row, hits[i].base_row);
    ASSERT_EQ(rows[i].cells.size(), 1u);
    EXPECT_EQ(rows[i].cells[0].column, kColumn);
    EXPECT_EQ(rows[i].cells[0].value, hits[i].value_encoded);
  }
  // The full range overlaps all four index regions, so the single page
  // fanned out at least four legs.
  EXPECT_GE(CounterValue("query.legs") - legs_before, 4u);

  // Bounded sub-range, straddling the "80" region split.
  ScanSpec bounded = Spec();
  bounded.value_lo_encoded = "40";
  bounded.value_hi_encoded = "c0";
  rows.clear();
  hits.clear();
  ASSERT_TRUE(
      engine.ScanByIndex(bounded, ScanOptions(), &rows, &hits).ok());
  const std::vector<IndexHit> want = Reference("40", "c0");
  ASSERT_FALSE(want.empty());
  ASSERT_LT(want.size(), 80u);  // the bounds actually cut
  ExpectSameHits(hits, want);
}

// Small pages: the cursor walks the range in page_entries steps and the
// concatenation of pages equals the one-shot reference. A cursor token
// persisted mid-scan resumes an entirely fresh scanner at exactly the
// next entry.
TEST_F(ScanByIndexTest, PagedCursorResumesAcrossScannerInstances) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(60);
  const std::vector<IndexHit> want = Reference("", "");

  ReadEngine engine(client_.get());
  ScanOptions options;
  options.page_entries = 7;

  // Drive page by page.
  std::unique_ptr<IndexScanner> scanner;
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &scanner).ok());
  std::vector<IndexHit> paged;
  int pages = 0;
  while (!scanner->exhausted()) {
    ScanPage page;
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    EXPECT_LE(page.hits.size(), 7u);
    paged.insert(paged.end(), page.hits.begin(), page.hits.end());
    pages++;
  }
  ExpectSameHits(paged, want);
  EXPECT_GE(pages, 9);  // 60 entries / 7 per page

  // Stop after two pages, persist the token, resume in a new scanner.
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &scanner).ok());
  std::vector<IndexHit> resumed;
  for (int i = 0; i < 2; i++) {
    ScanPage page;
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    resumed.insert(resumed.end(), page.hits.begin(), page.hits.end());
  }
  const std::string token = scanner->cursor();
  scanner.reset();

  std::unique_ptr<IndexScanner> fresh;
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &fresh).ok());
  fresh->SeekTo(token);
  while (!fresh->exhausted()) {
    ScanPage page;
    ASSERT_TRUE(fresh->NextPage(&page).ok());
    resumed.insert(resumed.end(), page.hits.begin(), page.hits.end());
  }
  ExpectSameHits(resumed, want);
}

// The acceptance criterion for covered projections: when the projection
// is a subset of indexed + stored columns, the scan makes ZERO base-table
// reads (query.base_reads does not move) and still returns rows
// byte-identical to the base-fetch path.
TEST_F(ScanByIndexTest, CoveredProjectionMakesZeroBaseReads) {
  Setup(IndexScheme::kSyncFull, {"extra"});
  LoadRows(40, /*with_extras=*/true);

  ReadEngine engine(client_.get());
  ScanSpec spec = Spec();
  spec.projection = {kColumn, "extra"};

  // Reference: same projection through the base-fetch path.
  ScanOptions uncovered;
  uncovered.allow_covered = false;
  std::vector<ScannedRow> base_rows;
  ASSERT_TRUE(engine.ScanByIndex(spec, uncovered, &base_rows).ok());
  ASSERT_EQ(base_rows.size(), 40u);

  const uint64_t base_reads_before = CounterValue("query.base_reads");
  const uint64_t covered_before = CounterValue("query.covered");

  ScanOptions covered;  // allow_covered defaults true
  std::unique_ptr<IndexScanner> scanner;
  ASSERT_TRUE(engine.NewScan(spec, covered, &scanner).ok());
  std::vector<ScannedRow> covered_rows;
  while (!scanner->exhausted()) {
    ScanPage page;
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    EXPECT_TRUE(page.covered);
    covered_rows.insert(covered_rows.end(), page.rows.begin(),
                        page.rows.end());
  }

  EXPECT_EQ(CounterValue("query.base_reads"), base_reads_before)
      << "covered scan touched the base table";
  EXPECT_GT(CounterValue("query.covered"), covered_before);

  // Byte-identical rows: column, value, AND timestamp (the cells were
  // written in one put, so the entry ts is each cell's ts).
  ASSERT_EQ(covered_rows.size(), base_rows.size());
  for (size_t i = 0; i < base_rows.size(); i++) {
    EXPECT_EQ(covered_rows[i].row, base_rows[i].row);
    ASSERT_EQ(covered_rows[i].cells.size(), base_rows[i].cells.size())
        << base_rows[i].row;
    for (size_t c = 0; c < base_rows[i].cells.size(); c++) {
      EXPECT_EQ(covered_rows[i].cells[c].column,
                base_rows[i].cells[c].column);
      EXPECT_EQ(covered_rows[i].cells[c].value,
                base_rows[i].cells[c].value);
      EXPECT_EQ(covered_rows[i].cells[c].ts, base_rows[i].cells[c].ts);
    }
  }

  // A projection touching a non-stored column is not covered.
  ScanSpec wide = Spec();
  wide.projection = {kColumn, "other"};
  ASSERT_TRUE(engine.NewScan(wide, covered, &scanner).ok());
  ScanPage page;
  ASSERT_TRUE(scanner->NextPage(&page).ok());
  EXPECT_FALSE(page.covered);
}

// Moving an index-table region mid-scan invalidates the client's cached
// layout; the region-addressed leg fails with WrongRegion and the engine
// refreshes + retries the page. The scan completes with the full result.
TEST_F(ScanByIndexTest, SurvivesIndexRegionMoveMidScan) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(60);
  const std::vector<IndexHit> want = Reference("", "");

  ReadEngine engine(client_.get());
  ScanOptions options;
  options.page_entries = 8;
  std::unique_ptr<IndexScanner> scanner;
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &scanner).ok());

  std::vector<IndexHit> got;
  ScanPage page;
  ASSERT_TRUE(scanner->NextPage(&page).ok());
  got.insert(got.end(), page.hits.begin(), page.hits.end());

  // Move every index region to a different server; the client's layout
  // is now entirely stale.
  for (const RegionInfoWire& region :
       client_->raw_client()->TableRegions(index_.index_table)) {
    NodeId target = region.server_id;
    for (NodeId id : cluster_->server_ids()) {
      if (id != region.server_id) target = id;
    }
    ASSERT_TRUE(cluster_->master()
                    ->MoveRegion(index_.index_table, region.region_id,
                                 target)
                    .ok());
  }

  while (!scanner->exhausted()) {
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    got.insert(got.end(), page.hits.begin(), page.hits.end());
  }
  ExpectSameHits(got, want);
}

// A fully partitioned fabric exhausts the page retries and surfaces
// Unavailable — but the failed page never advanced the cursor, so once
// the network heals the SAME scanner resumes and the concatenation is
// complete and duplicate-free.
TEST_F(ScanByIndexTest, DropFaultSurfacesThenScanResumes) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(40);
  const std::vector<IndexHit> want = Reference("", "");

  ReadEngineOptions fast;
  fast.max_page_retries = 2;
  fast.retry_backoff_ms = 1;
  fast.retry_backoff_max_ms = 2;
  ReadEngine engine(client_.get(), fast);
  ScanOptions options;
  options.page_entries = 10;
  std::unique_ptr<IndexScanner> scanner;
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &scanner).ok());

  std::vector<IndexHit> got;
  ScanPage page;
  ASSERT_TRUE(scanner->NextPage(&page).ok());
  got.insert(got.end(), page.hits.begin(), page.hits.end());

  Fabric::EdgeFault drop;
  drop.drop_probability = 1.0;
  cluster_->fabric()->SetDefaultFault(drop);
  Status s = scanner->NextPage(&page);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  cluster_->fabric()->ClearFaults();
  while (!scanner->exhausted()) {
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    got.insert(got.end(), page.hits.begin(), page.hits.end());
  }
  ExpectSameHits(got, want);
}

// The query.merge failpoint fires between leg gather and merge; the
// error surfaces (it is not a layout/availability error) with the cursor
// still at the failed page's start, so the immediate retry succeeds.
TEST_F(ScanByIndexTest, MergeFailpointLeavesPageRetryable) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(30);
  const std::vector<IndexHit> want = Reference("", "");

  fault::ScopedFailpointCleanup cleanup;
  fault::FailpointRegistry::Global()->Arm(
      "query.merge", fault::FailpointPolicy::ErrorOnce(Status::IOError("torn")));

  ReadEngine engine(client_.get());
  ScanOptions options;
  options.page_entries = 8;
  std::unique_ptr<IndexScanner> scanner;
  ASSERT_TRUE(
      engine.NewScan(Spec(), options, &scanner).ok());

  ScanPage page;
  Status s = scanner->NextPage(&page);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  std::vector<IndexHit> got;
  while (!scanner->exhausted()) {
    ASSERT_TRUE(scanner->NextPage(&page).ok());
    got.insert(got.end(), page.hits.begin(), page.hits.end());
  }
  ExpectSameHits(got, want);
}

// Sync-insert leaves stale entries on update by design (Algorithm 2);
// the engine's batched repair must (a) filter them out of the returned
// hits and (b) lazily delete them from the index table, exactly like the
// sequential reference routine.
TEST_F(ScanByIndexTest, BatchedRepairFiltersAndDeletesStaleEntries) {
  Setup(IndexScheme::kSyncInsert);
  LoadRows(30);
  // Overwrite every 3rd row: the old entry goes stale in the index.
  std::map<std::string, std::string> truth;  // row -> current value
  for (int i = 0; i < 30; i++) {
    if (i % 3 == 0) {
      ASSERT_TRUE(
          client_->PutColumn(kTable, RowName(i), kColumn, ValName(100 + i))
              .ok());
      truth[RowName(i)] = ValName(100 + i);
    } else {
      truth[RowName(i)] = ValName(i);
    }
  }

  const uint64_t deleted_before = CounterValue("query.repair.deleted");
  ReadEngine engine(client_.get());
  ScanOptions options;
  options.page_entries = 7;  // repair runs per page
  options.batched_repair = true;
  std::vector<ScannedRow> rows;
  std::vector<IndexHit> hits;
  ASSERT_TRUE(engine.ScanByIndex(Spec(), options, &rows,
                                 &hits)
                  .ok());

  // Verified hits = the model, in (value, row) order.
  std::vector<std::pair<std::string, std::string>> expected;
  for (const auto& [row, value] : truth) expected.emplace_back(value, row);
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(hits[i].value_encoded, expected[i].first) << "hit " << i;
    EXPECT_EQ(hits[i].base_row, expected[i].second) << "hit " << i;
  }
  EXPECT_EQ(CounterValue("query.repair.deleted") - deleted_before, 10u);

  // The stale entries are gone from the raw index keyspace.
  std::vector<ScannedRow> raw;
  ASSERT_TRUE(client_->raw_client()
                  ->ScanRows(index_.index_table, "", "", kMaxTimestamp, 0,
                             &raw)
                  .ok());
  std::set<std::pair<std::string, std::string>> remaining;
  for (const ScannedRow& entry : raw) {
    std::string value, row;
    ASSERT_TRUE(DecodeIndexRow(entry.row, &value, &row)) << entry.row;
    remaining.emplace(value, row);
  }
  const std::set<std::pair<std::string, std::string>> expected_set(
      expected.begin(), expected.end());
  EXPECT_EQ(remaining, expected_set);
}

// limit counts scanned index entries across pages (the RangeByIndex
// semantics), independent of page size.
TEST_F(ScanByIndexTest, LimitCountsScannedEntriesAcrossPages) {
  Setup(IndexScheme::kSyncFull);
  LoadRows(30);
  const std::vector<IndexHit> all = Reference("", "");

  ReadEngine engine(client_.get());
  ScanSpec spec = Spec();
  spec.limit = 7;
  ScanOptions options;
  options.page_entries = 3;
  std::vector<ScannedRow> rows;
  std::vector<IndexHit> hits;
  ASSERT_TRUE(engine.ScanByIndex(spec, options, &rows, &hits).ok());
  ASSERT_EQ(hits.size(), 7u);
  ExpectSameHits(hits,
                 std::vector<IndexHit>(all.begin(), all.begin() + 7));
}

// Session-consistent scan (Section 5.2): the page merge against the
// session's private entries makes the engine agree with
// SessionRangeByIndex — and with the ground truth — no matter how much
// of the AUQ backlog has drained.
TEST_F(ScanByIndexTest, SessionScanMergesPrivateEntries) {
  Setup(IndexScheme::kAsyncSession);
  const SessionId session = client_->GetSession();
  std::set<std::pair<std::string, std::string>> truth;
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(client_
                    ->SessionPut(session, kTable, RowName(i),
                                 {Cell{kColumn, ValName(i), false}})
                    .ok());
    truth.emplace(ValName(i), RowName(i));
  }

  ReadEngine engine(client_.get());
  ScanOptions options;
  options.page_entries = 6;
  options.session = session;
  std::vector<ScannedRow> rows;
  std::vector<IndexHit> hits;
  ASSERT_TRUE(engine.ScanByIndex(Spec(), options, &rows,
                                 &hits)
                  .ok());

  std::set<std::pair<std::string, std::string>> got;
  for (const IndexHit& hit : hits) {
    got.emplace(hit.value_encoded, hit.base_row);
  }
  EXPECT_EQ(got, truth);

  std::vector<IndexHit> reference;
  ASSERT_TRUE(client_
                  ->SessionRangeByIndex(session, kTable, kIndex, "", "",
                                        &reference)
                  .ok());
  std::set<std::pair<std::string, std::string>> ref;
  for (const IndexHit& hit : reference) {
    ref.emplace(hit.value_encoded, hit.base_row);
  }
  EXPECT_EQ(got, ref);
  client_->EndSession(session);
}

// Local indexes keep their broadcast read path; the region-addressed
// engine must refuse them up front, not scan garbage.
TEST_F(ScanByIndexTest, RejectsLocalIndexes) {
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 2;
  ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
  client_ = cluster_->NewDiffIndexClient();
  ASSERT_TRUE(cluster_->master()->CreateTable(kTable).ok());
  IndexDescriptor local;
  local.name = kIndex;
  local.column = kColumn;
  local.scheme = IndexScheme::kSyncFull;
  local.is_local = true;
  ASSERT_TRUE(cluster_->master()->CreateIndex(kTable, local).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

  ReadEngine engine(client_.get());
  std::unique_ptr<IndexScanner> scanner;
  Status s = engine.NewScan(Spec(), ScanOptions(),
                            &scanner);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace diffindex
