// Differential read-equivalence suite (DESIGN.md §13): the read engine's
// scatter-gather/covered/batched-repair paths must be observationally
// identical to the legacy sequential read path on the same final state —
// same verified hits (row, value, ts), same materialized rows
// (column/value/ts byte-identity) — under every maintenance scheme, for
// the same seeded workload. And for sync-insert, batched read-repair run
// on one cluster must leave the raw index table in exactly the state
// sequential repair leaves on a twin cluster that replayed the same
// trace.
//
// The workload writes the indexed column and the stored extra column in
// one put per op: the covered path serves every projected cell at the
// index entry's timestamp, so byte-identity (including ts) only holds —
// and is only asserted — when the cells were written together.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "query/engine.h"
#include "util/random.h"

namespace diffindex {
namespace {

constexpr char kTable[] = "items";
constexpr char kIndex[] = "by_title";
constexpr char kColumn[] = "title";
constexpr char kExtra[] = "note";
constexpr int kNumValues = 8;
constexpr int kKeySpace = 24;
constexpr int kOpsPerRun = 120;

std::string ValueName(int v) { return "v" + std::to_string(v); }

std::string RowName(Random* rng) {
  char buf[24];
  const uint32_t r = rng->Uniform(kKeySpace);
  snprintf(buf, sizeof(buf), "%02x-r%u", (r * 37) % 256, r);
  return buf;
}

struct TestCluster {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<DiffIndexClient> client;
  IndexDescriptor index;
};

// Builds a cluster and replays the seed's op trace: indexed puts
// (title + note in ONE put), same-value overwrites, deletes, occasional
// flushes. The trace depends only on the seed.
void RunWorkload(IndexScheme scheme, uint64_t seed, TestCluster* tc) {
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 4;
  ASSERT_TRUE(Cluster::Create(options, &tc->cluster).ok());
  tc->client = tc->cluster->NewDiffIndexClient();
  ASSERT_TRUE(tc->cluster->master()->CreateTable(kTable).ok());
  IndexDescriptor index;
  index.name = kIndex;
  index.column = kColumn;
  index.scheme = scheme;
  index.extra_columns = {kExtra};
  ASSERT_TRUE(tc->cluster->master()->CreateIndex(kTable, index).ok());
  ASSERT_TRUE(tc->client->raw_client()->RefreshLayout().ok());
  ASSERT_TRUE(
      tc->client->reader()->FindIndex(kTable, kIndex, &tc->index).ok());

  Random rng(static_cast<uint32_t>(seed));
  std::map<std::string, std::string> model;  // row -> current value
  for (int i = 0; i < kOpsPerRun; i++) {
    const std::string row = RowName(&rng);
    const uint32_t dice = rng.Uniform(10);
    if (model.count(row) && dice < 2) {
      ASSERT_TRUE(
          tc->client->DeleteColumns(kTable, row, {kColumn, kExtra}).ok());
      model.erase(row);
    } else {
      // Fresh value or same-value overwrite (dice < 4) — either way both
      // cells land in one put so entry ts == each cell's ts.
      const std::string value = model.count(row) && dice < 4
                                    ? model[row]
                                    : ValueName(rng.Uniform(kNumValues));
      ASSERT_TRUE(tc->client
                      ->Put(kTable, row,
                            {Cell{kColumn, value, false},
                             Cell{kExtra, "n-" + row + "-" + value, false}})
                      .ok());
      model[row] = value;
    }
    if (rng.OneIn(40)) {
      ASSERT_TRUE(tc->client->raw_client()->FlushTable(kTable).ok());
    }
  }

  // Async schemes: wait for the AUQ to deliver everything so the read
  // paths compare against a settled index.
  for (int i = 0; i < 5000; i++) {
    bool all_empty = true;
    for (NodeId id : tc->cluster->server_ids()) {
      if (tc->cluster->index_manager(id)->QueueDepth() > 0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ExpectSameHits(const std::vector<IndexHit>& got,
                    const std::vector<IndexHit>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); i++) {
    EXPECT_EQ(got[i].base_row, want[i].base_row) << label << " hit " << i;
    EXPECT_EQ(got[i].value_encoded, want[i].value_encoded)
        << label << " hit " << i;
    EXPECT_EQ(got[i].ts, want[i].ts) << label << " hit " << i;
  }
}

void ExpectSameRows(const std::vector<ScannedRow>& got,
                    const std::vector<ScannedRow>& want,
                    const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); i++) {
    EXPECT_EQ(got[i].row, want[i].row) << label << " row " << i;
    ASSERT_EQ(got[i].cells.size(), want[i].cells.size())
        << label << " row " << want[i].row;
    for (size_t c = 0; c < want[i].cells.size(); c++) {
      EXPECT_EQ(got[i].cells[c].column, want[i].cells[c].column)
          << label << " row " << want[i].row;
      EXPECT_EQ(got[i].cells[c].value, want[i].cells[c].value)
          << label << " row " << want[i].row << " col "
          << want[i].cells[c].column;
      EXPECT_EQ(got[i].cells[c].ts, want[i].cells[c].ts)
          << label << " row " << want[i].row << " col "
          << want[i].cells[c].column;
    }
  }
}

// The sequential reference: RangeByIndex (scheme-dispatched, repairs for
// sync-insert) + one GetRow per hit, projected to {note, title} in
// column order.
void SequentialReadPath(TestCluster* tc, std::vector<IndexHit>* hits,
                        std::vector<ScannedRow>* rows) {
  ASSERT_TRUE(
      tc->client->RangeByIndex(kTable, kIndex, "", "", 0, hits).ok());
  rows->clear();
  for (const IndexHit& hit : *hits) {
    GetRowResponse resp;
    ASSERT_TRUE(tc->client->GetRow(kTable, hit.base_row, &resp).ok());
    if (!resp.found) continue;
    ScannedRow row;
    row.row = hit.base_row;
    for (const RowCell& cell : resp.cells) {
      if (cell.column == kColumn || cell.column == kExtra) {
        row.cells.push_back(cell);
      }
    }
    rows->push_back(std::move(row));
  }
}

std::set<std::pair<std::string, std::string>> RawIndexState(
    TestCluster* tc) {
  std::vector<ScannedRow> raw;
  EXPECT_TRUE(tc->client->raw_client()
                  ->ScanRows(tc->index.index_table, "", "", kMaxTimestamp,
                             0, &raw)
                  .ok());
  std::set<std::pair<std::string, std::string>> state;
  for (const ScannedRow& entry : raw) {
    std::string value, row;
    EXPECT_TRUE(DecodeIndexRow(entry.row, &value, &row)) << entry.row;
    state.emplace(value, row);
  }
  return state;
}

class ReadEquivalenceTest : public ::testing::TestWithParam<int> {};

// All engine read paths — uncovered+batched, uncovered+sequential-repair,
// covered — agree byte-for-byte with the legacy sequential path, on the
// same settled cluster, under every scheme.
TEST_P(ReadEquivalenceTest, EnginePathsMatchSequentialReadPath) {
  const uint64_t seed = 0x5CA11ED0ULL + static_cast<uint64_t>(GetParam());
  for (IndexScheme scheme :
       {IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
        IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession}) {
    SCOPED_TRACE(IndexSchemeName(scheme));
    TestCluster tc;
    RunWorkload(scheme, seed, &tc);

    std::vector<IndexHit> ref_hits;
    std::vector<ScannedRow> ref_rows;
    SequentialReadPath(&tc, &ref_hits, &ref_rows);
    ASSERT_FALSE(ref_hits.empty());

    ReadEngine engine(tc.client.get());
    ScanSpec spec;
    spec.table = kTable;
    spec.index_name = kIndex;
    spec.projection = {kColumn, kExtra};

    ScanOptions uncovered;
    uncovered.allow_covered = false;
    uncovered.page_entries = 5;  // force multiple pages
    std::vector<ScannedRow> rows;
    std::vector<IndexHit> hits;
    ASSERT_TRUE(engine.ScanByIndex(spec, uncovered, &rows, &hits).ok());
    ExpectSameHits(hits, ref_hits, "uncovered+batched");
    ExpectSameRows(rows, ref_rows, "uncovered+batched");

    ScanOptions seq_repair = uncovered;
    seq_repair.batched_repair = false;
    ASSERT_TRUE(engine.ScanByIndex(spec, seq_repair, &rows, &hits).ok());
    ExpectSameHits(hits, ref_hits, "uncovered+seq-repair");
    ExpectSameRows(rows, ref_rows, "uncovered+seq-repair");

    ScanOptions covered;
    covered.page_entries = 5;
    ASSERT_TRUE(engine.ScanByIndex(spec, covered, &rows, &hits).ok());
    ExpectSameHits(hits, ref_hits, "covered");
    ExpectSameRows(rows, ref_rows, "covered");
  }
}

// Twin clusters replay the same sync-insert trace; one is read through
// the sequential repair path, the other through the engine's batched
// repair. Both must report the same verified entries and both must leave
// the raw index table in the same (fully repaired) state.
TEST_P(ReadEquivalenceTest, BatchedRepairConvergesLikeSequential) {
  const uint64_t seed = 0xBA7C4EDULL + static_cast<uint64_t>(GetParam());

  TestCluster sequential;
  RunWorkload(IndexScheme::kSyncInsert, seed, &sequential);
  std::vector<IndexHit> seq_hits;
  ASSERT_TRUE(sequential.client
                  ->RangeByIndex(kTable, kIndex, "", "", 0, &seq_hits)
                  .ok());

  TestCluster batched;
  RunWorkload(IndexScheme::kSyncInsert, seed, &batched);
  ReadEngine engine(batched.client.get());
  ScanSpec spec;
  spec.table = kTable;
  spec.index_name = kIndex;
  ScanOptions options;
  options.page_entries = 7;
  options.batched_repair = true;
  std::vector<ScannedRow> rows;
  std::vector<IndexHit> bat_hits;
  ASSERT_TRUE(engine.ScanByIndex(spec, options, &rows, &bat_hits).ok());

  // Same verified entries (timestamps are cluster-local; compare the
  // (value, row) sets, which are deterministic functions of the trace).
  std::set<std::pair<std::string, std::string>> seq_set, bat_set;
  for (const IndexHit& hit : seq_hits) {
    seq_set.emplace(hit.value_encoded, hit.base_row);
  }
  for (const IndexHit& hit : bat_hits) {
    bat_set.emplace(hit.value_encoded, hit.base_row);
  }
  EXPECT_EQ(bat_set, seq_set);

  // Both repair styles deleted the same stale entries: the raw index
  // keyspaces are identical and contain exactly the verified entries.
  const auto seq_state = RawIndexState(&sequential);
  const auto bat_state = RawIndexState(&batched);
  EXPECT_EQ(bat_state, seq_state);
  EXPECT_EQ(bat_state, bat_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadEquivalenceTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace diffindex
