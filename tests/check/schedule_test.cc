// Schedule-string format tests: the parse/format round-trip both the
// chaos harness and the model checker rely on, plus the ModelOptions and
// ChaosOptions bridges layered on top of it.

#include "check/schedule.h"

#include <gtest/gtest.h>

#include "../fault/chaos_harness.h"
#include "check/model_workload.h"

namespace diffindex {
namespace check {
namespace {

TEST(ScheduleTest, FormatParseRoundTrip) {
  Schedule in;
  in.kind = "check";
  in.set("scheme", "async-simple");
  in.set_int("writers", 2);
  in.set_int("ops", 3);
  in.choices = {0, 2, 1, 1, 0};

  const std::string text = FormatSchedule(in);
  EXPECT_EQ(text, "check:scheme=async-simple;writers=2;ops=3;choices=0,2,1,1,0");

  Schedule out;
  std::string error;
  ASSERT_TRUE(ParseSchedule(text, &out, &error)) << error;
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.fields, in.fields);
  EXPECT_EQ(out.choices, in.choices);
  // Canonical: formatting the parse reproduces the input exactly.
  EXPECT_EQ(FormatSchedule(out), text);
}

TEST(ScheduleTest, NoChoicesOmitsField) {
  Schedule in;
  in.kind = "chaos";
  in.set("seed", "42");
  const std::string text = FormatSchedule(in);
  EXPECT_EQ(text, "chaos:seed=42");

  Schedule out;
  std::string error;
  ASSERT_TRUE(ParseSchedule(text, &out, &error)) << error;
  EXPECT_TRUE(out.choices.empty());
}

TEST(ScheduleTest, Accessors) {
  Schedule s;
  s.kind = "check";
  s.set_int("writers", 4);
  s.set("scheme", "sync-full");
  EXPECT_TRUE(s.has("writers"));
  EXPECT_FALSE(s.has("absent"));
  EXPECT_EQ(s.get_int("writers", -1), 4);
  EXPECT_EQ(s.get_int("absent", -1), -1);
  EXPECT_EQ(s.get_int("scheme", -1), -1);  // non-integer -> fallback
  EXPECT_EQ(s.get("scheme"), "sync-full");
  // set() on an existing key overwrites in place.
  s.set_int("writers", 8);
  EXPECT_EQ(s.get_int("writers", -1), 8);
  ASSERT_EQ(s.fields.size(), 2u);
}

TEST(ScheduleTest, ParseErrors) {
  Schedule out;
  std::string error;
  EXPECT_FALSE(ParseSchedule("", &out, &error));
  EXPECT_FALSE(ParseSchedule("no-colon-here", &out, &error));
  EXPECT_FALSE(ParseSchedule(":seed=1", &out, &error));
  EXPECT_FALSE(ParseSchedule("check:novalue", &out, &error));
  EXPECT_FALSE(ParseSchedule("check:choices=1,x,2", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScheduleTest, ModelOptionsRoundTrip) {
  ModelOptions in;
  in.scheme = IndexScheme::kAsyncSession;
  in.drain_batch_size = 2;
  in.num_writers = 3;
  in.ops_per_writer = 1;
  in.same_row = false;
  in.flush_after_writes = true;
  in.group_commit = true;
  const std::vector<int> choices = {1, 0, 2};

  const std::string text = FormatSchedule(ToSchedule(in, choices));

  Schedule parsed;
  std::string error;
  ASSERT_TRUE(ParseSchedule(text, &parsed, &error)) << error;
  ModelOptions out;
  std::vector<int> out_choices;
  ASSERT_TRUE(FromSchedule(parsed, &out, &out_choices));
  EXPECT_EQ(out.scheme, in.scheme);
  EXPECT_EQ(out.drain_batch_size, in.drain_batch_size);
  EXPECT_EQ(out.num_writers, in.num_writers);
  EXPECT_EQ(out.ops_per_writer, in.ops_per_writer);
  EXPECT_EQ(out.same_row, in.same_row);
  EXPECT_EQ(out.flush_after_writes, in.flush_after_writes);
  EXPECT_EQ(out.group_commit, in.group_commit);
  EXPECT_EQ(out_choices, choices);
}

TEST(ScheduleTest, FromScheduleRejectsWrongKindAndScheme) {
  Schedule chaos_kind;
  chaos_kind.kind = "chaos";
  ModelOptions options;
  std::vector<int> choices;
  EXPECT_FALSE(FromSchedule(chaos_kind, &options, &choices));

  Schedule bad_scheme;
  bad_scheme.kind = "check";
  bad_scheme.set("scheme", "no-such-scheme");
  EXPECT_FALSE(FromSchedule(bad_scheme, &options, &choices));
}

TEST(ScheduleTest, ChaosOptionsRoundTrip) {
  chaos::ChaosOptions in;
  in.seed = 12345678901ULL;
  in.scheme = IndexScheme::kSyncInsert;
  in.num_servers = 3;
  in.rounds = 7;
  in.ops_per_round = 11;
  in.key_space = 24;
  in.enable_partitions = false;
  in.enable_net_faults = false;

  const std::string text = chaos::FormatChaosSchedule(in);
  chaos::ChaosOptions out;
  std::string error;
  ASSERT_TRUE(chaos::ParseChaosSchedule(text, &out, &error)) << error;
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.scheme, in.scheme);
  EXPECT_EQ(out.num_servers, in.num_servers);
  EXPECT_EQ(out.rounds, in.rounds);
  EXPECT_EQ(out.ops_per_round, in.ops_per_round);
  EXPECT_EQ(out.key_space, in.key_space);
  EXPECT_EQ(out.enable_crashes, in.enable_crashes);
  EXPECT_EQ(out.enable_partitions, in.enable_partitions);
  EXPECT_EQ(out.enable_env_faults, in.enable_env_faults);
  EXPECT_EQ(out.enable_failpoints, in.enable_failpoints);
  EXPECT_EQ(out.enable_net_faults, in.enable_net_faults);
}

TEST(ScheduleTest, ChaosParseRejectsCheckKind) {
  chaos::ChaosOptions out;
  std::string error;
  EXPECT_FALSE(chaos::ParseChaosSchedule("check:scheme=sync-full", &out,
                                         &error));
  EXPECT_NE(error.find("chaos"), std::string::npos);
}

TEST(ScheduleTest, ReplayRejectsGarbage) {
  chaos::ChaosReport bad = chaos::ReplaySchedule("not a schedule");
  EXPECT_FALSE(bad.ok());
  chaos::ChaosReport unknown = chaos::ReplaySchedule("mystery:seed=1");
  EXPECT_FALSE(unknown.ok());
}

}  // namespace
}  // namespace check
}  // namespace diffindex
