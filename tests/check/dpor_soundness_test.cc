// Pruning-soundness test: sleep-set (DPOR-lite) exploration must reach
// exactly the same set of terminal states as a naive DFS on the same
// model — pruning may only drop redundant interleavings, never distinct
// outcomes. Compared via the oracle's terminal-state fingerprints.

#include <gtest/gtest.h>

#include <cstdio>

#include "check/explorer.h"
#include "check/model_workload.h"

namespace diffindex {
namespace check {
namespace {

#ifdef DIFFINDEX_CHECK

// Small enough that the naive DFS exhausts the space well inside the
// schedule cap — otherwise "same fingerprints" would be vacuous. One
// writer racing the AUQ worker is the smallest model with a real
// interleaving space (two writers already explode past 10^4 schedules
// under naive DFS).
ModelOptions TinyModel(IndexScheme scheme) {
  ModelOptions model;
  model.scheme = scheme;
  model.num_writers = 1;
  model.ops_per_writer = 2;
  model.same_row = true;
  model.drain_batch_size = 2;
  return model;
}

void CompareAgainstNaive(const ModelOptions& model, const char* label) {
  ExploreOptions naive;
  naive.max_schedules = 60000;
  naive.use_sleep_sets = false;
  naive.stop_on_violation = false;
  ExploreResult full = Explore(naive, ModelRunner(model));
  ASSERT_FALSE(full.hit_schedule_cap)
      << label << ": naive DFS hit the cap; shrink the model";

  ExploreOptions pruned = naive;
  pruned.use_sleep_sets = true;
  ExploreResult slept = Explore(pruned, ModelRunner(model));

  std::fprintf(stderr,
               "[model-check] %s: naive=%d runs/%zu states, "
               "sleep-sets=%d runs/%zu states\n",
               label, full.schedules_run, full.fingerprints.size(),
               slept.schedules_run, slept.fingerprints.size());

  EXPECT_EQ(full.violations, 0) << label << ": " << full.first_violation;
  EXPECT_EQ(slept.violations, 0) << label << ": " << slept.first_violation;
  // Soundness: identical terminal-state sets.
  EXPECT_EQ(slept.fingerprints, full.fingerprints) << label;
  // Pruning never explores more than the naive DFS.
  EXPECT_LE(slept.schedules_run, full.schedules_run) << label;
  EXPECT_GT(slept.schedules_run, 0) << label;
}

TEST(DporSoundnessTest, AsyncSimpleMatchesNaiveDfs) {
  CompareAgainstNaive(TinyModel(IndexScheme::kAsyncSimple), "async-simple");
}

TEST(DporSoundnessTest, SyncFullMatchesNaiveDfs) {
  CompareAgainstNaive(TinyModel(IndexScheme::kSyncFull), "sync-full");
}

#else  // !DIFFINDEX_CHECK

TEST(DporSoundnessTest, RequiresCheckBuild) {
  GTEST_SKIP() << "explorer needs -DDIFFINDEX_CHECK=ON instrumentation";
}

#endif  // DIFFINDEX_CHECK

}  // namespace
}  // namespace check
}  // namespace diffindex
