// Seeded-mutation regression corpus: each previously-fixed concurrency
// bug is re-introduced behind a check::test_hooks flag and the bounded
// exploration must (a) find it, (b) print a replayable schedule string,
// and (c) reproduce the exact failure when that string is replayed.
// This is the end-to-end proof that the checker's bounds are tight
// enough to catch the class of bug it exists for.

#include "check/test_hooks.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "../fault/chaos_harness.h"
#include "check/explorer.h"
#include "check/model_workload.h"
#include "check/schedule.h"

namespace diffindex {
namespace check {
namespace {

#ifdef DIFFINDEX_CHECK

// RAII arm/disarm so a failing assertion can't leak the mutation into
// later tests.
class ScopedMutation {
 public:
  explicit ScopedMutation(std::atomic<bool>& flag) : flag_(flag) {
    flag_.store(true, std::memory_order_relaxed);
  }
  ~ScopedMutation() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool>& flag_;
};

// The PR-4 min-anchor coalescing bug: collapsing a coalesced survivor's
// retraction anchors (old_ts + covered_old_ts) to the single minimum
// point. With in-order enqueues the collapse is invisible — the dropped
// (newer) anchors only retract versions whose PIs were absorbed in the
// same batch, so there is nothing in the index to miss. The observable
// case needs an enqueue that is out of timestamp order, which the real
// system permits because PostApply runs after write_mu is released:
//   1. writer A applies a1@T1, is preempted at the "auq.enqueue" yield
//      before its task lands in the queue;
//   2. writer B applies b1@T2, enqueues, and the worker drains+delivers
//      b1's entry alone;
//   3. A's task (anchor T1) finally enqueues, A applies a2@T3 and
//      enqueues; the worker drains both in one batch. The survivor's
//      T3 anchor is the one that retracts b1 — min-collapse keeps T1
//      instead, and b1 survives as a phantom.
// The explorer has to find that interleaving inside the bounds below.
ModelOptions CoalescingModel() {
  ModelOptions model;
  model.scheme = IndexScheme::kAsyncSimple;
  model.num_writers = 2;
  model.ops_per_writer = 2;
  model.same_row = true;
  model.drain_batch_size = 2;
  return model;
}

TEST(MutationRegressionTest, MinAnchorCoalescingBugIsCaught) {
  ScopedMutation arm(test_hooks::buggy_min_anchor_coalescing);

  ExploreOptions explore;
  explore.max_schedules = 6000;
  explore.preemption_bound = 3;  // the scenario above needs ~3 forced switches
  explore.stop_on_violation = true;
  ExploreResult result = Explore(explore, ModelRunner(CoalescingModel()));

  ASSERT_GT(result.violations, 0)
      << "mutation survived " << result.schedules_run
      << " schedules — exploration bounds too loose to catch the PR-4 "
         "coalescing bug";
  EXPECT_NE(result.first_violation.find("phantom"), std::string::npos)
      << result.first_violation;

  const std::string schedule = FormatSchedule(
      ToSchedule(CoalescingModel(), result.violating_choices));
  std::fprintf(stderr,
               "[model-check] mutation caught after %d schedules: %s\n"
               "[model-check] replay with: %s\n",
               result.schedules_run, result.first_violation.c_str(),
               schedule.c_str());

  // Round-trip the printed string through the chaos harness's replay
  // entry point: the exact same interleaving, the exact same violation.
  chaos::ChaosReport replay = chaos::ReplaySchedule(schedule);
  ASSERT_FALSE(replay.ok()) << "replayed schedule no longer fails";
  bool reproduced = false;
  for (const std::string& v : replay.violations) {
    if (v.find("phantom") != std::string::npos) reproduced = true;
    EXPECT_EQ(v.find("diverged"), std::string::npos) << v;
  }
  EXPECT_TRUE(reproduced) << replay.Summary();
}

// The timestamp-inversion race the checker itself found (and this PR
// fixed): drawing a put's timestamp before the region's write-serialized
// section lets two same-row puts apply in the opposite order of their
// timestamps, so the later put's retraction read misses the earlier,
// not-yet-applied version — a phantom. Group commit widens the window
// (the WAL ticket wait happens under write_mu), which is how the sweep
// first hit it.
ModelOptions TsInversionModel() {
  ModelOptions model;
  model.scheme = IndexScheme::kSyncFull;
  model.num_writers = 2;
  model.ops_per_writer = 2;
  model.same_row = true;
  model.group_commit = true;
  return model;
}

TEST(MutationRegressionTest, TsOutsideWriteMuBugIsCaught) {
  ScopedMutation arm(test_hooks::buggy_ts_outside_write_mu);

  ExploreOptions explore;
  explore.max_schedules = 2000;
  explore.preemption_bound = 2;
  explore.stop_on_violation = true;
  ExploreResult result = Explore(explore, ModelRunner(TsInversionModel()));

  ASSERT_GT(result.violations, 0)
      << "mutation survived " << result.schedules_run
      << " schedules — exploration bounds too loose to catch the "
         "timestamp-inversion race";
  EXPECT_NE(result.first_violation.find("phantom"), std::string::npos)
      << result.first_violation;

  const std::string schedule = FormatSchedule(
      ToSchedule(TsInversionModel(), result.violating_choices));
  std::fprintf(stderr,
               "[model-check] mutation caught after %d schedules: %s\n"
               "[model-check] replay with: %s\n",
               result.schedules_run, result.first_violation.c_str(),
               schedule.c_str());

  // NOTE: replaying this string only reproduces the failure while the
  // hook is armed (the fixed code path no longer has the race) — which
  // is exactly what the clean BoundedSweepAllSchemes config proves.
  RunOutcome replay = RunModel(TsInversionModel(), result.violating_choices);
  EXPECT_FALSE(replay.diverged);
  EXPECT_NE(replay.violation.find("phantom"), std::string::npos)
      << replay.violation;
}

// Control: with the mutation disarmed the identical bounded exploration
// must come back clean — the regression test detects the bug, not some
// artifact of the model.
TEST(MutationRegressionTest, UnmutatedModelExploresClean) {
  ExploreOptions explore;
  explore.max_schedules = 6000;
  explore.preemption_bound = 3;
  explore.stop_on_violation = true;
  ExploreResult result = Explore(explore, ModelRunner(CoalescingModel()));
  EXPECT_EQ(result.violations, 0)
      << result.first_violation << "\n  replay with: "
      << FormatSchedule(
             ToSchedule(CoalescingModel(), result.violating_choices));
  EXPECT_GT(result.schedules_run, 0);
}

#else  // !DIFFINDEX_CHECK

TEST(MutationRegressionTest, RequiresCheckBuild) {
  GTEST_SKIP() << "mutation hooks are only consulted under "
                  "-DDIFFINDEX_CHECK=ON";
}

#endif  // DIFFINDEX_CHECK

}  // namespace
}  // namespace check
}  // namespace diffindex
