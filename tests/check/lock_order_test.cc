// Runtime lock-order validator tests (util/lock_order.h): the dynamic
// mirror of the ACQUIRED_BEFORE annotations and the static `lock-order`
// lint rule. Installs a recording violation handler so ordering bugs can
// be asserted on instead of aborting the process.

#include "util/lock_order.h"

#include <gtest/gtest.h>

#include <string>

#include "util/mutex.h"

namespace diffindex {
namespace {

#ifdef DIFFINDEX_LOCK_ORDER_CHECKS

std::string* g_last_report = nullptr;

void RecordViolation(const char* report) { *g_last_report = report; }

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last_report = &report_;
    previous_ = lock_order::SetViolationHandler(&RecordViolation);
  }
  void TearDown() override {
    lock_order::SetViolationHandler(previous_);
    g_last_report = nullptr;
  }

  std::string report_;
  lock_order::ViolationHandler previous_ = nullptr;
};

TEST_F(LockOrderTest, IncreasingRanksAreClean) {
  Mutex low(LockRank::kWalSyncMu, "lo_low");
  Mutex high(LockRank::kAuqMu, "lo_high");
  {
    MutexLock outer(low);
    MutexLock inner(high);
    EXPECT_TRUE(report_.empty()) << report_;
  }
  EXPECT_TRUE(report_.empty()) << report_;
}

TEST_F(LockOrderTest, DecreasingRanksViolate) {
  Mutex low(LockRank::kWalSyncMu, "lo_low");
  Mutex high(LockRank::kAuqMu, "lo_high");
  {
    MutexLock outer(high);
    MutexLock inner(low);
    EXPECT_NE(report_.find("lock-order violation"), std::string::npos)
        << report_;
    EXPECT_NE(report_.find("lo_low"), std::string::npos) << report_;
    EXPECT_NE(report_.find("lo_high"), std::string::npos) << report_;
  }
}

TEST_F(LockOrderTest, SameRankExclusiveViolates) {
  Mutex a(LockRank::kLeaf, "lo_a");
  Mutex b(LockRank::kLeaf, "lo_b");
  {
    MutexLock outer(a);
    MutexLock inner(b);
    EXPECT_NE(report_.find("lock-order violation"), std::string::npos)
        << report_;
  }
}

TEST_F(LockOrderTest, FlushGateSharedSharedIsWaived) {
  // The one waived edge: shared+shared acquisitions of two *different*
  // flush-gate instances (the cross-region sync-full observer read).
  SharedMutex gate_a(LockRank::kFlushGate, "lo_gate_a");
  SharedMutex gate_b(LockRank::kFlushGate, "lo_gate_b");
  {
    ReaderMutexLock outer(gate_a);
    ReaderMutexLock inner(gate_b);
    EXPECT_TRUE(report_.empty()) << report_;
  }
  EXPECT_TRUE(report_.empty()) << report_;
}

TEST_F(LockOrderTest, FlushGateWriterPairStillViolates) {
  // The waiver is shared-mode only: an exclusive flush-gate acquisition
  // while holding another gate is a real deadlock risk.
  SharedMutex gate_a(LockRank::kFlushGate, "lo_gate_a");
  SharedMutex gate_b(LockRank::kFlushGate, "lo_gate_b");
  {
    ReaderMutexLock outer(gate_a);
    WriterMutexLock inner(gate_b);
    EXPECT_NE(report_.find("lock-order violation"), std::string::npos)
        << report_;
  }
}

TEST_F(LockOrderTest, UnrankedLocksAreInvisible) {
  Mutex ranked(LockRank::kAuqMu, "lo_ranked");
  Mutex unranked;
  {
    // unranked -> ranked -> unranked: no report, unranked never recorded.
    MutexLock a(unranked);
    MutexLock b(ranked);
    Mutex another_unranked;
    MutexLock c(another_unranked);
    EXPECT_TRUE(report_.empty()) << report_;
  }
}

TEST_F(LockOrderTest, NonLifoReleaseKeepsStackConsistent) {
  // ReaderMutexLock::Release drops the gate before inner locks unwind;
  // the validator's held stack must compact, not truncate.
  SharedMutex gate(LockRank::kFlushGate, "lo_gate");
  Mutex leaf(LockRank::kLeaf, "lo_leaf");
  {
    ReaderMutexLock outer(gate);
    MutexLock inner(leaf);
    outer.Release();
    // gate is gone from the held stack; acquiring a mid-rank lock is now
    // judged only against leaf (held, rank 90) -> violation expected.
    Mutex mid(LockRank::kWalMu, "lo_mid");
    MutexLock third(mid);
    EXPECT_NE(report_.find("lo_leaf"), std::string::npos) << report_;
  }
}

#else  // !DIFFINDEX_LOCK_ORDER_CHECKS

TEST(LockOrderTest, DisabledInThisBuild) {
  GTEST_SKIP() << "lock-order validation compiled out (release build "
                  "without DIFFINDEX_CHECK or TSan)";
}

#endif  // DIFFINDEX_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace diffindex
