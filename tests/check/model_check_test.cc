// Bounded model-checking sweep (DESIGN.md §12): drives the real scheme
// implementations through systematically explored interleavings and
// checks the invariant oracle at every terminal state. These are the
// ctests behind the CI `model_check` label; each exploration logs its
// exact distinct-schedule count and bounds.
//
// Meaningful only under DIFFINDEX_CHECK (the yield instrumentation and
// cooperative mutex hooks compile to nothing otherwise); plain builds
// skip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/model_workload.h"
#include "check/schedule.h"
#include "cluster/catalog.h"

namespace diffindex {
namespace check {
namespace {

#ifdef DIFFINDEX_CHECK

struct SweepConfig {
  const char* label;
  ModelOptions model;
  ExploreOptions explore;
};

ModelOptions BaseModel(IndexScheme scheme) {
  ModelOptions m;
  m.scheme = scheme;
  m.num_writers = 2;
  m.ops_per_writer = 2;
  m.same_row = true;
  m.drain_batch_size = 2;
  return m;
}

ExploreOptions BoundedExplore() {
  ExploreOptions e;
  e.max_schedules = 1200;
  e.preemption_bound = 2;
  e.stop_on_violation = true;
  return e;
}

// The CI acceptance sweep: 2 writers x 2 ops (= 4 ops) per run,
// preemption bound 2, across all four schemes, plus flush / group-commit
// variants on the schemes whose extra seams they exercise. Aggregate
// distinct-schedule count must clear 1,000.
TEST(ModelCheckTest, BoundedSweepAllSchemes) {
  std::vector<SweepConfig> sweep;
  for (IndexScheme scheme :
       {IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
        IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession}) {
    SweepConfig base;
    base.label = IndexSchemeName(scheme);
    base.model = BaseModel(scheme);
    base.explore = BoundedExplore();
    sweep.push_back(base);
  }
  {
    // Flush after the writes: the pause-&-drain gate plus the
    // drained-depth oracle point.
    SweepConfig flush;
    flush.label = "async-simple+flush";
    flush.model = BaseModel(IndexScheme::kAsyncSimple);
    flush.model.flush_after_writes = true;
    flush.explore = BoundedExplore();
    sweep.push_back(flush);
  }
  {
    // WAL group commit: the ticket / leader-election path under
    // wal_sync_mu_.
    SweepConfig gc;
    gc.label = "sync-full+group-commit";
    gc.model = BaseModel(IndexScheme::kSyncFull);
    gc.model.group_commit = true;
    gc.explore = BoundedExplore();
    sweep.push_back(gc);
  }
  {
    // Paged scatter-gather scan with batched read-repair racing the
    // writers: the verify-then-clean window of Algorithm 2 under
    // concurrent overwrites (CHECK_YIELD "query.repair").
    SweepConfig scan;
    scan.label = "sync-insert+scan-reader";
    scan.model = BaseModel(IndexScheme::kSyncInsert);
    scan.model.ops_per_writer = 1;
    scan.model.scan_reader = true;
    scan.explore = BoundedExplore();
    sweep.push_back(scan);
  }

  long long total = 0;
  for (const SweepConfig& config : sweep) {
    ExploreResult result = Explore(config.explore, ModelRunner(config.model));
    total += result.schedules_run;
    std::fprintf(stderr,
                 "[model-check] %-24s schedules=%d (cap %d%s) "
                 "preemption-bound=%d max-depth=%d states=%zu\n",
                 config.label, result.schedules_run,
                 config.explore.max_schedules,
                 result.hit_schedule_cap ? ", hit" : "",
                 config.explore.preemption_bound, result.max_depth,
                 result.fingerprints.size());
    EXPECT_EQ(result.violations, 0)
        << config.label << ": " << result.first_violation
        << "\n  replay with: "
        << FormatSchedule(
               ToSchedule(config.model, result.violating_choices));
    EXPECT_EQ(result.divergences, 0) << config.label;
    EXPECT_GT(result.schedules_run, 0) << config.label;
  }
  std::fprintf(stderr, "[model-check] total distinct schedules: %lld\n",
               total);
  EXPECT_GE(total, 1000) << "CI acceptance floor: >=1000 distinct "
                            "schedules across the sweep";
}

// Disjoint rows enable the writers' inline consistency checks: causal
// reads for sync-full, read-your-writes for async-session.
TEST(ModelCheckTest, InlineConsistencyChecksHold) {
  for (IndexScheme scheme :
       {IndexScheme::kSyncFull, IndexScheme::kAsyncSession}) {
    ModelOptions model = BaseModel(scheme);
    model.same_row = false;
    model.ops_per_writer = 1;
    ExploreOptions explore = BoundedExplore();
    explore.max_schedules = 300;
    ExploreResult result = Explore(explore, ModelRunner(model));
    std::fprintf(stderr, "[model-check] %s disjoint rows: schedules=%d\n",
                 IndexSchemeName(scheme), result.schedules_run);
    EXPECT_EQ(result.violations, 0)
        << IndexSchemeName(scheme) << ": " << result.first_violation;
    EXPECT_GT(result.schedules_run, 0);
  }
}

// Same model + same forced choices = the same interleaving, bit for bit:
// the property every replayed schedule string depends on.
TEST(ModelCheckTest, ReplayIsDeterministic) {
  ModelOptions model = BaseModel(IndexScheme::kAsyncSimple);
  RunOutcome first = RunModel(model, {});
  ASSERT_FALSE(first.decisions.empty())
      << "default run recorded no decisions — is the instrumentation on?";

  std::vector<int> choices;
  choices.reserve(first.decisions.size());
  for (const DecisionRecord& d : first.decisions) choices.push_back(d.chosen);

  RunOutcome replay = RunModel(model, choices);
  EXPECT_FALSE(replay.diverged);
  EXPECT_EQ(replay.fingerprint, first.fingerprint);
  ASSERT_EQ(replay.decisions.size(), first.decisions.size());
  for (size_t i = 0; i < first.decisions.size(); ++i) {
    EXPECT_EQ(replay.decisions[i].chosen, first.decisions[i].chosen)
        << "decision " << i;
  }
  EXPECT_TRUE(first.violation.empty()) << first.violation;
  EXPECT_TRUE(replay.violation.empty()) << replay.violation;
}

// The preemption bound only prunes; it must never manufacture a
// violation, and bound 0 (pure non-preemptive) explores a strict subset.
TEST(ModelCheckTest, PreemptionBoundPrunesMonotonically) {
  ModelOptions model = BaseModel(IndexScheme::kAsyncSimple);
  model.ops_per_writer = 1;

  ExploreOptions unbounded;
  unbounded.max_schedules = 2000;
  unbounded.preemption_bound = -1;
  unbounded.stop_on_violation = false;
  ExploreResult full = Explore(unbounded, ModelRunner(model));

  ExploreOptions bounded = unbounded;
  bounded.preemption_bound = 0;
  ExploreResult none = Explore(bounded, ModelRunner(model));

  std::fprintf(stderr,
               "[model-check] preemption bound: unbounded=%d bound0=%d\n",
               full.schedules_run, none.schedules_run);
  EXPECT_EQ(full.violations, 0) << full.first_violation;
  EXPECT_EQ(none.violations, 0) << none.first_violation;
  EXPECT_LE(none.schedules_run, full.schedules_run);
  EXPECT_GT(none.schedules_run, 0);
}

#else  // !DIFFINDEX_CHECK

TEST(ModelCheckTest, RequiresCheckBuild) {
  GTEST_SKIP() << "model checker needs -DDIFFINDEX_CHECK=ON (yield "
                  "instrumentation compiled out)";
}

#endif  // DIFFINDEX_CHECK

}  // namespace
}  // namespace check
}  // namespace diffindex
