// StalenessProbe tests: the live Figure-11 measurement. Under sync-full
// the sentinel is visible through the index as soon as the put returns,
// so the probe reads ~zero staleness; under async-simple with the APS
// artificially throttled, the probe must observe the queueing delay. Also
// covers the background prober thread and the registry artifacts.

#include "obs/staleness_probe.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"

namespace diffindex {
namespace obs {
namespace {

// Throttle margins: the APS is delayed by kApsDelay per task, and the
// assertions use kMargin on either side so scheduler jitter cannot flip
// the comparison.
constexpr int kApsDelayMs = 150;
constexpr uint64_t kMarginMicros = 75 * 1000;

class StalenessProbeTest : public ::testing::Test {
 protected:
  void MakeCluster(IndexScheme scheme, int process_delay_ms) {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 2;
    options.auq.process_delay_ms = process_delay_ms;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    ASSERT_TRUE(cluster_->master()->CreateTable("probed").ok());
    IndexDescriptor index;
    index.name = "by_color";
    index.column = "color";
    index.scheme = scheme;
    ASSERT_TRUE(cluster_->master()->CreateIndex("probed", index).ok());
    client_ = cluster_->NewDiffIndexClient();
  }

  StalenessProbeOptions ProbeOptions(int period_ms = 0) {
    StalenessProbeOptions options;
    options.table = "probed";
    options.index_name = "by_color";
    options.column = "color";
    options.period_ms = period_ms;
    return options;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(StalenessProbeTest, SyncFullReadsNearZeroStaleness) {
  MakeCluster(IndexScheme::kSyncFull, /*process_delay_ms=*/0);
  StalenessProbe probe(client_.get(), cluster_->metrics(), ProbeOptions());
  uint64_t staleness = 0;
  ASSERT_TRUE(probe.ProbeOnce(&staleness).ok());
  // Synchronous maintenance: the index already shows the sentinel on the
  // first read after the put (no injected latency in this cluster).
  EXPECT_LT(staleness, kMarginMicros);
  EXPECT_EQ(probe.cycles(), 1u);
  EXPECT_EQ(
      cluster_->metrics()->GetHistogram("probe.staleness_micros.sync-full")
          ->Count(),
      1u);
}

TEST_F(StalenessProbeTest, ThrottledAsyncReadsTheQueueingDelay) {
  MakeCluster(IndexScheme::kAsyncSimple, kApsDelayMs);
  StalenessProbe probe(client_.get(), cluster_->metrics(), ProbeOptions());
  uint64_t staleness = 0;
  ASSERT_TRUE(probe.ProbeOnce(&staleness).ok());
  // The APS sat on the task for kApsDelayMs before applying it; the probe
  // cannot have seen the sentinel earlier.
  EXPECT_GE(staleness, static_cast<uint64_t>(kApsDelayMs) * 1000 -
                           kMarginMicros);

  MetricsSnapshot snapshot = cluster_->metrics()->Snapshot();
  EXPECT_EQ(snapshot.counters.at("probe.cycles"), 1u);
  const HistogramSnapshot& tagged =
      snapshot.histograms.at("probe.staleness_micros.async-simple");
  EXPECT_EQ(tagged.count, 1u);
  EXPECT_GE(static_cast<uint64_t>(
                snapshot.gauges.at("probe.last_staleness_micros")),
            static_cast<uint64_t>(kApsDelayMs) * 1000 - kMarginMicros);
}

TEST_F(StalenessProbeTest, SchemesAreOrderedByProbeUnderThrottle) {
  // The differentiated-index pitch, measured from outside: with the same
  // APS throttle, sync-full staleness stays ~zero while async-simple pays
  // the queueing delay.
  MakeCluster(IndexScheme::kAsyncSimple, kApsDelayMs);
  {
    StalenessProbe probe(client_.get(), cluster_->metrics(), ProbeOptions());
    uint64_t async_staleness = 0;
    ASSERT_TRUE(probe.ProbeOnce(&async_staleness).ok());

    std::unique_ptr<Cluster> sync_cluster;
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 2;
    options.auq.process_delay_ms = kApsDelayMs;  // same throttle
    ASSERT_TRUE(Cluster::Create(options, &sync_cluster).ok());
    ASSERT_TRUE(sync_cluster->master()->CreateTable("probed").ok());
    IndexDescriptor index;
    index.name = "by_color";
    index.column = "color";
    index.scheme = IndexScheme::kSyncFull;
    ASSERT_TRUE(sync_cluster->master()->CreateIndex("probed", index).ok());
    auto sync_client = sync_cluster->NewDiffIndexClient();
    StalenessProbe sync_probe(sync_client.get(), sync_cluster->metrics(),
                              ProbeOptions());
    uint64_t sync_staleness = 0;
    ASSERT_TRUE(sync_probe.ProbeOnce(&sync_staleness).ok());

    // Sync maintenance never touches the throttled queue.
    EXPECT_LT(sync_staleness + kMarginMicros, async_staleness);
  }
}

TEST_F(StalenessProbeTest, BackgroundProberSamplesContinuously) {
  MakeCluster(IndexScheme::kAsyncSimple, /*process_delay_ms=*/5);
  StalenessProbe probe(client_.get(), cluster_->metrics(),
                       ProbeOptions(/*period_ms=*/10));
  ASSERT_TRUE(probe.Start().ok());
  // Second Start on a running probe is rejected rather than leaking a
  // thread.
  EXPECT_FALSE(probe.Start().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (probe.cycles() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  probe.Stop();
  probe.Stop();  // idempotent
  EXPECT_GE(probe.cycles(), 3u);
  const uint64_t cycles_at_stop = probe.cycles();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(probe.cycles(), cycles_at_stop);  // prober really stopped
  EXPECT_GE(cluster_->metrics()
                ->GetHistogram("probe.staleness_micros")
                ->Count(),
            3u);
}

TEST_F(StalenessProbeTest, ProbeErrorsAreCounted) {
  MakeCluster(IndexScheme::kSyncFull, 0);
  StalenessProbeOptions options = ProbeOptions();
  options.table = "no_such_table";
  options.index_name = "no_such_index";
  StalenessProbe probe(client_.get(), cluster_->metrics(), options);
  uint64_t staleness = 0;
  EXPECT_FALSE(probe.ProbeOnce(&staleness).ok());
  EXPECT_EQ(probe.cycles(), 0u);
  EXPECT_EQ(cluster_->metrics()->GetCounter("probe.errors")->value(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace diffindex
