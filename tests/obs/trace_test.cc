// Request tracing tests: context identity and encode/decode, the ambient
// thread-local scope, SpanTimer recording, the TraceCollector ring — and
// the property the subsystem exists for: a context installed on the client
// side survives the Fabric's wire framing, so spans opened inside an RPC
// handler (and further down, in the APS worker) chain to the caller's
// trace. The final tests follow one DiffIndexClient::Put end-to-end
// through a live cluster.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "net/fabric.h"

namespace diffindex {
namespace obs {
namespace {

TEST(TraceContextTest, RootAndChildIdentity) {
  TraceContext root = TraceContext::NewRoot("put", "sync-full");
  EXPECT_TRUE(root.active());
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_NE(root.span_id, 0u);
  EXPECT_EQ(root.parent_span_id, 0u);

  TraceContext child = root.Child();
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_EQ(child.op, "put");
  EXPECT_EQ(child.scheme, "sync-full");

  TraceContext other = TraceContext::NewRoot("get", "");
  EXPECT_NE(other.trace_id, root.trace_id);

  TraceContext inactive;
  EXPECT_FALSE(inactive.active());
}

TEST(TraceContextTest, EncodeDecodeRoundTrip) {
  TraceContext ctx = TraceContext::NewRoot("get_by_index", "async-simple");
  ctx.parent_span_id = 99;
  std::string wire;
  ctx.EncodeTo(&wire);

  Slice in(wire);
  TraceContext decoded;
  ASSERT_TRUE(TraceContext::DecodeFrom(&in, &decoded));
  EXPECT_TRUE(in.empty());  // consumed exactly its own bytes
  EXPECT_EQ(decoded.trace_id, ctx.trace_id);
  EXPECT_EQ(decoded.span_id, ctx.span_id);
  EXPECT_EQ(decoded.parent_span_id, 99u);
  EXPECT_EQ(decoded.op, "get_by_index");
  EXPECT_EQ(decoded.scheme, "async-simple");

  // Inactive contexts round-trip too (the not-traced wire frame).
  std::string empty_wire;
  TraceContext().EncodeTo(&empty_wire);
  Slice empty_in(empty_wire);
  TraceContext empty_decoded;
  ASSERT_TRUE(TraceContext::DecodeFrom(&empty_in, &empty_decoded));
  EXPECT_FALSE(empty_decoded.active());

  // A context prefix followed by a message body: decode stops at the
  // boundary and leaves the body untouched.
  std::string framed;
  ctx.EncodeTo(&framed);
  framed += "message-body";
  Slice framed_in(framed);
  TraceContext framed_decoded;
  ASSERT_TRUE(TraceContext::DecodeFrom(&framed_in, &framed_decoded));
  EXPECT_EQ(framed_in.ToString(), "message-body");
}

TEST(TraceContextTest, DecodeRejectsTruncatedInput) {
  TraceContext ctx = TraceContext::NewRoot("put", "sync-insert");
  std::string wire;
  ctx.EncodeTo(&wire);
  for (size_t cut = 0; cut < wire.size(); cut++) {
    std::string truncated = wire.substr(0, cut);
    Slice in(truncated);
    TraceContext decoded;
    EXPECT_FALSE(TraceContext::DecodeFrom(&in, &decoded))
        << "decoded from " << cut << "/" << wire.size() << " bytes";
  }
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().active());
  TraceContext root = TraceContext::NewRoot("put", "");
  {
    ScopedTraceContext outer(root);
    EXPECT_EQ(CurrentTraceContext().trace_id, root.trace_id);
    {
      ScopedTraceContext inner(root.Child());
      EXPECT_EQ(CurrentTraceContext().trace_id, root.trace_id);
      EXPECT_EQ(CurrentTraceContext().parent_span_id, root.span_id);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, root.span_id);  // restored
  }
  EXPECT_FALSE(CurrentTraceContext().active());

  // The ambient context is per-thread, not global.
  ScopedTraceContext here(TraceContext::NewRoot("put", ""));
  std::thread other(
      [] { EXPECT_FALSE(CurrentTraceContext().active()); });
  other.join();
}

TEST(SpanTimerTest, RecordsHistogramAndCollectorSpan) {
  MetricsRegistry metrics;
  TraceCollector collector;
  TraceContext root = TraceContext::NewRoot("put", "async-simple");
  {
    ScopedTraceContext scope(root);
    SpanTimer span(&metrics, &collector, "client.put");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(span.ElapsedMicros(), 1000u);
  }
  // Scheme-tagged histogram, one sample of the measured duration.
  Histogram* h = metrics.GetHistogram("span.client.put.async-simple");
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Min(), 1000u);

  ASSERT_EQ(collector.size(), 1u);
  const SpanRecord span = collector.AllSpans()[0];
  EXPECT_EQ(span.trace_id, root.trace_id);
  EXPECT_EQ(span.span_id, root.span_id);
  EXPECT_EQ(span.name, "client.put");
  EXPECT_EQ(span.scheme, "async-simple");
  EXPECT_GE(span.duration_micros, 1000u);
}

TEST(SpanTimerTest, NoAmbientContextStillFeedsMetricsButNotCollector) {
  MetricsRegistry metrics;
  TraceCollector collector;
  { SpanTimer span(&metrics, &collector, "rs.put"); }
  EXPECT_EQ(metrics.GetHistogram("span.rs.put")->Count(), 1u);
  EXPECT_EQ(collector.size(), 0u);  // untraced work leaves no span
  // Null sinks are tolerated everywhere (the "observability off" mode).
  { SpanTimer span(nullptr, nullptr, "rs.put"); }
}

TEST(TraceCollectorTest, BoundedRingKeepsNewestAndFiltersByTrace) {
  TraceCollector collector(/*capacity=*/4);
  TraceContext a = TraceContext::NewRoot("put", "");
  TraceContext b = TraceContext::NewRoot("get", "");
  for (uint64_t i = 0; i < 6; i++) {
    SpanRecord span;
    span.trace_id = i < 3 ? a.trace_id : b.trace_id;
    span.span_id = 100 + i;
    span.start_micros = 1000 + i;
    span.name = "s" + std::to_string(i);
    collector.Record(span);
  }
  EXPECT_EQ(collector.size(), 4u);  // two oldest evicted
  EXPECT_EQ(collector.Trace(a.trace_id).size(), 1u);  // only span 2 left
  const auto b_spans = collector.Trace(b.trace_id);
  ASSERT_EQ(b_spans.size(), 3u);
  EXPECT_LT(b_spans[0].start_micros, b_spans[2].start_micros);  // ordered
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
}

// The wire-framing property, in isolation: a handler on the far side of a
// Fabric::Call sees the caller's trace (as a child context decoded from
// the frame bytes), and the RPC itself is measured.
TEST(FabricTraceTest, ContextSurvivesWireFraming) {
  Fabric fabric(/*latency=*/nullptr);
  MetricsRegistry metrics;
  TraceCollector collector;
  fabric.SetObservers(&metrics, &collector);

  TraceContext seen;
  std::string seen_body;
  fabric.RegisterNode(1, [&](MsgType, Slice body, std::string* response) {
    seen = CurrentTraceContext();
    seen_body = body.ToString();
    *response = "pong";
    return Status::OK();
  });

  TraceContext root = TraceContext::NewRoot("put", "sync-full");
  std::string response;
  {
    ScopedTraceContext scope(root);
    ASSERT_TRUE(
        fabric.Call(kClientNodeBase, 1, MsgType::kPut, "ping", &response)
            .ok());
  }
  EXPECT_EQ(response, "pong");
  EXPECT_EQ(seen_body, "ping");  // framing added nothing to the body
  // The handler ran under a child of the caller's context.
  EXPECT_EQ(seen.trace_id, root.trace_id);
  EXPECT_EQ(seen.parent_span_id, root.span_id);
  EXPECT_NE(seen.span_id, root.span_id);
  EXPECT_EQ(seen.op, "put");
  EXPECT_EQ(seen.scheme, "sync-full");

  EXPECT_EQ(metrics.GetCounter("rpc.put.calls")->value(), 1u);
  EXPECT_EQ(metrics.GetHistogram("span.rpc.put.sync-full")->Count(), 1u);
  const auto spans = collector.Trace(root.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "rpc.put");

  // Untraced calls stay untraced: no ambient context, no span record.
  ASSERT_TRUE(
      fabric.Call(kClientNodeBase, 1, MsgType::kPut, "ping", &response)
          .ok());
  EXPECT_FALSE(seen.active());
  EXPECT_EQ(collector.size(), 1u);
}

// End-to-end: one client Put through a real cluster produces a single
// trace whose spans cover the client API call, the RPC hop and the
// region-server execution — and under an async scheme, the APS task.
class ClusterTraceTest : public ::testing::Test {
 protected:
  void MakeCluster(IndexScheme scheme) {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 2;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    IndexDescriptor index;
    index.name = "by_color";
    index.column = "color";
    index.scheme = scheme;
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    client_ = cluster_->NewDiffIndexClient();
  }

  void WaitQueuesDrained() {
    for (int i = 0; i < 5000; i++) {
      bool idle = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) idle = false;
      }
      if (idle) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "APS queues never drained";
  }

  // The trace id of the only client.put span in the collector.
  uint64_t PutTraceId() {
    uint64_t trace_id = 0;
    for (const SpanRecord& span : cluster_->traces()->AllSpans()) {
      if (span.name == "client.put") {
        EXPECT_EQ(trace_id, 0u) << "more than one client.put span";
        trace_id = span.trace_id;
      }
    }
    EXPECT_NE(trace_id, 0u) << "no client.put span collected";
    return trace_id;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(ClusterTraceTest, PutSpansShareOneTraceSyncFull) {
  MakeCluster(IndexScheme::kSyncFull);
  cluster_->traces()->Clear();  // drop table/index-creation noise
  ASSERT_TRUE(
      client_->Put("t", "row1", {Cell{"color", "blue", false}}).ok());

  const uint64_t trace_id = PutTraceId();
  std::set<std::string> names;
  for (const SpanRecord& span : cluster_->traces()->Trace(trace_id)) {
    names.insert(span.name);
    EXPECT_EQ(span.scheme, "sync-full") << span.name;
  }
  // One trace covers the whole write path: client API -> RPC hop ->
  // region-server execution -> synchronous index maintenance.
  for (const char* expected :
       {"client.put", "rpc.put", "rs.put", "rs.index_sync"}) {
    EXPECT_TRUE(names.count(expected)) << expected << " not in trace";
  }
  // Nothing else in the collector borrowed this trace's ids.
  for (const SpanRecord& span : cluster_->traces()->AllSpans()) {
    if (span.trace_id != trace_id) {
      EXPECT_NE(span.name, "client.put");
    }
  }
}

TEST_F(ClusterTraceTest, AsyncPutTraceExtendsIntoApsWorker) {
  MakeCluster(IndexScheme::kAsyncSimple);
  cluster_->traces()->Clear();
  ASSERT_TRUE(
      client_->Put("t", "row1", {Cell{"color", "blue", false}}).ok());
  WaitQueuesDrained();

  const uint64_t trace_id = PutTraceId();
  std::set<std::string> names;
  for (const SpanRecord& span : cluster_->traces()->Trace(trace_id)) {
    names.insert(span.name);
  }
  // The handoff through the AUQ preserved the trace: the background APS
  // task is part of the same trace as the foreground put.
  for (const char* expected : {"client.put", "rpc.put", "rs.put", "aps.task"}) {
    EXPECT_TRUE(names.count(expected)) << expected << " not in trace";
  }
  EXPECT_FALSE(names.count("rs.index_sync"));  // async: no foreground fixup
  EXPECT_NE(cluster_->traces()->Dump(trace_id).find("aps.task"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace diffindex
