// Unit tests of the MetricsRegistry: find-or-create instrument identity,
// counter/gauge/histogram semantics, snapshot + delta correctness (exact
// histogram deltas via bucket subtraction), and the text/JSON exporters —
// including that the JSON is syntactically valid and carries the stable
// metric names downstream tooling keys on.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <thread>
#include <vector>

namespace diffindex {
namespace obs {
namespace {

// ---- A minimal recursive-descent JSON validator (tests only). ----
// Accepts exactly the RFC 8259 value grammar; no extensions. Enough to
// prove the exporter's output would load in any real parser.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    size_t i = 0;
    if (!Value(&i)) return false;
    SkipWs(&i);
    return i == s_.size();
  }

 private:
  void SkipWs(size_t* i) {
    while (*i < s_.size() && std::isspace(static_cast<unsigned char>(s_[*i]))) {
      (*i)++;
    }
  }
  bool Literal(size_t* i, const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(*i, n, lit) != 0) return false;
    *i += n;
    return true;
  }
  bool String(size_t* i) {
    if (*i >= s_.size() || s_[*i] != '"') return false;
    (*i)++;
    while (*i < s_.size() && s_[*i] != '"') {
      if (s_[*i] == '\\') {
        (*i)++;
        if (*i >= s_.size()) return false;
        const char e = s_[*i];
        if (e == 'u') {
          for (int k = 0; k < 4; k++) {
            (*i)++;
            if (*i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[*i]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      (*i)++;
    }
    if (*i >= s_.size()) return false;
    (*i)++;  // closing quote
    return true;
  }
  bool Number(size_t* i) {
    const size_t start = *i;
    if (*i < s_.size() && s_[*i] == '-') (*i)++;
    size_t digits = 0;
    while (*i < s_.size() && std::isdigit(static_cast<unsigned char>(s_[*i]))) {
      (*i)++, digits++;
    }
    if (digits == 0) return false;
    if (*i < s_.size() && s_[*i] == '.') {
      (*i)++;
      while (*i < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[*i]))) {
        (*i)++;
      }
    }
    if (*i < s_.size() && (s_[*i] == 'e' || s_[*i] == 'E')) {
      (*i)++;
      if (*i < s_.size() && (s_[*i] == '+' || s_[*i] == '-')) (*i)++;
      size_t exp_digits = 0;
      while (*i < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[*i]))) {
        (*i)++, exp_digits++;
      }
      if (exp_digits == 0) return false;
    }
    return *i > start;
  }
  bool Object(size_t* i) {
    (*i)++;  // '{'
    SkipWs(i);
    if (*i < s_.size() && s_[*i] == '}') return (*i)++, true;
    for (;;) {
      SkipWs(i);
      if (!String(i)) return false;
      SkipWs(i);
      if (*i >= s_.size() || s_[*i] != ':') return false;
      (*i)++;
      if (!Value(i)) return false;
      SkipWs(i);
      if (*i >= s_.size()) return false;
      if (s_[*i] == '}') return (*i)++, true;
      if (s_[*i] != ',') return false;
      (*i)++;
    }
  }
  bool Array(size_t* i) {
    (*i)++;  // '['
    SkipWs(i);
    if (*i < s_.size() && s_[*i] == ']') return (*i)++, true;
    for (;;) {
      if (!Value(i)) return false;
      SkipWs(i);
      if (*i >= s_.size()) return false;
      if (s_[*i] == ']') return (*i)++, true;
      if (s_[*i] != ',') return false;
      (*i)++;
    }
  }
  bool Value(size_t* i) {
    SkipWs(i);
    if (*i >= s_.size()) return false;
    switch (s_[*i]) {
      case '{':
        return Object(i);
      case '[':
        return Array(i);
      case '"':
        return String(i);
      case 't':
        return Literal(i, "true");
      case 'f':
        return Literal(i, "false");
      case 'n':
        return Literal(i, "null");
      default:
        return Number(i);
    }
  }

  const std::string& s_;
};

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("x.count");
  Counter* c2 = registry.GetCounter("x.count");
  EXPECT_EQ(c1, c2);  // same instrument, not a new one
  EXPECT_NE(c1, registry.GetCounter("y.count"));

  Gauge* g1 = registry.GetGauge("x.level");
  EXPECT_EQ(g1, registry.GetGauge("x.level"));

  Histogram* h1 = registry.GetHistogram("x.micros");
  EXPECT_EQ(h1, registry.GetHistogram("x.micros"));

  // Same name, different kinds: three distinct instruments.
  Counter* c = registry.GetCounter("same");
  Gauge* g = registry.GetGauge("same");
  Histogram* h = registry.GetHistogram("same");
  EXPECT_NE(static_cast<void*>(c), static_cast<void*>(g));
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(h));
}

TEST(MetricsRegistryTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);

  Gauge* g = registry.GetGauge("depth");
  g->Set(10);
  g->Add(5);
  g->Sub(20);
  EXPECT_EQ(g->value(), -5);  // gauges are levels and may go negative
}

TEST(MetricsRegistryTest, ConcurrentFindOrCreateIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kAddsPerThread; i++) {
        registry.GetCounter("contended")->Add();
        registry.GetHistogram("contended_micros")->Add(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("contended")->value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.GetHistogram("contended_micros")->Count(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("a.ops")->Add(3);
  registry.GetGauge("a.depth")->Set(7);
  registry.GetHistogram("a.micros")->Add(100);
  registry.GetHistogram("a.micros")->Add(300);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("a.ops"), 3u);
  EXPECT_EQ(snapshot.gauges.at("a.depth"), 7);
  const HistogramSnapshot& h = snapshot.histograms.at("a.micros");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 400u);
  EXPECT_EQ(h.min, 100u);
  EXPECT_EQ(h.max, 300u);
  EXPECT_DOUBLE_EQ(h.Average(), 200.0);

  // Snapshots are point-in-time copies: later activity must not leak in.
  registry.GetCounter("a.ops")->Add(100);
  EXPECT_EQ(snapshot.counters.at("a.ops"), 3u);
}

TEST(MetricsRegistryTest, DeltaIsolatesOnePhase) {
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("ops");
  Histogram* micros = registry.GetHistogram("micros");

  // Phase 1: fast ops.
  for (int i = 0; i < 100; i++) {
    ops->Add();
    micros->Add(100);
  }
  MetricsSnapshot before = registry.Snapshot();

  // Phase 2: slow ops — what the delta should isolate.
  for (int i = 0; i < 50; i++) {
    ops->Add();
    micros->Add(10000);
  }
  MetricsSnapshot after = registry.Snapshot();

  MetricsSnapshot delta = after.Delta(before);
  EXPECT_EQ(delta.counters.at("ops"), 50u);
  const HistogramSnapshot& h = delta.histograms.at("micros");
  EXPECT_EQ(h.count, 50u);
  EXPECT_EQ(h.sum, 50u * 10000u);
  // Bucket counts subtract exactly, so the delta's percentiles reflect
  // only phase 2: every sample was 10000us, so even p1 must be far above
  // phase 1's 100us samples (which dominate the combined histogram).
  EXPECT_GT(h.Percentile(1), 5000u);
  EXPECT_LE(h.Percentile(99), h.max);
  // An instrument created after `before` appears whole in the delta.
  registry.GetCounter("late")->Add(9);
  MetricsSnapshot delta2 = registry.Snapshot().Delta(before);
  EXPECT_EQ(delta2.counters.at("late"), 9u);
}

TEST(MetricsRegistryTest, TextExporterListsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("rpc.put.calls")->Add(5);
  registry.GetGauge("auq.depth")->Set(2);
  registry.GetHistogram("span.client.put")->Add(123);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("rpc.put.calls = 5"), std::string::npos);
  EXPECT_NE(text.find("auq.depth = 2"), std::string::npos);
  EXPECT_NE(text.find("span.client.put: count=1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExporterIsParseableWithStableNames) {
  MetricsRegistry registry;
  // The names the benches/tests key on — if these drift, downstream
  // tooling silently reads zeros, so pin them here.
  registry.GetCounter("rpc.put.calls")->Add(7);
  registry.GetCounter("auq.enqueued")->Add(3);
  registry.GetGauge("auq.depth")->Set(1);
  registry.GetHistogram("auq.staleness_micros")->Add(1500);
  registry.GetHistogram("probe.staleness_micros")->Add(2500);
  registry.GetHistogram("span.client.put.sync-full")->Add(90);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  for (const char* name :
       {"\"rpc.put.calls\":7", "\"auq.enqueued\":3", "\"auq.depth\":1",
        "\"auq.staleness_micros\"", "\"probe.staleness_micros\"",
        "\"span.client.put.sync-full\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << " missing";
  }
}

TEST(MetricsRegistryTest, JsonEscapesHostileNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\ncontrol\x01" "chars")->Add(1);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"name\\\\with\\ncontrol\\u0001chars"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryExportsValidJson) {
  MetricsRegistry registry;
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, WriteSnapshotJsonRoundTripsThroughDisk) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(4);
  const std::string path =
      ::testing::TempDir() + "/diffindex_metrics_test.json";
  ASSERT_TRUE(WriteSnapshotJson(registry.Snapshot(), path));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = fread(buf, 1, sizeof(buf), f);
  fclose(f);
  remove(path.c_str());
  const std::string loaded(buf, n);
  EXPECT_TRUE(JsonValidator(loaded).Valid()) << loaded;
  EXPECT_NE(loaded.find("\"c\":4"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace diffindex
