// Tests for Slice, Status, CRC32C, bloom filter, LRU cache, histogram,
// zipfian generator, thread pool, and the timestamp oracle.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "util/bloom.h"
#include "util/cache.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timestamp_oracle.h"
#include "util/zipfian.h"

namespace diffindex {
namespace {

// ---- Slice ----

TEST(SliceTest, CompareOrdersBytewise) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // A proper prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("hello").starts_with(Slice("he")));
  EXPECT_TRUE(Slice("hello").starts_with(Slice("")));
  EXPECT_FALSE(Slice("hello").starts_with(Slice("hex")));
  EXPECT_FALSE(Slice("he").starts_with(Slice("hello")));
}

TEST(SliceTest, EmbeddedNulBytes) {
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

// ---- Status ----

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("key xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key xyz");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad block");
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    DIFFINDEX_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

// ---- CRC32C ----

TEST(Crc32cTest, KnownValues) {
  // Standard check value: crc32c("123456789") == 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is a wal record";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  const uint32_t partial = crc32c::Extend(
      crc32c::Value(data.data(), 10), data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, partial);
}

TEST(Crc32cTest, MaskRoundTripAndDiffers) {
  const uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

// ---- Bloom filter ----

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; i++) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys, &filter);
  for (const auto& k : key_storage) {
    EXPECT_TRUE(policy.KeyMayMatch(Slice(k), Slice(filter))) << k;
  }
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_storage.push_back("present" + std::to_string(i));
  }
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys, &filter);

  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (policy.KeyMayMatch(Slice("absent" + std::to_string(i)),
                           Slice(filter))) {
      false_positives++;
    }
  }
  // 10 bits/key should be ~1%; allow generous slack.
  EXPECT_LT(false_positives, probes / 20);
}

TEST(BloomTest, EmptyFilterMatchesNothing) {
  BloomFilterPolicy policy(10);
  std::string filter;
  policy.CreateFilter({}, &filter);
  EXPECT_FALSE(policy.KeyMayMatch(Slice("anything"), Slice(filter)));
}

// ---- LRU cache ----

TEST(LruCacheTest, InsertLookup) {
  LruCache cache(1024);
  cache.Insert("a", std::make_shared<std::string>("va"), 2);
  auto v = cache.Lookup("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "va");
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(10);
  cache.Insert("a", std::make_shared<std::string>("1"), 4);
  cache.Insert("b", std::make_shared<std::string>("2"), 4);
  // Touch "a" so "b" is the LRU victim.
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("c", std::make_shared<std::string>("3"), 4);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(LruCacheTest, ReplaceUpdatesCharge) {
  LruCache cache(100);
  cache.Insert("a", std::make_shared<std::string>("old"), 60);
  EXPECT_EQ(cache.usage(), 60u);
  cache.Insert("a", std::make_shared<std::string>("new"), 10);
  EXPECT_EQ(cache.usage(), 10u);
  EXPECT_EQ(*cache.Lookup("a"), "new");
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(100);
  cache.Insert("a", std::make_shared<std::string>("v"), 5);
  cache.Erase("a");
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCacheTest, ValueSurvivesEviction) {
  LruCache cache(4);
  auto held = std::make_shared<std::string>("pinned");
  cache.Insert("a", held, 4);
  cache.Insert("b", std::make_shared<std::string>("evictor"), 4);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*held, "pinned");  // shared_ptr keeps the block alive
}

// ---- Histogram ----

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.Add(v);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Average(), 50.5);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_GE(h.Percentile(50), 45u);
  EXPECT_LE(h.Percentile(50), 70u);
  EXPECT_GE(h.Percentile(99), 90u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(HistogramTest, ConcurrentAdds) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; i++) h.Add(100);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 80000u);
  EXPECT_DOUBLE_EQ(h.Average(), 100.0);
}

// ---- Zipfian ----

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator gen(1000, 1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsSkewedTowardSmallItems) {
  ZipfianGenerator gen(10000, 7);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; i++) counts[gen.Next()]++;
  // Item 0 should be drawn far more often than uniform (n / 10000 = 10).
  EXPECT_GT(counts[0], 1000);
  // And more often than item 100.
  EXPECT_GT(counts[0], counts[100]);
}

TEST(ZipfianTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfianGenerator gen(10000, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[gen.Next()]++;
  // The hottest key should not be item 0 specifically (scrambling moved
  // it), but some key must still be very hot.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 1000);
}

TEST(ZipfianTest, DeterministicGivenSeed) {
  ZipfianGenerator a(1000, 0.99, 42), b(1000, 0.99, 42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

// ---- ThreadPool ----

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Submit([&counter] { counter++; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; i++) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done++;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

// ---- TimestampOracle ----

TEST(TimestampOracleTest, StrictlyIncreasing) {
  TimestampOracle oracle;
  Timestamp prev = 0;
  for (int i = 0; i < 10000; i++) {
    Timestamp t = oracle.Next();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TimestampOracleTest, UniqueUnderConcurrency) {
  TimestampOracle oracle;
  constexpr int kThreads = 8, kPerThread = 5000;
  std::vector<std::vector<Timestamp>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&oracle, &results, t] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; i++) {
        results[t].push_back(oracle.Next());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : results) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

// ---- Random ----

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

}  // namespace
}  // namespace diffindex
