#include "util/env.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace diffindex {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "env_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    (void)Env::Default()->RemoveDirRecursively(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  std::string dir_;
};

TEST_F(EnvTest, WriteThenSequentialRead) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Append("hello ").ok());
  ASSERT_TRUE(w->Append("world").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &r).ok());
  char buf[64];
  Slice result;
  ASSERT_TRUE(r->Read(sizeof(buf), &result, buf).ok());
  EXPECT_EQ(result.ToString(), "hello world");
  ASSERT_TRUE(r->Read(sizeof(buf), &result, buf).ok());
  EXPECT_TRUE(result.empty());  // clean EOF
}

TEST_F(EnvTest, RandomAccessReadAtOffsets) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Append("0123456789").ok());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(Env::Default()->NewRandomAccessFile(path, &r).ok());
  EXPECT_EQ(r->Size(), 10u);
  char buf[8];
  Slice result;
  ASSERT_TRUE(r->Read(3, 4, &result, buf).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Read past EOF returns the available prefix.
  ASSERT_TRUE(r->Read(8, 8, &result, buf).ok());
  EXPECT_EQ(result.ToString(), "89");
}

TEST_F(EnvTest, SequentialSkip) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Append("abcdefgh").ok());
  ASSERT_TRUE(w->Close().ok());
  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &r).ok());
  ASSERT_TRUE(r->Skip(5).ok());
  char buf[8];
  Slice result;
  ASSERT_TRUE(r->Read(sizeof(buf), &result, buf).ok());
  EXPECT_EQ(result.ToString(), "fgh");
}

TEST_F(EnvTest, FileExistsAndRemove) {
  const std::string path = dir_ + "/file";
  EXPECT_FALSE(Env::Default()->FileExists(path));
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_TRUE(Env::Default()->FileExists(path));
  ASSERT_TRUE(Env::Default()->RemoveFile(path).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path));
  EXPECT_TRUE(Env::Default()->RemoveFile(path).IsIOError());
}

TEST_F(EnvTest, GetChildrenListsFiles) {
  for (const char* name : {"a", "b", "c"}) {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(
        Env::Default()->NewWritableFile(dir_ + "/" + name, &w).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(dir_, &children).ok());
  std::sort(children.begin(), children.end());
  EXPECT_EQ(children, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(EnvTest, CreateDirIfMissingMakesParents) {
  const std::string nested = dir_ + "/x/y/z";
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(nested).ok());
  EXPECT_TRUE(Env::Default()->FileExists(nested));
  // Idempotent.
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(nested).ok());
}

TEST_F(EnvTest, RemoveDirRecursively) {
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_ + "/a/b").ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(dir_ + "/a/b/f", &w).ok());
  ASSERT_TRUE(w->Close().ok());
  ASSERT_TRUE(Env::Default()->RemoveDirRecursively(dir_ + "/a").ok());
  EXPECT_FALSE(Env::Default()->FileExists(dir_ + "/a"));
  // Removing a missing dir is OK (idempotent).
  ASSERT_TRUE(Env::Default()->RemoveDirRecursively(dir_ + "/a").ok());
}

TEST_F(EnvTest, RenameReplacesAtomically) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(dir_ + "/tmp", &w).ok());
  ASSERT_TRUE(w->Append("new-manifest").ok());
  ASSERT_TRUE(w->Close().ok());
  ASSERT_TRUE(Env::Default()->NewWritableFile(dir_ + "/final", &w).ok());
  ASSERT_TRUE(w->Append("old-manifest").ok());
  ASSERT_TRUE(w->Close().ok());

  ASSERT_TRUE(
      Env::Default()->RenameFile(dir_ + "/tmp", dir_ + "/final").ok());
  EXPECT_FALSE(Env::Default()->FileExists(dir_ + "/tmp"));
  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(dir_ + "/final", &r).ok());
  char buf[32];
  Slice result;
  ASSERT_TRUE(r->Read(sizeof(buf), &result, buf).ok());
  EXPECT_EQ(result.ToString(), "new-manifest");
}

TEST_F(EnvTest, GetFileSize) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(Env::Default()->NewWritableFile(dir_ + "/f", &w).ok());
  ASSERT_TRUE(w->Append(std::string(1234, 'x')).ok());
  ASSERT_TRUE(w->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(Env::Default()->GetFileSize(dir_ + "/f", &size).ok());
  EXPECT_EQ(size, 1234u);
  EXPECT_TRUE(
      Env::Default()->GetFileSize(dir_ + "/missing", &size).IsIOError());
}

}  // namespace
}  // namespace diffindex
