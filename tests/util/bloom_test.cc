// BloomFilterPolicy: no false negatives ever, and the false-positive rate
// stays near the theoretical bound for the configured bits_per_key.

#include "util/bloom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace diffindex {
namespace {

std::string Key(int i, const char* prefix) {
  return std::string(prefix) + std::to_string(i * 2654435761u);
}

TEST(BloomTest, EmptyFilterMatchesNothing) {
  BloomFilterPolicy policy(10);
  std::string filter;
  policy.CreateFilter({}, &filter);
  EXPECT_FALSE(policy.KeyMayMatch("anything", filter));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy policy(10);
  for (int n : {1, 10, 100, 1000, 10000}) {
    std::vector<std::string> keys;
    std::vector<Slice> slices;
    for (int i = 0; i < n; i++) keys.push_back(Key(i, "in-"));
    for (const auto& key : keys) slices.emplace_back(key);
    std::string filter;
    policy.CreateFilter(slices, &filter);
    for (const auto& key : keys) {
      EXPECT_TRUE(policy.KeyMayMatch(key, filter))
          << "false negative for " << key << " at n=" << n;
    }
  }
}

TEST(BloomTest, FalsePositiveRateNearTheoreticalBound) {
  // 10 bits/key => ~0.82% theoretical FP rate ((1-e^{-k/12.8})^k, k=6).
  // Allow generous slack for hash quality: < 2.5%.
  BloomFilterPolicy policy(10);
  constexpr int kKeys = 10000;
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < kKeys; i++) keys.push_back(Key(i, "member-"));
  for (const auto& key : keys) slices.emplace_back(key);
  std::string filter;
  policy.CreateFilter(slices, &filter);

  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; i++) {
    if (policy.KeyMayMatch(Key(i, "absent-"), filter)) false_positives++;
  }
  const double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, 0.025) << false_positives << "/" << kProbes;
}

TEST(BloomTest, MoreBitsPerKeyLowersFalsePositives) {
  constexpr int kKeys = 4000;
  constexpr int kProbes = 8000;
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < kKeys; i++) keys.push_back(Key(i, "m-"));
  for (const auto& key : keys) slices.emplace_back(key);

  auto fp_count = [&](int bits_per_key) {
    BloomFilterPolicy policy(bits_per_key);
    std::string filter;
    policy.CreateFilter(slices, &filter);
    int fp = 0;
    for (int i = 0; i < kProbes; i++) {
      if (policy.KeyMayMatch(Key(i, "a-"), filter)) fp++;
    }
    return fp;
  };
  // 2 bits/key is sloppy (~40% FP), 12 bits/key is tight (<1%): the gap
  // must be decisive, not marginal.
  EXPECT_GT(fp_count(2), fp_count(12) * 4);
}

TEST(BloomTest, HashDistinguishesCloseKeys) {
  EXPECT_NE(BloomHash("row-0001"), BloomHash("row-0002"));
  EXPECT_NE(BloomHash(""), BloomHash(Slice("\0", 1)));
}

}  // namespace
}  // namespace diffindex
