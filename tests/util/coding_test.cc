#include "util/coding.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace diffindex {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu, 0xffffffffu}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    Slice input(buf);
    uint32_t decoded;
    ASSERT_TRUE(GetFixed32(&input, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 32,
                     uint64_t{0xdeadbeefcafebabe}, UINT64_MAX}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    Slice input(buf);
    uint64_t decoded;
    ASSERT_TRUE(GetFixed64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, Fixed64PreservesNumericOrderWhenComparedAsInt) {
  // DecodeFixed64 inverse of EncodeFixed64 on boundaries.
  char a[8], b[8];
  EncodeFixed64(a, 100);
  EncodeFixed64(b, 200);
  EXPECT_LT(DecodeFixed64(a), DecodeFixed64(b));
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string buf;
  std::vector<uint32_t> values;
  for (uint32_t shift = 0; shift < 32; shift++) {
    values.push_back(1u << shift);
    values.push_back((1u << shift) - 1);
  }
  for (uint32_t v : values) PutVarint32(&buf, v);
  Slice input(buf);
  for (uint32_t v : values) {
    uint32_t decoded;
    ASSERT_TRUE(GetVarint32(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  for (int shift = 0; shift < 64; shift++) values.push_back(1ull << shift);
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 40, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, Varint32Truncated) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  buf.resize(buf.size() - 1);  // chop the terminator byte
  Slice input(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice(std::string(300, 'x')));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedSliceShortBody) {
  std::string buf;
  PutVarint32(&buf, 10);
  buf.append("abc");  // only 3 of 10 promised bytes
  Slice input(buf);
  Slice result;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &result));
}

TEST(CodingTest, RandomizedVarintRoundTrip) {
  Random rng(42);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; i++) {
    // Skew toward small values to exercise all byte lengths.
    const int bits = static_cast<int>(rng.Uniform(64)) + 1;
    uint64_t v = rng.Next() & ((bits == 64) ? UINT64_MAX
                                            : ((1ull << bits) - 1));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    ASSERT_EQ(decoded, v);
  }
}

}  // namespace
}  // namespace diffindex
