// LruCache: eviction order, replacement accounting, Clear, and concurrent
// mixed access (the base-row cache and the SSTable block cache both lean
// on these properties).

#include "util/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace diffindex {
namespace {

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCacheTest, InsertLookupErase) {
  LruCache cache(1024);
  cache.Insert("a", Val("alpha"), 10);
  auto got = cache.Lookup("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "alpha");
  EXPECT_EQ(cache.usage(), 10u);

  cache.Erase("a");
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCacheTest, ReplaceUpdatesValueAndCharge) {
  LruCache cache(1024);
  cache.Insert("k", Val("v1"), 100);
  cache.Insert("k", Val("v2"), 40);
  auto got = cache.Lookup("k");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "v2");
  EXPECT_EQ(cache.usage(), 40u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  LruCache cache(30);
  cache.Insert("a", Val("1"), 10);
  cache.Insert("b", Val("2"), 10);
  cache.Insert("c", Val("3"), 10);
  // Touch "a" so "b" is now the coldest.
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("d", Val("4"), 10);  // over capacity: evict "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  EXPECT_LE(cache.usage(), 30u);
}

TEST(LruCacheTest, EvictedValueStaysAliveWhileHeld) {
  LruCache cache(10);
  cache.Insert("a", Val("pinned"), 10);
  auto held = cache.Lookup("a");
  ASSERT_NE(held, nullptr);
  cache.Insert("b", Val("usurper"), 10);  // evicts "a"
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*held, "pinned");  // the handle keeps the value valid
}

TEST(LruCacheTest, ClearDropsEverything) {
  LruCache cache(1024);
  for (int i = 0; i < 16; i++) {
    cache.Insert("k" + std::to_string(i), Val("v"), 8);
  }
  EXPECT_GT(cache.usage(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.usage(), 0u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(cache.Lookup("k" + std::to_string(i)), nullptr);
  }
  // Still usable after Clear.
  cache.Insert("again", Val("x"), 8);
  EXPECT_NE(cache.Lookup("again"), nullptr);
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache cache(1024);
  cache.Insert("a", Val("1"), 8);
  (void)cache.Lookup("a");
  (void)cache.Lookup("a");
  (void)cache.Lookup("nope");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ConcurrentMixedAccess) {
  // Writers, readers and clearers race over a small capacity (constant
  // eviction). Correctness here is "no crash, no corrupted value, usage
  // within bounds" — TSan gives the memory-model verdict.
  LruCache cache(64 * 40);
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 3000;
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, &corrupt, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        const std::string key = "k" + std::to_string((t * 31 + i) % 50);
        switch (i % 5) {
          case 0:
          case 1:
            cache.Insert(key, Val("value-of-" + key), 40);
            break;
          case 2:
          case 3: {
            auto got = cache.Lookup(key);
            if (got != nullptr && *got != "value-of-" + key) {
              corrupt.store(true);
            }
            break;
          }
          case 4:
            if (i % 97 == 0) {
              cache.Clear();
            } else {
              cache.Erase(key);
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_LE(cache.usage(), 64u * 40u);
}

}  // namespace
}  // namespace diffindex
