// Tests of the workload-aware scheme advisor (the paper's future work,
// Section 3.4) and of live scheme switching through the master.

#include "core/advisor.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/backfill.h"
#include "core/index_codec.h"

namespace diffindex {
namespace {

IndexWorkloadProfile Profile(uint64_t updates, uint64_t reads,
                             bool consistency = true,
                             bool read_your_writes = false) {
  IndexWorkloadProfile profile;
  profile.updates = updates;
  profile.reads = reads;
  profile.requires_consistency = consistency;
  profile.requires_read_your_writes = read_your_writes;
  return profile;
}

TEST(AdvisorTest, ReadYourWritesPicksAsyncSession) {
  auto rec = SchemeAdvisor::Recommend(Profile(100, 100, false, true));
  EXPECT_EQ(rec.scheme, IndexScheme::kAsyncSession);
  EXPECT_FALSE(rec.reason.empty());
}

TEST(AdvisorTest, ReadYourWritesBeatsConsistencyFlag) {
  // Principle 5 dominates: even a "consistency needed" workload that asks
  // for read-your-writes gets the session scheme.
  auto rec = SchemeAdvisor::Recommend(Profile(100, 100, true, true));
  EXPECT_EQ(rec.scheme, IndexScheme::kAsyncSession);
}

TEST(AdvisorTest, NoConsistencyPicksAsyncSimple) {
  auto rec = SchemeAdvisor::Recommend(Profile(1000, 10, false));
  EXPECT_EQ(rec.scheme, IndexScheme::kAsyncSimple);
}

TEST(AdvisorTest, WriteHeavyPicksSyncInsert) {
  auto rec = SchemeAdvisor::Recommend(Profile(900, 100));
  EXPECT_EQ(rec.scheme, IndexScheme::kSyncInsert);
}

TEST(AdvisorTest, ReadHeavyPicksSyncFull) {
  auto rec = SchemeAdvisor::Recommend(Profile(100, 900));
  EXPECT_EQ(rec.scheme, IndexScheme::kSyncFull);
}

TEST(AdvisorTest, BalancedConsistentWorkloadPicksSyncFull) {
  auto rec = SchemeAdvisor::Recommend(Profile(500, 500));
  EXPECT_EQ(rec.scheme, IndexScheme::kSyncFull);
}

TEST(AdvisorTest, LargeResultSetsVetoSyncInsert) {
  // Write-heavy, but each read returns 1000 rows: sync-insert would pay
  // 1000 base double-checks per read (the Figure 9 blow-up).
  IndexWorkloadProfile profile = Profile(900, 100);
  profile.avg_rows_per_read = 1000;
  auto rec = SchemeAdvisor::Recommend(profile);
  EXPECT_EQ(rec.scheme, IndexScheme::kSyncFull);
}

TEST(AdvisorTest, ThresholdsAreConfigurable) {
  AdvisorOptions options;
  options.update_critical_ratio = 0.5;
  auto rec = SchemeAdvisor::Recommend(Profile(600, 400), options);
  EXPECT_EQ(rec.scheme, IndexScheme::kSyncInsert);
}

TEST(AdvisorTest, ConvenienceOverloadAgrees) {
  EXPECT_EQ(SchemeAdvisor::RecommendScheme(900, 100, true, false),
            IndexScheme::kSyncInsert);
  EXPECT_EQ(SchemeAdvisor::RecommendScheme(0, 0, false, true),
            IndexScheme::kAsyncSession);
}

// ---- Live scheme switching ----

class SchemeSwitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    IndexDescriptor index;
    index.name = "by_c";
    index.column = "c";
    index.scheme = IndexScheme::kSyncInsert;
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  size_t PhysicalEntries(const std::string& value) {
    std::vector<ScannedRow> rows;
    (void)client_->raw_client()->ScanRows(
        "__idx_t_by_c", IndexScanStartForValue(value),
        IndexScanEndForValue(value), kMaxTimestamp, 0, &rows);
    return rows.size();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(SchemeSwitchTest, SwitchTakesEffectOnNextPut) {
  // Under sync-insert an update leaves the stale entry in place.
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v1").ok());
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v2").ok());
  EXPECT_EQ(PhysicalEntries("v1"), 1u);  // stale entry lingers

  // Switch to sync-full: the next update cleans up after itself.
  ASSERT_TRUE(cluster_->master()
                  ->AlterIndexScheme("t", "by_c", IndexScheme::kSyncFull)
                  .ok());
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v3").ok());
  EXPECT_EQ(PhysicalEntries("v2"), 0u);  // SU4 deleted the old entry
  EXPECT_EQ(PhysicalEntries("v3"), 1u);

  // The pre-switch stale entry is still there (no lazy repair under
  // sync-full)...
  EXPECT_EQ(PhysicalEntries("v1"), 1u);
  // ...which is exactly why the advisor says to cleanse after switching.
  IndexBackfill backfill(cluster_->NewClient());
  CleanseReport report;
  ASSERT_TRUE(backfill.Cleanse("t", "by_c", &report).ok());
  EXPECT_EQ(report.stale_removed, 1u);
  EXPECT_EQ(PhysicalEntries("v1"), 0u);
}

TEST_F(SchemeSwitchTest, SwitchToAsyncDefersWork) {
  ASSERT_TRUE(cluster_->master()
                  ->AlterIndexScheme("t", "by_c", IndexScheme::kAsyncSimple)
                  .ok());
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "async-v").ok());
  // Eventually visible.
  for (int i = 0; i < 2000; i++) {
    std::vector<IndexHit> hits;
    ASSERT_TRUE(client_->GetByIndex("t", "by_c", "async-v", &hits).ok());
    if (hits.size() == 1) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "async index never caught up after the switch";
}

TEST_F(SchemeSwitchTest, UnknownIndexRejected) {
  EXPECT_TRUE(cluster_->master()
                  ->AlterIndexScheme("t", "nope", IndexScheme::kSyncFull)
                  .IsNotFound());
  EXPECT_TRUE(cluster_->master()
                  ->AlterIndexScheme("nope", "by_c", IndexScheme::kSyncFull)
                  .IsNotFound());
}

TEST_F(SchemeSwitchTest, AdvisorDrivenSwitchEndToEnd) {
  // Observe a write-heavy phase, ask the advisor, apply its pick.
  IndexWorkloadProfile profile = {};
  profile.updates = 5000;
  profile.reads = 100;
  profile.requires_consistency = true;
  auto rec = SchemeAdvisor::Recommend(profile);
  ASSERT_EQ(rec.scheme, IndexScheme::kSyncInsert);
  ASSERT_TRUE(
      cluster_->master()->AlterIndexScheme("t", "by_c", rec.scheme).ok());

  // Now a read-heavy phase flips it back.
  profile.updates = 100;
  profile.reads = 5000;
  rec = SchemeAdvisor::Recommend(profile);
  ASSERT_EQ(rec.scheme, IndexScheme::kSyncFull);
  ASSERT_TRUE(
      cluster_->master()->AlterIndexScheme("t", "by_c", rec.scheme).ok());
  EXPECT_TRUE(rec.cleanse_after_switch_from_insert);
}

}  // namespace
}  // namespace diffindex
