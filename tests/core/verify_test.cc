// The read-only index audit (IndexBackfill::Verify) and its use as the
// oracle in a randomized crash-injection stress test: after arbitrary
// interleavings of writes, flushes, and server crashes, every scheme's
// index must converge to exact base/index agreement.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "core/backfill.h"

namespace diffindex {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
  }

  void CreateIndexed(IndexScheme scheme) {
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    IndexDescriptor index;
    index.name = "by_c";
    index.column = "c";
    index.scheme = scheme;
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  void WaitDrained() {
    for (int i = 0; i < 5000; i++) {
      bool idle = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) idle = false;
      }
      if (idle) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "AUQ did not drain";
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(VerifyTest, CleanIndexVerifies) {
  CreateIndexed(IndexScheme::kSyncFull);
  for (int i = 0; i < 30; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 9) % 256, i);
    ASSERT_TRUE(client_->PutColumn("t", row, "c", "v" + std::to_string(i % 4))
                    .ok());
  }
  IndexBackfill tool(cluster_->NewClient());
  VerifyReport report;
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.entries_scanned, 30u);
  EXPECT_EQ(report.rows_scanned, 30u);
}

TEST_F(VerifyTest, DetectsStaleEntries) {
  CreateIndexed(IndexScheme::kSyncInsert);
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "old").ok());
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "new").ok());
  IndexBackfill tool(cluster_->NewClient());
  VerifyReport report;
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.stale_entries, 1u);   // the lingering "old" entry
  EXPECT_EQ(report.missing_entries, 0u);
  // Cleanse fixes it; verify then passes.
  CleanseReport cleansed;
  ASSERT_TRUE(tool.Cleanse("t", "by_c", &cleansed).ok());
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_TRUE(report.consistent());
}

TEST_F(VerifyTest, DetectsMissingEntries) {
  // Data loaded BEFORE the index exists and never backfilled.
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  auto raw = cluster_->NewClient();
  ASSERT_TRUE(raw->PutColumn("t", "aa-1", "c", "unindexed").ok());
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  ASSERT_TRUE(raw->RefreshLayout().ok());

  IndexBackfill tool(cluster_->NewClient());
  VerifyReport report;
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_EQ(report.missing_entries, 1u);
  // Backfill repairs; verify passes.
  BackfillReport backfilled;
  ASSERT_TRUE(tool.Run("t", "by_c", &backfilled).ok());
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_TRUE(report.consistent());
}

TEST_F(VerifyTest, LocalIndexNotSupported) {
  ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.is_local = true;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
  IndexBackfill tool(cluster_->NewClient());
  VerifyReport report;
  EXPECT_TRUE(tool.Verify("t", "by_c", &report).IsNotSupported());
}

// Randomized crash-injection stress: concurrent writers + a mid-stream
// server crash; after quiescence (plus a read-repair sweep for
// sync-insert) the audit must report exact agreement.
class CrashStressTest : public VerifyTest,
                        public ::testing::WithParamInterface<IndexScheme> {};

TEST_P(CrashStressTest, ConvergesToConsistencyAfterCrash) {
  const IndexScheme scheme = GetParam();
  CreateIndexed(scheme);

  constexpr int kWriters = 4, kOpsPerWriter = 120;
  std::vector<std::thread> writers;
  std::atomic<int> done{0};
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([this, w, &done] {
      auto client = cluster_->NewDiffIndexClient();
      Random rng(900 + w);
      for (int i = 0; i < kOpsPerWriter; i++) {
        char row[20];
        snprintf(row, sizeof(row), "%02x-w%d-%llu",
                 static_cast<unsigned>(rng.Uniform(256)), w,
                 static_cast<unsigned long long>(rng.Uniform(40)));
        // Crashes can interrupt a put mid-flight; errors are acceptable
        // for the interrupted operations, convergence is checked over
        // what was acknowledged.
        (void)client->PutColumn("t", row, "c",
                                "v" + std::to_string(rng.Uniform(6)));
      }
      done++;
    });
  }
  // Crash a server while the writers are mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cluster_->KillServer(2).ok());
  for (auto& t : writers) t.join();
  ASSERT_EQ(done.load(), kWriters);
  WaitDrained();

  IndexBackfill tool(cluster_->NewClient());
  if (scheme == IndexScheme::kSyncInsert) {
    // Deferred deletions are repaired lazily; sweep them first.
    CleanseReport cleansed;
    ASSERT_TRUE(tool.Cleanse("t", "by_c", &cleansed).ok());
  }
  VerifyReport report;
  ASSERT_TRUE(tool.Verify("t", "by_c", &report).ok());
  EXPECT_EQ(report.stale_entries, 0u);
  EXPECT_EQ(report.missing_entries, 0u);
  EXPECT_GT(report.rows_scanned, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CrashStressTest,
                         ::testing::Values(IndexScheme::kSyncFull,
                                           IndexScheme::kSyncInsert,
                                           IndexScheme::kAsyncSimple),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexScheme::kSyncFull:
                               return "sync_full";
                             case IndexScheme::kSyncInsert:
                               return "sync_insert";
                             default:
                               return "async_simple";
                           }
                         });

}  // namespace
}  // namespace diffindex
