// Unit tests of the client-side session cache (Section 5.2): private
// entry/delete-marker tracking, merge semantics, idle expiry, and the
// out-of-memory degradation.

#include "core/session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/index_codec.h"

namespace diffindex {
namespace {

IndexHit MakeHit(const std::string& value, const std::string& row,
                 Timestamp ts) {
  IndexHit hit;
  hit.value_encoded = value;
  hit.base_row = row;
  hit.ts = ts;
  return hit;
}

TEST(SessionTest, CreateAndEnd) {
  SessionManager manager;
  const SessionId a = manager.CreateSession();
  const SessionId b = manager.CreateSession();
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.live_sessions(), 2u);
  manager.EndSession(a);
  EXPECT_EQ(manager.live_sessions(), 1u);
  EXPECT_FALSE(manager.IsLive(a));
  EXPECT_TRUE(manager.IsLive(b));
}

TEST(SessionTest, UnknownSessionIsExpired) {
  SessionManager manager;
  std::vector<IndexHit> hits;
  EXPECT_TRUE(manager.MergeHits(999, "idx", "", "", &hits, nullptr)
                  .IsSessionExpired());
  EXPECT_TRUE(
      manager.RecordEntry(999, "idx", "row", 1, false).IsSessionExpired());
}

TEST(SessionTest, PrivateAddSurfacesInMerge) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  const std::string index_row = EncodeIndexRow("red", "item1");
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 100, false).ok());

  std::vector<IndexHit> hits;  // server returned nothing
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].base_row, "item1");
  EXPECT_EQ(hits[0].value_encoded, "red");
}

TEST(SessionTest, PrivateAddOutsideRangeIgnored) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  ASSERT_TRUE(manager.RecordEntry(s, "idx", EncodeIndexRow("blue", "item1"),
                                  100, false)
                  .ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_TRUE(hits.empty());
}

TEST(SessionTest, DeleteMarkerSuppressesStaleServerHit) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  const std::string index_row = EncodeIndexRow("red", "item1");
  // The session deleted (superseded) this entry at ts=200.
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 200, true).ok());

  // Server still returns the stale entry written at ts=100.
  std::vector<IndexHit> hits = {MakeHit("red", "item1", 100)};
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_TRUE(hits.empty());
}

TEST(SessionTest, DeleteMarkerDoesNotSuppressNewerServerHit) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  const std::string index_row = EncodeIndexRow("red", "item1");
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 100, true).ok());

  // Someone re-added the value after this session's delete.
  std::vector<IndexHit> hits = {MakeHit("red", "item1", 300)};
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
}

TEST(SessionTest, NoDuplicateWhenServerCaughtUp) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  const std::string index_row = EncodeIndexRow("red", "item1");
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 100, false).ok());

  // Server already has the entry.
  std::vector<IndexHit> hits = {MakeHit("red", "item1", 100)};
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
}

TEST(SessionTest, NewerPrivateEntryWinsOverOlder) {
  SessionManager manager;
  const SessionId s = manager.CreateSession();
  const std::string index_row = EncodeIndexRow("red", "item1");
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 100, false).ok());
  ASSERT_TRUE(manager.RecordEntry(s, "idx", index_row, 200, true).ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(manager.MergeHits(s, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_TRUE(hits.empty());  // the later delete-marker governs
}

TEST(SessionTest, IdleSessionExpires) {
  SessionOptions options;
  options.idle_limit_micros = 20000;  // 20 ms
  SessionManager manager(options);
  const SessionId s = manager.CreateSession();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::vector<IndexHit> hits;
  EXPECT_TRUE(manager.MergeHits(s, "idx", "", "", &hits, nullptr)
                  .IsSessionExpired());
  EXPECT_FALSE(manager.IsLive(s));
}

TEST(SessionTest, ActivityKeepsSessionAlive) {
  SessionOptions options;
  options.idle_limit_micros = 50000;  // 50 ms
  SessionManager manager(options);
  const SessionId s = manager.CreateSession();
  for (int i = 0; i < 5; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(
        manager.RecordEntry(s, "idx", "row" + std::to_string(i), i, false)
            .ok());
  }
  EXPECT_TRUE(manager.IsLive(s));
}

TEST(SessionTest, CollectExpiredSweeps) {
  SessionOptions options;
  options.idle_limit_micros = 10000;
  SessionManager manager(options);
  (void)manager.CreateSession();
  (void)manager.CreateSession();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(manager.CollectExpired(), 2u);
  EXPECT_EQ(manager.live_sessions(), 0u);
}

TEST(SessionTest, MemoryCapDegradesInsteadOfGrowing) {
  SessionOptions options;
  options.max_memory_bytes = 1024;
  SessionManager manager(options);
  const SessionId s = manager.CreateSession();
  // Write private entries until the cap trips.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(manager
                    .RecordEntry(s, "idx",
                                 EncodeIndexRow("v" + std::to_string(i),
                                                std::string(32, 'r')),
                                 i, false)
                    .ok());
  }
  EXPECT_LT(manager.MemoryUsage(s), 1024u);  // tables were dropped
  // The session still works but merging is disabled (degraded).
  std::vector<IndexHit> hits;
  bool degraded = false;
  ASSERT_TRUE(manager.MergeHits(s, "idx", "", "", &hits, &degraded).ok());
  EXPECT_TRUE(degraded);
  EXPECT_TRUE(hits.empty());
}

TEST(SessionTest, SessionsAreIsolated) {
  SessionManager manager;
  const SessionId a = manager.CreateSession();
  const SessionId b = manager.CreateSession();
  ASSERT_TRUE(manager.RecordEntry(a, "idx", EncodeIndexRow("red", "item1"),
                                  100, false)
                  .ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(manager.MergeHits(b, "idx", IndexScanStartForValue("red"),
                                IndexScanEndForValue("red"), &hits, nullptr)
                  .ok());
  EXPECT_TRUE(hits.empty());  // b does not see a's writes
}

}  // namespace
}  // namespace diffindex
