// Dense columns (Section 7): codec round-trips and end-to-end indexing of
// a field inside a dense column under every maintenance scheme.

#include "core/dense_column.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "core/index_codec.h"

namespace diffindex {
namespace {

DenseColumnSchema ProductSchema() {
  return DenseColumnSchema({{"category", DenseFieldType::kString},
                            {"price", DenseFieldType::kUint64},
                            {"rating", DenseFieldType::kDouble},
                            {"in_stock", DenseFieldType::kBool}});
}

std::string EncodeProduct(const std::string& category, uint64_t price,
                          double rating, bool in_stock) {
  std::string encoded;
  EXPECT_TRUE(ProductSchema()
                  .Encode({DenseValue::String(category),
                           DenseValue::Uint64(price),
                           DenseValue::Double(rating),
                           DenseValue::Bool(in_stock)},
                          &encoded)
                  .ok());
  return encoded;
}

TEST(DenseColumnTest, EncodeDecodeRoundTrip) {
  const std::string encoded = EncodeProduct("tools", 4999, 4.5, true);
  std::vector<DenseValue> values;
  ASSERT_TRUE(ProductSchema().Decode(encoded, &values).ok());
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[0].string_value, "tools");
  EXPECT_EQ(values[1].uint_value, 4999u);
  EXPECT_DOUBLE_EQ(values[2].double_value, 4.5);
  EXPECT_TRUE(values[3].bool_value);
}

TEST(DenseColumnTest, GetFieldExtractsWithoutFullDecode) {
  const std::string encoded = EncodeProduct("garden", 129, 3.0, false);
  DenseValue value;
  ASSERT_TRUE(ProductSchema().GetField(encoded, "price", &value).ok());
  EXPECT_EQ(value.uint_value, 129u);
  ASSERT_TRUE(ProductSchema().GetField(encoded, "in_stock", &value).ok());
  EXPECT_FALSE(value.bool_value);
  EXPECT_TRUE(
      ProductSchema().GetField(encoded, "nope", &value).IsNotFound());
}

TEST(DenseColumnTest, DenseCellIsSmallerThanSeparateCells) {
  // The whole point (per the paper): one cell instead of four saves the
  // per-cell rowkey/column/timestamp overhead.
  const std::string dense = EncodeProduct("electronics", 19999, 4.8, true);
  // Four separate cells would each repeat the 16-byte rowkey, the column
  // name and an 8-byte timestamp (>= 30 bytes of overhead per cell).
  EXPECT_LT(dense.size(), 40u);
}

TEST(DenseColumnTest, TypeMismatchRejected) {
  std::string encoded;
  Status s = ProductSchema().Encode({DenseValue::Uint64(1),  // wrong type
                                     DenseValue::Uint64(2),
                                     DenseValue::Double(3),
                                     DenseValue::Bool(true)},
                                    &encoded);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(DenseColumnTest, TruncatedCellIsCorruption) {
  std::string encoded = EncodeProduct("tools", 4999, 4.5, true);
  encoded.resize(encoded.size() - 5);
  std::vector<DenseValue> values;
  EXPECT_TRUE(ProductSchema().Decode(encoded, &values).IsCorruption());
}

TEST(DenseColumnTest, SchemaWireRoundTrip) {
  std::string buf;
  ProductSchema().EncodeTo(&buf);
  Slice in(buf);
  DenseColumnSchema decoded;
  ASSERT_TRUE(DenseColumnSchema::DecodeFrom(&in, &decoded));
  ASSERT_EQ(decoded.fields().size(), 4u);
  EXPECT_EQ(decoded.fields()[1].name, "price");
  EXPECT_EQ(decoded.fields()[1].type, DenseFieldType::kUint64);
  EXPECT_EQ(decoded.FieldIndex("rating"), 2);
  EXPECT_EQ(decoded.FieldIndex("absent"), -1);
}

TEST(DenseColumnTest, IndexEncodingOrdersNumericFields) {
  EXPECT_LT(DenseColumnSchema::EncodeFieldForIndex(DenseValue::Uint64(5)),
            DenseColumnSchema::EncodeFieldForIndex(DenseValue::Uint64(50)));
  EXPECT_LT(
      DenseColumnSchema::EncodeFieldForIndex(DenseValue::Double(-2.5)),
      DenseColumnSchema::EncodeFieldForIndex(DenseValue::Double(1.25)));
}

// ---- End-to-end: index on a field inside a dense column ----

class DenseIndexTest : public ::testing::TestWithParam<IndexScheme> {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();

    ASSERT_TRUE(cluster_->master()->CreateTable("products").ok());
    IndexDescriptor index;
    index.name = "by_price";
    index.column = "details";  // the dense column
    index.scheme = GetParam();
    index.dense_field = "price";
    index.dense_schema = ProductSchema();
    ASSERT_TRUE(cluster_->master()->CreateIndex("products", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  void Drain() {
    for (int i = 0; i < 2000; i++) {
      bool idle = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) idle = false;
      }
      if (idle) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "AUQ did not drain";
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_P(DenseIndexTest, ExactMatchOnDenseField) {
  ASSERT_TRUE(client_
                  ->PutColumn("products", "aa-p1", "details",
                              EncodeProduct("tools", 4999, 4.5, true))
                  .ok());
  ASSERT_TRUE(client_
                  ->PutColumn("products", "bb-p2", "details",
                              EncodeProduct("garden", 129, 3.0, false))
                  .ok());
  Drain();

  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->GetByIndex("products", "by_price",
                               EncodeUint64IndexValue(4999), &hits)
                  .ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].base_row, "aa-p1");
}

TEST_P(DenseIndexTest, RangeQueryOnDenseField) {
  for (uint64_t price : {100, 200, 300, 400, 500}) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-p%llu",
             static_cast<unsigned>(price / 4),
             static_cast<unsigned long long>(price));
    ASSERT_TRUE(client_
                    ->PutColumn("products", row, "details",
                                EncodeProduct("c", price, 1.0, true))
                    .ok());
  }
  Drain();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->RangeByIndex("products", "by_price",
                                 EncodeUint64IndexValue(150),
                                 EncodeUint64IndexValue(450), 0, &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 3u);  // 200, 300, 400
}

TEST_P(DenseIndexTest, UpdateMovesDenseIndexEntry) {
  ASSERT_TRUE(client_
                  ->PutColumn("products", "aa-p1", "details",
                              EncodeProduct("tools", 100, 4.0, true))
                  .ok());
  // Price change inside the dense cell.
  ASSERT_TRUE(client_
                  ->PutColumn("products", "aa-p1", "details",
                              EncodeProduct("tools", 900, 4.0, true))
                  .ok());
  Drain();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->GetByIndex("products", "by_price",
                               EncodeUint64IndexValue(100), &hits)
                  .ok());
  EXPECT_TRUE(hits.empty());
  ASSERT_TRUE(client_
                  ->GetByIndex("products", "by_price",
                               EncodeUint64IndexValue(900), &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DenseIndexTest,
                         ::testing::Values(IndexScheme::kSyncFull,
                                           IndexScheme::kSyncInsert,
                                           IndexScheme::kAsyncSimple),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexScheme::kSyncFull:
                               return "sync_full";
                             case IndexScheme::kSyncInsert:
                               return "sync_insert";
                             default:
                               return "async_simple";
                           }
                         });

}  // namespace
}  // namespace diffindex
