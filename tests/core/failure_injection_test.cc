// Failure-injection tests beyond plain crashes: network partitions while
// synchronous index maintenance is in flight (Section 6.2's degrade-to-
// eventual path), and session-consistent range reads.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "core/index_codec.h"

namespace diffindex {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    options.auq.retry_backoff_ms = 1;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
  }

  void CreateIndexed(IndexScheme scheme) {
    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    IndexDescriptor index;
    index.name = "by_c";
    index.column = "c";
    index.scheme = scheme;
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  // Owner of the base row and of the index entry for (value, row).
  NodeId BaseOwner(const std::string& row) {
    RegionInfoWire info;
    EXPECT_TRUE(client_->raw_client()->RouteRow("t", row, &info).ok());
    return info.server_id;
  }
  NodeId IndexOwner(const std::string& value, const std::string& row) {
    RegionInfoWire info;
    EXPECT_TRUE(client_->raw_client()
                    ->RouteRow("__idx_t_by_c", EncodeIndexRow(value, row),
                               &info)
                    .ok());
    return info.server_id;
  }

  // Finds a (row, value) whose base and index entries live on different
  // servers so a partition between them is meaningful.
  bool FindCrossServerPair(std::string* row, std::string* value) {
    for (int i = 0; i < 256; i++) {
      char candidate[16];
      snprintf(candidate, sizeof(candidate), "%02x-row", i);
      const std::string v = "partition-value";
      if (BaseOwner(candidate) != IndexOwner(v, candidate)) {
        *row = candidate;
        *value = v;
        return true;
      }
    }
    return false;
  }

  void WaitDrained() {
    for (int i = 0; i < 5000; i++) {
      bool idle = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) idle = false;
      }
      if (idle) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "AUQ did not drain";
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(FailureInjectionTest, SyncFullDegradesToEventualUnderPartition) {
  CreateIndexed(IndexScheme::kSyncFull);
  std::string row, value;
  ASSERT_TRUE(FindCrossServerPair(&row, &value));
  const NodeId base_server = BaseOwner(row);
  const NodeId index_server = IndexOwner(value, row);

  // Cut the base server off from the index server: the synchronous index
  // put (issued server-side by the observer) must fail...
  cluster_->fabric()->SetPartitioned(base_server, index_server, true);
  // ...but the base put still succeeds — "in some cases when index cannot
  // be synchronized, users still want the work to proceed" (Section 3.2):
  // the failed op lands in the AUQ for retry.
  ASSERT_TRUE(client_->PutColumn("t", row, "c", value).ok());
  std::string got;
  ASSERT_TRUE(client_->Get("t", row, "c", &got).ok());
  EXPECT_EQ(got, value);

  // Heal the partition: the AUQ retries to completion.
  cluster_->fabric()->SetPartitioned(base_server, index_server, false);
  WaitDrained();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", value, &hits).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].base_row, row);
}

TEST_F(FailureInjectionTest, SyncInsertDegradesToEventualUnderPartition) {
  CreateIndexed(IndexScheme::kSyncInsert);
  std::string row, value;
  ASSERT_TRUE(FindCrossServerPair(&row, &value));
  const NodeId base_server = BaseOwner(row);
  const NodeId index_server = IndexOwner(value, row);

  cluster_->fabric()->SetPartitioned(base_server, index_server, true);
  ASSERT_TRUE(client_->PutColumn("t", row, "c", value).ok());
  cluster_->fabric()->SetPartitioned(base_server, index_server, false);
  WaitDrained();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", value, &hits).ok());
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(FailureInjectionTest, ClientPartitionedFromOneServerStillErrors) {
  CreateIndexed(IndexScheme::kSyncFull);
  // Partition the CLIENT from a server: its puts to that server fail with
  // Unavailable after retries (there is no failover — the server is fine,
  // only this client can't reach it).
  std::string row = "00-r";
  const NodeId owner = BaseOwner(row);
  cluster_->fabric()->SetPartitioned(client_->raw_client()->self_node(),
                                     owner, true);
  Status s = client_->PutColumn("t", row, "c", "v");
  EXPECT_TRUE(s.IsUnavailable());
  cluster_->fabric()->SetPartitioned(client_->raw_client()->self_node(),
                                     owner, false);
  EXPECT_TRUE(client_->PutColumn("t", row, "c", "v").ok());
}

TEST_F(FailureInjectionTest, AsyncRetriesThroughIndexServerCrash) {
  CreateIndexed(IndexScheme::kAsyncSimple);
  std::string row, value;
  ASSERT_TRUE(FindCrossServerPair(&row, &value));
  const NodeId index_server = IndexOwner(value, row);

  // Write, then immediately crash the index entry's server. The AUQ task
  // retries until the master has reassigned the index region.
  ASSERT_TRUE(client_->PutColumn("t", row, "c", value).ok());
  ASSERT_TRUE(cluster_->KillServer(index_server).ok());
  WaitDrained();

  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", value, &hits).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].base_row, row);
}

// ---- Session-consistent range reads ----

TEST_F(FailureInjectionTest, SessionRangeReadSeesOwnWrites) {
  ASSERT_TRUE(cluster_->master()->CreateTable("priced").ok());
  IndexDescriptor index;
  index.name = "by_p";
  index.column = "p";
  index.scheme = IndexScheme::kAsyncSession;
  ASSERT_TRUE(cluster_->master()->CreateIndex("priced", index).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

  const SessionId s = client_->GetSession();
  // Session writes three prices; the async index has NOT caught up.
  for (uint64_t price : {100, 200, 300}) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-p%llu", static_cast<unsigned>(price),
             static_cast<unsigned long long>(price));
    ASSERT_TRUE(client_
                    ->SessionPut(s, "priced", row,
                                 {Cell{"p", EncodeUint64IndexValue(price),
                                       false}})
                    .ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->SessionRangeByIndex(s, "priced", "by_p",
                                        EncodeUint64IndexValue(150),
                                        EncodeUint64IndexValue(350), &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 2u);  // 200 and 300, straight from the session
  client_->EndSession(s);
}

TEST_F(FailureInjectionTest, SessionRangeReadSuppressesOwnSupersededValue) {
  ASSERT_TRUE(cluster_->master()->CreateTable("priced").ok());
  IndexDescriptor index;
  index.name = "by_p";
  index.column = "p";
  index.scheme = IndexScheme::kAsyncSession;
  ASSERT_TRUE(cluster_->master()->CreateIndex("priced", index).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

  // Seed a price and let the index catch up.
  ASSERT_TRUE(client_
                  ->PutColumn("priced", "aa-item", "p",
                              EncodeUint64IndexValue(100))
                  .ok());
  WaitDrained();

  // The session moves the price out of the queried range; a session range
  // read must not return the stale 100 even though the server index still
  // holds it.
  const SessionId s = client_->GetSession();
  ASSERT_TRUE(client_
                  ->SessionPut(s, "priced", "aa-item",
                               {Cell{"p", EncodeUint64IndexValue(900),
                                     false}})
                  .ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->SessionRangeByIndex(s, "priced", "by_p",
                                        EncodeUint64IndexValue(50),
                                        EncodeUint64IndexValue(200), &hits)
                  .ok());
  EXPECT_TRUE(hits.empty());
  ASSERT_TRUE(client_
                  ->SessionRangeByIndex(s, "priced", "by_p",
                                        EncodeUint64IndexValue(850),
                                        EncodeUint64IndexValue(950), &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
  client_->EndSession(s);
}

}  // namespace
}  // namespace diffindex
