// AUQ overflow-policy suite (AuqOptions::overflow_policy): kBlock blocks
// then drains without changing final index state, kShedToDeadLetter
// records every dropped task without losing acked base writes, and
// kDegradeToAsync accepts past the bound but still converges. The
// cluster-level checks reuse the scheme-equivalence differential pattern
// (same seeded trace, compare raw index-table state against a model). A
// crash-mid-shed chaos scenario (ChaosTest suite, `chaos` label) arms the
// "auq.shed" failpoint — task dropped between base-put ack and the
// dead-letter record — and proves WAL-replay recovery re-creates it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/auq.h"
#include "core/index_codec.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace diffindex {
namespace {

IndexTask MakeTask(int i) {
  IndexTask task;
  task.base_table = "t";
  task.row = "row" + std::to_string(i);
  task.cells = {Cell{"c", "v" + std::to_string(i), false}};
  task.ts = TimestampOracle::NowMicros();
  task.index.name = "by_c";
  task.index.column = "c";
  return task;
}

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; i++) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// A processor that parks every delivery until released, so the queue can
// be filled to max_depth deterministically.
struct GatedProcessor {
  std::atomic<bool> release{false};
  std::atomic<int> processed{0};
  std::atomic<int> started{0};
  AsyncUpdateQueue::Processor fn() {
    return [this](const IndexTask&) {
      started.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      processed.fetch_add(1);
      return Status::OK();
    };
  }
};

TEST(AuqPolicyTest, KBlockBlocksAtDepthThenDrainsEverything) {
  GatedProcessor gate;
  AuqOptions options;
  options.worker_threads = 1;
  options.max_depth = 2;
  options.overflow_policy = AuqOverflowPolicy::kBlock;
  AsyncUpdateQueue auq(options, gate.fn());

  // Task 0 goes in-flight; 1 and 2 fill the bounded queue.
  ASSERT_TRUE(auq.Enqueue(MakeTask(0)));
  ASSERT_TRUE(WaitFor([&] { return gate.started.load() == 1; }));
  ASSERT_TRUE(auq.Enqueue(MakeTask(1)));
  ASSERT_TRUE(auq.Enqueue(MakeTask(2)));
  EXPECT_EQ(auq.queued_depth(), 2u);

  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    ASSERT_TRUE(auq.Enqueue(MakeTask(3)));
    enqueued = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Still blocked: the queue never exceeds max_depth under kBlock.
  EXPECT_FALSE(enqueued.load());
  EXPECT_LE(auq.queued_depth(), 2u);

  gate.release = true;
  producer.join();
  EXPECT_TRUE(enqueued.load());
  auq.WaitDrained();
  // Nothing was dropped: backpressure, not loss.
  EXPECT_EQ(gate.processed.load(), 4);
  EXPECT_EQ(auq.dead_letters(), 0u);
  auq.Shutdown();
}

TEST(AuqPolicyTest, ShedToDeadLetterRecordsOverflowWithoutBlocking) {
  obs::MetricsRegistry metrics;
  GatedProcessor gate;
  AuqOptions options;
  options.worker_threads = 1;
  options.max_depth = 1;
  options.overflow_policy = AuqOverflowPolicy::kShedToDeadLetter;
  options.metrics = &metrics;
  AsyncUpdateQueue auq(options, gate.fn());

  ASSERT_TRUE(auq.Enqueue(MakeTask(0)));  // in-flight
  ASSERT_TRUE(WaitFor([&] { return gate.started.load() == 1; }));
  ASSERT_TRUE(auq.Enqueue(MakeTask(1)));  // fills the queue
  // Overflow: acked immediately (no blocking), moved to the dead-letter
  // list with full accounting.
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(auq.Enqueue(MakeTask(2)));
  ASSERT_TRUE(auq.Enqueue(MakeTask(3)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_EQ(auq.dead_letters(), 2u);
  EXPECT_EQ(metrics.GetCounter("auq.shed")->value(), 2u);
  EXPECT_EQ(metrics.GetGauge("auq.dead_letters")->value(), 2);

  gate.release = true;
  auq.WaitDrained();
  EXPECT_EQ(gate.processed.load(), 2);  // shed tasks were NOT delivered

  // The shed tasks are recoverable by an operator sweep.
  std::vector<IndexTask> dead = auq.DrainDeadLetters();
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(dead[0].row, "row2");
  EXPECT_EQ(dead[1].row, "row3");
  auq.Shutdown();
}

TEST(AuqPolicyTest, DegradeToAsyncAcceptsPastDepthAndConverges) {
  obs::MetricsRegistry metrics;
  GatedProcessor gate;
  AuqOptions options;
  options.worker_threads = 1;
  options.max_depth = 1;
  options.overflow_policy = AuqOverflowPolicy::kDegradeToAsync;
  options.metrics = &metrics;
  AsyncUpdateQueue auq(options, gate.fn());

  ASSERT_TRUE(auq.Enqueue(MakeTask(0)));
  ASSERT_TRUE(WaitFor([&] { return gate.started.load() == 1; }));
  // Five more: all accepted without blocking, four beyond the bound.
  for (int i = 1; i <= 5; i++) {
    ASSERT_TRUE(auq.Enqueue(MakeTask(i)));
  }
  EXPECT_GE(auq.queued_depth(), 5u);  // the bound degraded
  EXPECT_EQ(metrics.GetCounter("auq.degraded")->value(), 4u);

  gate.release = true;
  auq.WaitDrained();
  // Eventual delivery is intact: every task (bounded or not) delivered.
  EXPECT_EQ(gate.processed.load(), 6);
  EXPECT_EQ(auq.dead_letters(), 0u);
  auq.Shutdown();
}

// ---- Cluster-level differential: same seeded trace, compare the raw
// index table. Mirrors scheme_equivalence_test.cc.

using IndexState = std::map<std::string, std::set<std::string>>;

constexpr int kNumValues = 6;
constexpr int kKeySpace = 20;

std::string ValueName(int v) { return "v" + std::to_string(v); }

void WaitAuqQuiescent(Cluster* cluster) {
  for (int i = 0; i < 5000; i++) {
    bool all_empty = true;
    for (NodeId id : cluster->server_ids()) {
      IndexManager* manager = cluster->index_manager(id);
      if (manager != nullptr && manager->QueueDepth() > 0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Runs a seeded put/delete trace against an async-simple index under the
// given AUQ bound/policy and returns (final index state, model truth).
void RunPolicyWorkload(AuqOverflowPolicy policy, size_t max_depth,
                       uint64_t seed, int ops, IndexState* state,
                       IndexState* truth) {
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 4;
  options.auq.max_depth = max_depth;
  options.auq.overflow_policy = policy;
  // Slow the APS so a bounded queue actually overflows under load.
  options.auq.process_delay_ms = 1;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  auto client = cluster->NewDiffIndexClient();

  ASSERT_TRUE(cluster->master()->CreateTable("items").ok());
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = IndexScheme::kAsyncSimple;
  ASSERT_TRUE(cluster->master()->CreateIndex("items", index).ok());
  ASSERT_TRUE(client->raw_client()->RefreshLayout().ok());

  Random rng(static_cast<uint32_t>(seed));
  std::map<std::string, std::string> model;
  for (int i = 0; i < ops; i++) {
    const std::string row = "r" + std::to_string(rng.Uniform(kKeySpace));
    if (model.count(row) && rng.Uniform(10) < 2) {
      ASSERT_TRUE(client->DeleteColumns("items", row, {"title"}).ok());
      model.erase(row);
    } else {
      const std::string value = ValueName(rng.Uniform(kNumValues));
      ASSERT_TRUE(client->PutColumn("items", row, "title", value).ok());
      model[row] = value;
    }
  }
  WaitAuqQuiescent(cluster.get());

  state->clear();
  for (int v = 0; v < kNumValues; v++) {
    const std::string value = ValueName(v);
    IndexDescriptor found;
    ASSERT_TRUE(
        client->reader()->FindIndex("items", "by_title", &found).ok());
    std::vector<ScannedRow> rows;
    ASSERT_TRUE(client->raw_client()
                    ->ScanRows(found.index_table,
                               IndexScanStartForValue(value),
                               IndexScanEndForValue(value), kMaxTimestamp,
                               0, &rows)
                    .ok());
    for (const auto& row : rows) {
      std::string value_encoded, base_row;
      if (DecodeIndexRow(row.row, &value_encoded, &base_row)) {
        (*state)[value].insert(base_row);
      }
    }
  }
  truth->clear();
  for (const auto& [row, value] : model) (*truth)[value].insert(row);
}

TEST(AuqPolicyTest, KBlockFinalIndexStateIsByteIdenticalToUnbounded) {
  const uint64_t seed = 0xB10C4ULL;
  IndexState unbounded_state, unbounded_truth;
  RunPolicyWorkload(AuqOverflowPolicy::kBlock, /*max_depth=*/0, seed, 100,
                    &unbounded_state, &unbounded_truth);
  IndexState bounded_state, bounded_truth;
  RunPolicyWorkload(AuqOverflowPolicy::kBlock, /*max_depth=*/2, seed, 100,
                    &bounded_state, &bounded_truth);
  // kBlock changes latency, never state: raw index rows are identical to
  // the unbounded run — and both match the model.
  EXPECT_EQ(bounded_state, unbounded_state);
  EXPECT_EQ(bounded_state, bounded_truth);
  EXPECT_EQ(unbounded_state, unbounded_truth);
}

TEST(AuqPolicyTest, DegradeToAsyncConvergesToModelState) {
  IndexState state, truth;
  RunPolicyWorkload(AuqOverflowPolicy::kDegradeToAsync, /*max_depth=*/1,
                    0xDE64ADEULL, 100, &state, &truth);
  EXPECT_EQ(state, truth);
}

TEST(AuqPolicyTest, ShedKeepsAckedBaseWritesReadable) {
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 4;
  options.auq.max_depth = 1;
  options.auq.overflow_policy = AuqOverflowPolicy::kShedToDeadLetter;
  options.auq.process_delay_ms = 5;  // back the queue up immediately
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  auto client = cluster->NewDiffIndexClient();
  ASSERT_TRUE(cluster->master()->CreateTable("items").ok());
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = IndexScheme::kAsyncSimple;
  ASSERT_TRUE(cluster->master()->CreateIndex("items", index).ok());
  ASSERT_TRUE(client->raw_client()->RefreshLayout().ok());

  // Every put is acked even while the 1-deep queue sheds index tasks.
  for (int i = 0; i < 40; i++) {
    const std::string row = "r" + std::to_string(i);
    ASSERT_TRUE(client->PutColumn("items", row, "title", "t").ok());
  }
  EXPECT_GT(cluster->metrics()->GetCounter("auq.shed")->value(), 0u);

  // The acked base writes are all there; only index maintenance was shed,
  // and each shed task has a dead-letter record for repair.
  for (int i = 0; i < 40; i++) {
    GetRowResponse row;
    ASSERT_TRUE(client->raw_client()
                    ->GetRow("items", "r" + std::to_string(i),
                             kMaxTimestamp, &row)
                    .ok());
    EXPECT_TRUE(row.found) << "r" << i;
  }
  size_t recorded = 0;
  for (NodeId id : cluster->server_ids()) {
    recorded += cluster->index_manager(id)->auq()->dead_letters();
  }
  EXPECT_EQ(recorded, cluster->metrics()->GetCounter("auq.shed")->value());
}

// ---- Crash mid-shed (chaos label): the "auq.shed" failpoint models a
// crash between the base put's ack and the dead-letter record — the task
// is simply gone, with no trace for an operator to repair from. The only
// safety net is the WAL: killing the servers afterwards forces failover
// replay, which re-derives every index task from the surviving log and
// must converge to the model state.

TEST(ChaosTest, CrashMidShedConvergesAfterRecovery) {
  fault::FailpointRegistry::Global()->DisarmAll();
  ClusterOptions options;
  // A single server takes the whole workload, so every shed (recorded or
  // crash-lost) happens on the node we then kill.
  options.num_servers = 1;
  options.regions_per_table = 4;
  options.auq.max_depth = 1;
  options.auq.overflow_policy = AuqOverflowPolicy::kShedToDeadLetter;
  options.auq.process_delay_ms = 2;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  auto client = cluster->NewDiffIndexClient();
  ASSERT_TRUE(cluster->master()->CreateTable("items").ok());
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = IndexScheme::kAsyncSimple;
  ASSERT_TRUE(cluster->master()->CreateIndex("items", index).ok());
  ASSERT_TRUE(client->raw_client()->RefreshLayout().ok());

  // Half of all sheds "crash" before the dead-letter record lands.
  fault::FailpointRegistry::Global()->Arm(
      "auq.shed", fault::FailpointPolicy::WithProbability(0.5, 0xC7A5));

  Random rng(0x5EDC0DE);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 80; i++) {
    const std::string row = "r" + std::to_string(rng.Uniform(kKeySpace));
    const std::string value = ValueName(rng.Uniform(kNumValues));
    ASSERT_TRUE(client->PutColumn("items", row, "title", value).ok());
    model[row] = value;
  }
  const uint64_t shed = cluster->metrics()->GetCounter("auq.shed")->value();
  EXPECT_GT(shed, 0u) << "scenario never overflowed; tighten the knobs";

  // Faults over. Fail the victim over to a fresh server: recovery splits
  // and replays the WAL, re-deriving an index task for every logged put —
  // including the ones the crash-mid-shed dropped without a record (sheds
  // bypassed the drain barrier, so no flush checkpoint can have advanced
  // past their edits).
  fault::FailpointRegistry::Global()->DisarmAll();
  ASSERT_TRUE(cluster->AddServer(2).ok());
  ASSERT_TRUE(cluster->KillServer(1).ok());
  ASSERT_TRUE(client->raw_client()->RefreshLayout().ok());
  WaitAuqQuiescent(cluster.get());

  // The recovered server still runs the shed policy, so the replay burst
  // itself may have shed again — with a record this time (the failpoint
  // is off). Run the operator repair sweep: drain the dead-letter lists
  // and re-enqueue until nothing is left. Re-sheds during the sweep just
  // come back around the loop.
  for (int round = 0; round < 100; round++) {
    std::vector<std::pair<NodeId, IndexTask>> dead;
    for (NodeId id : cluster->server_ids()) {
      IndexManager* manager = cluster->index_manager(id);
      if (manager == nullptr) continue;
      for (IndexTask& task : manager->auq()->DrainDeadLetters()) {
        dead.emplace_back(id, std::move(task));
      }
    }
    if (dead.empty()) break;
    for (auto& [id, task] : dead) {
      cluster->index_manager(id)->auq()->Enqueue(std::move(task));
    }
    WaitAuqQuiescent(cluster.get());
  }

  // Raw-scan the index table and compare against the model: every task
  // lost mid-shed was re-created by replay.
  IndexState state, truth;
  for (int v = 0; v < kNumValues; v++) {
    const std::string value = ValueName(v);
    IndexDescriptor found;
    ASSERT_TRUE(
        client->reader()->FindIndex("items", "by_title", &found).ok());
    std::vector<ScannedRow> rows;
    ASSERT_TRUE(client->raw_client()
                    ->ScanRows(found.index_table,
                               IndexScanStartForValue(value),
                               IndexScanEndForValue(value), kMaxTimestamp,
                               0, &rows)
                    .ok());
    for (const auto& row : rows) {
      std::string value_encoded, base_row;
      if (DecodeIndexRow(row.row, &value_encoded, &base_row)) {
        state[value].insert(base_row);
      }
    }
  }
  for (const auto& [row, value] : model) truth[value].insert(row);
  for (int v = 0; v < kNumValues; v++) {
    EXPECT_EQ(state[ValueName(v)], truth[ValueName(v)])
        << "value " << ValueName(v) << " diverged after crash-mid-shed";
  }
}

}  // namespace
}  // namespace diffindex
