// Tests of the mini query layer (the Big SQL stand-in of Section 7):
// planning decisions, execution paths, residual filters, projection.

#include "core/query.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/index_codec.h"

namespace diffindex {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 2;
    options.regions_per_table = 4;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
    engine_ = std::make_unique<QueryEngine>(client_.get());

    ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
    IndexDescriptor title_index;
    title_index.name = "by_title";
    title_index.column = "title";
    title_index.scheme = IndexScheme::kSyncFull;
    ASSERT_TRUE(cluster_->master()->CreateIndex("items", title_index).ok());
    IndexDescriptor price_index;
    price_index.name = "by_price";
    price_index.column = "price";
    price_index.scheme = IndexScheme::kSyncFull;
    ASSERT_TRUE(cluster_->master()->CreateIndex("items", price_index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

    // 30 items: title "t<i%3>", price i*10, stock "s<i%2>".
    for (int i = 0; i < 30; i++) {
      char row[16];
      snprintf(row, sizeof(row), "%02x-item%d", (i * 9) % 256, i);
      ASSERT_TRUE(client_
                      ->Put("items", row,
                            {Cell{"title", "t" + std::to_string(i % 3),
                                  false},
                             Cell{"price",
                                  EncodeUint64IndexValue(
                                      static_cast<uint64_t>(i) * 10),
                                  false},
                             Cell{"stock", "s" + std::to_string(i % 2),
                                  false}})
                      .ok());
    }
  }

  Predicate Eq(const std::string& column, const std::string& value) {
    return Predicate{column, PredicateOp::kEq, value};
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryTest, EqualityOnIndexedColumnPlansIndexExact) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t1")};
  QueryPlan plan;
  ASSERT_TRUE(engine_->Plan(query, &plan).ok());
  EXPECT_EQ(plan.kind, PlanKind::kIndexExact);
  EXPECT_EQ(plan.index_name, "by_title");
  EXPECT_TRUE(plan.residual.empty());
}

TEST_F(QueryTest, RangeOnIndexedColumnPlansIndexRange) {
  Query query;
  query.table = "items";
  query.predicates = {
      Predicate{"price", PredicateOp::kGe, EncodeUint64IndexValue(100)},
      Predicate{"price", PredicateOp::kLt, EncodeUint64IndexValue(200)}};
  QueryPlan plan;
  ASSERT_TRUE(engine_->Plan(query, &plan).ok());
  EXPECT_EQ(plan.kind, PlanKind::kIndexRange);
  EXPECT_EQ(plan.index_name, "by_price");
  EXPECT_TRUE(plan.residual.empty());
}

TEST_F(QueryTest, UnindexedPredicatePlansFullScan) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("stock", "s0")};
  QueryPlan plan;
  ASSERT_TRUE(engine_->Plan(query, &plan).ok());
  EXPECT_EQ(plan.kind, PlanKind::kFullScan);
  EXPECT_EQ(plan.residual.size(), 1u);
}

TEST_F(QueryTest, EqualityPreferredOverRange) {
  Query query;
  query.table = "items";
  query.predicates = {
      Predicate{"price", PredicateOp::kGe, EncodeUint64IndexValue(0)},
      Eq("title", "t0")};
  QueryPlan plan;
  ASSERT_TRUE(engine_->Plan(query, &plan).ok());
  EXPECT_EQ(plan.kind, PlanKind::kIndexExact);
  EXPECT_EQ(plan.index_name, "by_title");
  EXPECT_EQ(plan.residual.size(), 1u);  // the price range becomes residual
}

TEST_F(QueryTest, ExecuteIndexExact) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t1")};
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  EXPECT_EQ(rows.size(), 10u);  // i % 3 == 1
}

TEST_F(QueryTest, ExecuteIndexRange) {
  Query query;
  query.table = "items";
  query.predicates = {
      Predicate{"price", PredicateOp::kGe, EncodeUint64IndexValue(100)},
      Predicate{"price", PredicateOp::kLt, EncodeUint64IndexValue(200)}};
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  EXPECT_EQ(rows.size(), 10u);  // prices 100..190
}

TEST_F(QueryTest, InclusiveAndExclusiveBounds) {
  Query query;
  query.table = "items";
  query.predicates = {
      Predicate{"price", PredicateOp::kGt, EncodeUint64IndexValue(100)},
      Predicate{"price", PredicateOp::kLe, EncodeUint64IndexValue(200)}};
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  EXPECT_EQ(rows.size(), 10u);  // 110..200
}

TEST_F(QueryTest, ResidualFilterApplied) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t0"), Eq("stock", "s0")};
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  // i % 3 == 0 AND i % 2 == 0 -> i in {0,6,12,18,24}.
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(QueryTest, FullScanWithFilterMatchesIndexPath) {
  Query by_scan;
  by_scan.table = "items";
  by_scan.predicates = {Eq("stock", "s1")};
  std::vector<ScannedRow> scan_rows;
  ASSERT_TRUE(engine_->Execute(by_scan, &scan_rows).ok());
  EXPECT_EQ(scan_rows.size(), 15u);
}

TEST_F(QueryTest, ProjectionTrimsColumns) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t2")};
  query.projection = {"price"};
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    ASSERT_EQ(row.cells.size(), 1u);
    EXPECT_EQ(row.cells[0].column, "price");
  }
}

TEST_F(QueryTest, LimitStopsEarly) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t0")};
  query.limit = 3;
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryTest, NoPredicatesIsFullTable) {
  Query query;
  query.table = "items";
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(engine_->Execute(query, &rows).ok());
  EXPECT_EQ(rows.size(), 30u);
}

TEST_F(QueryTest, UnknownTableFails) {
  Query query;
  query.table = "nope";
  std::vector<ScannedRow> rows;
  EXPECT_TRUE(engine_->Execute(query, &rows).IsNotFound());
}

TEST_F(QueryTest, ExplainDescribesPlan) {
  Query query;
  query.table = "items";
  query.predicates = {Eq("title", "t0")};
  std::string text;
  ASSERT_TRUE(engine_->Explain(query, &text).ok());
  EXPECT_NE(text.find("INDEX EXACT"), std::string::npos);
  EXPECT_NE(text.find("by_title"), std::string::npos);
}

}  // namespace
}  // namespace diffindex
