#include "core/index_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace diffindex {
namespace {

TEST(IndexCodecTest, EscapeRemovesZeroBytes) {
  const std::string raw("a\x00b\x01c", 5);
  const std::string escaped = EscapeIndexComponent(raw);
  EXPECT_EQ(escaped.find('\x00'), std::string::npos);
  std::string back;
  ASSERT_TRUE(UnescapeIndexComponent(escaped, &back));
  EXPECT_EQ(back, raw);
}

TEST(IndexCodecTest, EscapePreservesOrder) {
  Random rng(77);
  std::vector<std::string> raws;
  for (int i = 0; i < 500; i++) {
    std::string s;
    const size_t len = rng.Uniform(12);
    for (size_t j = 0; j < len; j++) {
      s.push_back(static_cast<char>(rng.Uniform(4)));  // bias to 0x00-0x03
    }
    raws.push_back(s);
  }
  for (size_t i = 0; i < raws.size(); i++) {
    for (size_t j = i + 1; j < raws.size(); j++) {
      const int raw_cmp = Slice(raws[i]).compare(Slice(raws[j]));
      const int esc_cmp = Slice(EscapeIndexComponent(raws[i]))
                              .compare(Slice(EscapeIndexComponent(raws[j])));
      ASSERT_EQ(raw_cmp < 0, esc_cmp < 0);
      ASSERT_EQ(raw_cmp == 0, esc_cmp == 0);
    }
  }
}

TEST(IndexCodecTest, IndexRowRoundTrip) {
  const std::string value("price\x00\x01!", 8);
  const std::string row = "user42";
  const std::string index_row = EncodeIndexRow(value, row);
  std::string value_out, row_out;
  ASSERT_TRUE(DecodeIndexRow(index_row, &value_out, &row_out));
  EXPECT_EQ(value_out, value);
  EXPECT_EQ(row_out, row);
}

TEST(IndexCodecTest, IndexRowContainsNoCellSeparator) {
  const std::string value("\x00\x00\x00", 3);
  const std::string index_row = EncodeIndexRow(value, "row");
  EXPECT_EQ(index_row.find('\x00'), std::string::npos);
}

TEST(IndexCodecTest, BaseRowWithEscByteSurvives) {
  // Base rows may contain 0x01; only 0x00 is reserved.
  const std::string row("r\x01ow", 4);
  const std::string index_row = EncodeIndexRow("v", row);
  std::string value_out, row_out;
  ASSERT_TRUE(DecodeIndexRow(index_row, &value_out, &row_out));
  EXPECT_EQ(row_out, row);
}

TEST(IndexCodecTest, EntriesOfOneValueAreContiguous) {
  // Entries of value "ab" must all fall in
  // [IndexScanStartForValue, IndexScanEndForValue), and entries of other
  // values (including extensions like "ab\x00") must not.
  const std::string start = IndexScanStartForValue("ab");
  const std::string end = IndexScanEndForValue("ab");

  const std::string inside1 = EncodeIndexRow("ab", "row1");
  const std::string inside2 = EncodeIndexRow("ab", "zzzz");
  const std::string outside1 = EncodeIndexRow("aa", "row1");
  const std::string outside2 = EncodeIndexRow("abc", "row1");
  const std::string outside3 = EncodeIndexRow(std::string("ab\x00", 3), "r");
  const std::string outside4 = EncodeIndexRow(std::string("ab\x01", 3), "r");

  auto in_range = [&](const std::string& key) {
    return key >= start && key < end;
  };
  EXPECT_TRUE(in_range(inside1));
  EXPECT_TRUE(in_range(inside2));
  EXPECT_FALSE(in_range(outside1));
  EXPECT_FALSE(in_range(outside2));
  EXPECT_FALSE(in_range(outside3));
  EXPECT_FALSE(in_range(outside4));
}

TEST(IndexCodecTest, RangeBoundsMatchValueOrder) {
  // Property: entry(v, r) is in [RangeStart(lo), RangeEnd(hi)) iff
  // lo <= v < hi.
  Random rng(99);
  std::vector<std::string> values;
  for (int i = 0; i < 60; i++) {
    std::string v;
    const size_t len = 1 + rng.Uniform(6);
    for (size_t j = 0; j < len; j++) {
      v.push_back(static_cast<char>(rng.Uniform(6)));
    }
    values.push_back(v);
  }
  for (const auto& lo : values) {
    for (const auto& hi : values) {
      if (!(lo < hi)) continue;
      const std::string start = IndexRangeStart(lo);
      const std::string end = IndexRangeEnd(hi);
      for (const auto& v : values) {
        const std::string entry = EncodeIndexRow(v, "somerow");
        const bool in_encoded = entry >= start && entry < end;
        const bool in_logical = v >= lo && v < hi;
        ASSERT_EQ(in_encoded, in_logical)
            << "v=" << v << " lo=" << lo << " hi=" << hi;
      }
    }
  }
}

TEST(IndexCodecTest, Uint64EncodingOrders) {
  std::vector<uint64_t> values = {0, 1, 255, 256, 1000000, UINT64_MAX};
  for (size_t i = 0; i + 1 < values.size(); i++) {
    EXPECT_LT(EncodeUint64IndexValue(values[i]),
              EncodeUint64IndexValue(values[i + 1]));
  }
  uint64_t decoded;
  ASSERT_TRUE(DecodeUint64IndexValue(EncodeUint64IndexValue(123456), &decoded));
  EXPECT_EQ(decoded, 123456u);
}

TEST(IndexCodecTest, DoubleEncodingOrders) {
  std::vector<double> values = {-1e18, -3.5, -0.0001, 0.0,
                                0.0001, 2.5, 1e18};
  for (size_t i = 0; i + 1 < values.size(); i++) {
    EXPECT_LT(EncodeDoubleIndexValue(values[i]),
              EncodeDoubleIndexValue(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(IndexCodecTest, CompositeOrdersComponentWise) {
  // ("a", "z") < ("ab", "a"): component-wise, not concatenation order.
  const std::string az = EncodeCompositeIndexValue({"a", "z"});
  const std::string aba = EncodeCompositeIndexValue({"ab", "a"});
  EXPECT_LT(az, aba);
  // Equal first components order by the second.
  EXPECT_LT(EncodeCompositeIndexValue({"a", "b"}),
            EncodeCompositeIndexValue({"a", "c"}));
}

TEST(IndexCodecTest, CompositeRoundTripsThroughIndexRow) {
  const std::string composite =
      EncodeCompositeIndexValue({"electronics", "usb-c cable"});
  const std::string index_row = EncodeIndexRow(composite, "item9");
  std::string value_out, row_out;
  ASSERT_TRUE(DecodeIndexRow(index_row, &value_out, &row_out));
  EXPECT_EQ(value_out, composite);
  EXPECT_EQ(row_out, "item9");
}

TEST(IndexCodecTest, UnescapeRejectsMalformed) {
  std::string out;
  EXPECT_FALSE(UnescapeIndexComponent(std::string("\x01", 1), &out));
  EXPECT_FALSE(UnescapeIndexComponent(std::string("\x01\x07", 2), &out));
  EXPECT_FALSE(UnescapeIndexComponent(std::string("a\x01\x01b", 4), &out));
}

TEST(IndexCodecTest, DecodeIndexRowRejectsNoTerminator) {
  std::string value, row;
  EXPECT_FALSE(DecodeIndexRow("plainbytes", &value, &row));
}

}  // namespace
}  // namespace diffindex
