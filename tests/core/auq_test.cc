// Unit tests of the asynchronous update queue + processing service in
// isolation: enqueue/process, the pause-drain-resume protocol of Figure 5,
// retry-until-success, backpressure and shutdown.

#include "core/auq.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace diffindex {
namespace {

IndexTask MakeTask(int i) {
  IndexTask task;
  task.base_table = "t";
  task.row = "row" + std::to_string(i);
  task.ts = TimestampOracle::NowMicros();
  return task;
}

TEST(AuqTest, ProcessesEnqueuedTasks) {
  std::atomic<int> processed{0};
  AuqOptions options;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    processed++;
    return Status::OK();
  });
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(auq.Enqueue(MakeTask(i)));
  }
  auq.WaitDrained();
  EXPECT_EQ(processed.load(), 50);
  EXPECT_EQ(auq.processed(), 50u);
  EXPECT_EQ(auq.depth(), 0u);
}

TEST(AuqTest, TasksCarryPayload) {
  std::atomic<bool> seen{false};
  AuqOptions options;
  AsyncUpdateQueue auq(options, [&](const IndexTask& task) {
    EXPECT_EQ(task.base_table, "t");
    EXPECT_EQ(task.row, "row7");
    seen = true;
    return Status::OK();
  });
  ASSERT_TRUE(auq.Enqueue(MakeTask(7)));
  auq.WaitDrained();
  EXPECT_TRUE(seen.load());
}

TEST(AuqTest, PauseBlocksEnqueueUntilResume) {
  AuqOptions options;
  AsyncUpdateQueue auq(options,
                       [](const IndexTask&) { return Status::OK(); });
  auq.Pause();
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    ASSERT_TRUE(auq.Enqueue(MakeTask(1)));
    enqueued = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(enqueued.load());  // still blocked by the pause
  auq.Resume();
  producer.join();
  EXPECT_TRUE(enqueued.load());
  auq.WaitDrained();
}

TEST(AuqTest, WaitDrainedWaitsForInFlightTask) {
  std::atomic<bool> release{false};
  std::atomic<bool> done{false};
  AuqOptions options;
  options.worker_threads = 1;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done = true;
    return Status::OK();
  });
  ASSERT_TRUE(auq.Enqueue(MakeTask(1)));
  std::thread drainer([&] {
    auq.WaitDrained();
    // The in-flight task must have finished before the drain returned.
    EXPECT_TRUE(done.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release = true;
  drainer.join();
}

TEST(AuqTest, FailedTasksRetryUntilSuccess) {
  std::atomic<int> attempts{0};
  AuqOptions options;
  options.retry_backoff_ms = 1;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    // Fail the first three deliveries.
    if (attempts.fetch_add(1) < 3) return Status::Unavailable("down");
    return Status::OK();
  });
  ASSERT_TRUE(auq.Enqueue(MakeTask(1)));
  auq.WaitDrained();
  EXPECT_EQ(attempts.load(), 4);
  EXPECT_EQ(auq.retries(), 3u);
  EXPECT_EQ(auq.processed(), 1u);
}

TEST(AuqTest, PauseNestingFromConcurrentFlushes) {
  AuqOptions options;
  AsyncUpdateQueue auq(options,
                       [](const IndexTask&) { return Status::OK(); });
  auq.Pause();
  auq.Pause();  // two regions flushing at once
  auq.Resume();
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    (void)auq.Enqueue(MakeTask(1));
    enqueued = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(enqueued.load());  // one pause still outstanding
  auq.Resume();
  producer.join();
  auq.WaitDrained();
}

TEST(AuqTest, BoundedQueueAppliesBackpressure) {
  std::atomic<bool> release{false};
  AuqOptions options;
  options.worker_threads = 1;
  options.max_depth = 2;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  // Fill: one in-flight + two queued.
  ASSERT_TRUE(auq.Enqueue(MakeTask(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(auq.Enqueue(MakeTask(2)));
  ASSERT_TRUE(auq.Enqueue(MakeTask(3)));
  std::atomic<bool> fourth_in{false};
  std::thread producer([&] {
    (void)auq.Enqueue(MakeTask(4));
    fourth_in = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fourth_in.load());  // blocked on capacity
  release = true;
  producer.join();
  auq.WaitDrained();
}

TEST(AuqTest, ShutdownUnblocksEverything) {
  AuqOptions options;
  AsyncUpdateQueue auq(options,
                       [](const IndexTask&) { return Status::OK(); });
  auq.Pause();
  std::thread producer([&] {
    EXPECT_FALSE(auq.Enqueue(MakeTask(1)));  // released by shutdown
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auq.Shutdown();
  producer.join();
  EXPECT_FALSE(auq.Enqueue(MakeTask(2)));
}

TEST(AuqTest, StalenessSamplesRecorded) {
  AuqOptions options;
  options.staleness_sample_every = 1;
  AsyncUpdateQueue auq(options,
                       [](const IndexTask&) { return Status::OK(); });
  for (int i = 0; i < 20; i++) {
    IndexTask task = MakeTask(i);
    task.ts = TimestampOracle::NowMicros() - 5000;  // 5 ms "ago"
    ASSERT_TRUE(auq.Enqueue(std::move(task)));
  }
  auq.WaitDrained();
  EXPECT_EQ(auq.staleness().Count(), 20u);
  EXPECT_GE(auq.staleness().Min(), 5000u);
}

}  // namespace
}  // namespace diffindex
