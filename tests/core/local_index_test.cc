// Local (region-co-located) indexes — the Section 3.1 alternative design
// Diff-Index argues against for selective queries: fast, server-local
// updates, but reads broadcast to every region.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "core/index_codec.h"

namespace diffindex {
namespace {

class LocalIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();

    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    IndexDescriptor index;
    index.name = "by_c";
    index.column = "c";
    index.is_local = true;
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  std::set<std::string> HitRows(const std::vector<IndexHit>& hits) {
    std::set<std::string> rows;
    for (const auto& hit : hits) rows.insert(hit.base_row);
    return rows;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(LocalIndexTest, NoBackingGlobalTableCreated) {
  auto client = cluster_->NewClient();
  CatalogSnapshot catalog = client->catalog();
  const TableDescriptor* base = catalog.GetTable("t");
  ASSERT_NE(base, nullptr);
  ASSERT_EQ(base->indexes.size(), 1u);
  EXPECT_TRUE(base->indexes[0].is_local);
  EXPECT_TRUE(base->indexes[0].index_table.empty());
  EXPECT_EQ(catalog.GetTable("__idx_t_by_c"), nullptr);
}

TEST_F(LocalIndexTest, ExactMatchAcrossRegions) {
  for (int i = 0; i < 24; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 11) % 256, i);
    ASSERT_TRUE(client_->PutColumn("t", row, "c", "shared-value").ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "shared-value", &hits).ok());
  EXPECT_EQ(hits.size(), 24u);
}

TEST_F(LocalIndexTest, UpdateMovesEntrySynchronously) {
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "old").ok());
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "new").ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "old", &hits).ok());
  EXPECT_TRUE(hits.empty());  // no lazy repair needed: removed inline
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "new", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
}

TEST_F(LocalIndexTest, DeleteRemovesEntry) {
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v").ok());
  ASSERT_TRUE(client_->DeleteColumns("t", "aa-1", {"c"}).ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "v", &hits).ok());
  EXPECT_TRUE(hits.empty());
}

TEST_F(LocalIndexTest, RangeQueryMergesRegions) {
  ASSERT_TRUE(cluster_->master()->CreateTable("priced").ok());
  IndexDescriptor index;
  index.name = "by_p";
  index.column = "p";
  index.is_local = true;
  ASSERT_TRUE(cluster_->master()->CreateIndex("priced", index).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

  for (uint64_t price = 0; price < 40; price++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-p%llu",
             static_cast<unsigned>(price * 6),
             static_cast<unsigned long long>(price));
    ASSERT_TRUE(client_
                    ->PutColumn("priced", row, "p",
                                EncodeUint64IndexValue(price))
                    .ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->RangeByIndex("priced", "by_p",
                                 EncodeUint64IndexValue(10),
                                 EncodeUint64IndexValue(30), 0, &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 20u);
  // Sorted by encoded value despite arriving from different regions.
  for (size_t i = 1; i < hits.size(); i++) {
    EXPECT_LE(hits[i - 1].value_encoded, hits[i].value_encoded);
  }
}

TEST_F(LocalIndexTest, UpdateMakesNoRemoteCalls) {
  // The whole point of a local index: maintenance never leaves the
  // server. Count fabric calls around an update — exactly one (the
  // client's put RPC itself).
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v0").ok());
  const uint64_t before = cluster_->fabric()->calls_made();
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v1").ok());
  EXPECT_EQ(cluster_->fabric()->calls_made(), before + 1);
}

TEST_F(LocalIndexTest, ReadBroadcastsToEveryRegion) {
  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "v").ok());
  const uint64_t before = cluster_->fabric()->calls_made();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "v", &hits).ok());
  // One RPC per region of the base table (6 regions).
  EXPECT_EQ(cluster_->fabric()->calls_made(), before + 6);
}

TEST_F(LocalIndexTest, RebuiltAfterServerCrash) {
  for (int i = 0; i < 48; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 5) % 256, i);
    ASSERT_TRUE(client_->PutColumn("t", row, "c", "survive").ok());
  }
  ASSERT_TRUE(cluster_->KillServer(2).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "survive", &hits).ok());
  // The new owners rebuilt the local indexes from recovered base data.
  EXPECT_EQ(hits.size(), 48u);
}

TEST_F(LocalIndexTest, SurvivesFlush) {
  for (int i = 0; i < 20; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 13) % 256, i);
    ASSERT_TRUE(client_->PutColumn("t", row, "c", "flushed").ok());
  }
  ASSERT_TRUE(client_->raw_client()->FlushTable("t").ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "flushed", &hits).ok());
  EXPECT_EQ(hits.size(), 20u);
}

TEST_F(LocalIndexTest, CoexistsWithGlobalIndexOnSameTable) {
  IndexDescriptor global;
  global.name = "by_c_global";
  global.column = "c";
  global.scheme = IndexScheme::kSyncFull;
  ASSERT_TRUE(cluster_->master()->CreateIndex("t", global).ok());
  ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());

  ASSERT_TRUE(client_->PutColumn("t", "aa-1", "c", "both").ok());
  std::vector<IndexHit> local_hits, global_hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "both", &local_hits).ok());
  ASSERT_TRUE(
      client_->GetByIndex("t", "by_c_global", "both", &global_hits).ok());
  EXPECT_EQ(HitRows(local_hits), HitRows(global_hits));
}

// Regression: local-index writers serialize on the region's write_mu, not
// the flush gate (the post-open rebuild writes without the gate), so the
// flush of the local side tree must also take write_mu or a concurrent
// ApplyLocalIndex races it (LsmTree forbids concurrent Put/Flush). Hammer
// indexed puts against repeated flushes and require no entry goes missing.
TEST_F(LocalIndexTest, ConcurrentPutsAndFlushesLoseNothing) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 40;
  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load()) {
      client_->raw_client()->FlushTable("t").IgnoreError();
    }
  });
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      auto client = cluster_->NewDiffIndexClient();
      for (int i = 0; i < kPerWriter; i++) {
        char row[24];
        snprintf(row, sizeof(row), "%02x-w%d-%d", (w * 67 + i * 11) % 256, w,
                 i);
        if (!client->PutColumn("t", row, "c", "race-value").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  flusher.join();
  ASSERT_EQ(failures.load(), 0);

  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("t", "by_c", "race-value", &hits).ok());
  EXPECT_EQ(hits.size(), static_cast<size_t>(kWriters * kPerWriter));
}

}  // namespace
}  // namespace diffindex
