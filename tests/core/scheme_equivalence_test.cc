// Differential scheme-equivalence suite: the same seeded workload (puts,
// updates, deletes, same-value overwrites, occasional flushes) must leave
// the index in an identical final state under all four maintenance
// schemes, with the batched hot path (AUQ coalescing drain + WAL group
// commit) both off and on. Sync-insert leaves stale entries by design, so
// its state is compared after a read-repair sweep; async schemes are
// compared after the AUQ quiesces. Any divergence — a lost entry, a
// phantom entry, a coalesced-away delete — shows up as a set difference
// keyed by (value, base row).

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "util/random.h"

namespace diffindex {
namespace {

constexpr int kNumValues = 8;
constexpr int kKeySpace = 24;
constexpr int kOpsPerRun = 120;

std::string ValueName(int v) { return "v" + std::to_string(v); }

std::string RowName(Random* rng) {
  char buf[24];
  const uint32_t r = rng->Uniform(kKeySpace);
  snprintf(buf, sizeof(buf), "%02x-r%u", (r * 37) % 256, r);
  return buf;
}

// The final index state: value -> set of base rows whose encoded index
// rows exist in the index table. Row keys are deterministic functions of
// (value, base row), so set equality here is byte-identical row-key
// equality of the raw index table.
using IndexState = std::map<std::string, std::set<std::string>>;

struct RunConfig {
  IndexScheme scheme;
  bool batched;  // drain_batch_size > 1 + WAL group commit
};

IndexState RunWorkload(const RunConfig& config, uint64_t seed) {
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 4;
  if (config.batched) {
    options.auq.drain_batch_size = 8;
    options.server.wal_sync = wal::SyncMode::kGroupCommit;
    options.server.wal_group_window_micros = 50;
  }
  std::unique_ptr<Cluster> cluster;
  EXPECT_TRUE(Cluster::Create(options, &cluster).ok());
  auto client = cluster->NewDiffIndexClient();

  EXPECT_TRUE(cluster->master()->CreateTable("items").ok());
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = config.scheme;
  EXPECT_TRUE(cluster->master()->CreateIndex("items", index).ok());
  EXPECT_TRUE(client->raw_client()->RefreshLayout().ok());

  // The op sequence depends only on the seed — every configuration
  // replays the exact same (row, value, op) trace.
  Random rng(static_cast<uint32_t>(seed));
  std::map<std::string, std::string> model;  // row -> current value
  for (int i = 0; i < kOpsPerRun; i++) {
    const std::string row = RowName(&rng);
    const uint32_t dice = rng.Uniform(10);
    if (model.count(row) && dice < 2) {
      EXPECT_TRUE(client->DeleteColumns("items", row, {"title"}).ok());
      model.erase(row);
    } else if (model.count(row) && dice < 4) {
      // Same-value overwrite: the δ edge case of Section 4.3.
      EXPECT_TRUE(
          client->PutColumn("items", row, "title", model[row]).ok());
    } else {
      const std::string value = ValueName(rng.Uniform(kNumValues));
      EXPECT_TRUE(client->PutColumn("items", row, "title", value).ok());
      model[row] = value;
    }
    if (rng.OneIn(40)) {
      EXPECT_TRUE(client->raw_client()->FlushTable("items").ok());
    }
  }

  // Async schemes: wait for the AUQ/APS to deliver everything.
  for (int i = 0; i < 5000; i++) {
    bool all_empty = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Sync-insert never deletes inline; a read sweep over every value
  // triggers the lazy repair that removes stale entries. Harmless for the
  // other schemes.
  for (int v = 0; v < kNumValues; v++) {
    std::vector<IndexHit> hits;
    EXPECT_TRUE(
        client->GetByIndex("items", "by_title", ValueName(v), &hits).ok());
  }

  // Raw scan of the index table — no repair, no filtering.
  IndexState state;
  for (int v = 0; v < kNumValues; v++) {
    const std::string value = ValueName(v);
    IndexDescriptor found;
    EXPECT_TRUE(
        client->reader()->FindIndex("items", "by_title", &found).ok());
    std::vector<ScannedRow> rows;
    EXPECT_TRUE(client->raw_client()
                    ->ScanRows(found.index_table,
                               IndexScanStartForValue(value),
                               IndexScanEndForValue(value), kMaxTimestamp,
                               0, &rows)
                    .ok());
    for (const auto& row : rows) {
      std::string value_encoded, base_row;
      if (DecodeIndexRow(row.row, &value_encoded, &base_row)) {
        state[value].insert(base_row);
      }
    }
  }

  // Cross-check against the model: equivalence between schemes is not
  // enough if they are all wrong the same way.
  IndexState truth;
  for (const auto& [row, value] : model) truth[value].insert(row);
  for (int v = 0; v < kNumValues; v++) {
    const std::string value = ValueName(v);
    EXPECT_EQ(state[value], truth[value])
        << "scheme " << IndexSchemeName(config.scheme)
        << (config.batched ? " batched" : " unbatched") << " seed " << seed
        << " value " << value;
  }
  return state;
}

class SchemeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemeEquivalenceTest, AllSchemesConvergeToIdenticalIndexState) {
  const uint64_t seed = 0xEC0DE500ULL + static_cast<uint64_t>(GetParam());
  const IndexScheme schemes[] = {
      IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
      IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession};

  // Reference: sync-full, classic one-task path.
  const IndexState reference =
      RunWorkload({IndexScheme::kSyncFull, /*batched=*/false}, seed);

  for (IndexScheme scheme : schemes) {
    for (bool batched : {false, true}) {
      if (scheme == IndexScheme::kSyncFull && !batched) continue;
      const IndexState got = RunWorkload({scheme, batched}, seed);
      EXPECT_EQ(got, reference)
          << "scheme " << IndexSchemeName(scheme)
          << (batched ? " batched" : " unbatched") << " diverged, seed "
          << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeEquivalenceTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace diffindex
