// Stress test of the AUQ's flush-coordination protocol (Figure 5) under
// concurrency: producers enqueue continuously while a "flusher" repeatedly
// runs the Pause -> WaitDrained -> Resume cycle a memstore flush performs.
// Invariants checked at every drain point and at the end:
//   - no accepted enqueue is ever lost (processed == accepted eventually);
//   - when WaitDrained returns under a pause, nothing is queued and no
//     task is mid-flight in a worker (the drain-before-flush guarantee —
//     an index update may never straddle the flush).

#include "core/auq.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace diffindex {
namespace {

TEST(AuqFlushStressTest, ConcurrentEnqueueVsPauseDrainCycles) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 400;
  constexpr int kFlushCycles = 25;

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> processed{0};
  std::atomic<int> mid_flight{0};
  std::atomic<bool> overlap_seen{false};

  AuqOptions options;
  options.worker_threads = 3;
  options.max_depth = 16;  // small: backpressure paths get exercised too
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    mid_flight.fetch_add(1, std::memory_order_acq_rel);
    // A sliver of real work so drains regularly race with execution.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    mid_flight.fetch_sub(1, std::memory_order_acq_rel);
    processed.fetch_add(1, std::memory_order_acq_rel);
    return Status::OK();
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&auq, &accepted, p] {
      for (int i = 0; i < kTasksPerProducer; i++) {
        IndexTask task;
        task.base_table = "t";
        task.row = "p" + std::to_string(p) + "-" + std::to_string(i);
        task.ts = TimestampOracle::NowMicros();
        ASSERT_TRUE(auq.Enqueue(std::move(task)));  // never shut down here
        accepted.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  std::thread flusher([&] {
    for (int cycle = 0; cycle < kFlushCycles; cycle++) {
      auq.Pause();
      auq.WaitDrained();
      // The flush-coordination contract, observed mid-race: with the
      // intake paused and the drain returned, the queue is empty and no
      // worker holds a task. (Accepted-vs-processed equality is only
      // checked after the producers join — a producer may be preempted
      // between Enqueue returning and its own bookkeeping.)
      if (mid_flight.load(std::memory_order_acquire) != 0) {
        overlap_seen.store(true);
      }
      EXPECT_EQ(auq.depth(), 0u) << "cycle " << cycle;
      auq.Resume();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& producer : producers) producer.join();
  flusher.join();

  EXPECT_FALSE(overlap_seen.load()) << "a task was mid-flight at drain";

  // Every accepted task is eventually processed, pause cycles included.
  auq.WaitDrained();
  EXPECT_EQ(accepted.load(), uint64_t{kProducers} * kTasksPerProducer);
  EXPECT_EQ(processed.load(), accepted.load());
  EXPECT_EQ(auq.processed(), accepted.load());
  EXPECT_EQ(auq.depth(), 0u);
}

TEST(AuqFlushStressTest, DrainSoundUnderRetries) {
  // Same protocol with a flaky processor: retried tasks stay part of the
  // pending set, so a drain that returns while a retry is backing off
  // would be a correctness bug.
  std::atomic<uint64_t> processed{0};
  std::atomic<uint64_t> attempts{0};
  AuqOptions options;
  options.worker_threads = 2;
  options.retry_backoff_ms = 1;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    if (attempts.fetch_add(1) % 3 == 0) {
      return Status::Unavailable("transient");
    }
    processed.fetch_add(1, std::memory_order_acq_rel);
    return Status::OK();
  });

  constexpr uint64_t kTasks = 200;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTasks; i++) {
      IndexTask task;
      task.base_table = "t";
      task.row = "r" + std::to_string(i);
      task.ts = TimestampOracle::NowMicros();
      ASSERT_TRUE(auq.Enqueue(std::move(task)));
    }
  });

  for (int cycle = 0; cycle < 10; cycle++) {
    auq.Pause();
    auq.WaitDrained();
    EXPECT_EQ(auq.depth(), 0u) << "cycle " << cycle;
    auq.Resume();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  auq.WaitDrained();
  EXPECT_EQ(processed.load(), kTasks);
  EXPECT_EQ(auq.processed(), kTasks);
}

// ---- Batched drain (coalescing) variants ----

// The batched hot path must uphold the same two invariants: nothing is
// lost to coalescing (every absorbed task is accounted for in processed
// counts) and a drain never returns mid-batch.
TEST(AuqFlushStressTest, BatchedDrainCoalescesWithoutLosingTasks) {
  obs::MetricsRegistry metrics;
  AuqOptions options;
  options.worker_threads = 2;
  options.drain_batch_size = 8;
  options.metrics = &metrics;

  std::atomic<uint64_t> delivered{0};  // survivors handed to the batch
  AsyncUpdateQueue auq(
      options, [](const IndexTask&) { return Status::OK(); },
      [&](const std::vector<IndexTask>& tasks, std::vector<Status>* out) {
        delivered.fetch_add(tasks.size(), std::memory_order_acq_rel);
        out->assign(tasks.size(), Status::OK());
      });

  // A tiny key space so batches regularly carry same-(index, row)
  // duplicates that must coalesce.
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&auq, p] {
      for (int i = 0; i < kTasksPerProducer; i++) {
        IndexTask task;
        task.base_table = "t";
        task.row = "r" + std::to_string((p * 7 + i) % 6);
        task.index.name = "by_title";
        task.ts = TimestampOracle::NowMicros();
        task.old_ts = task.ts;
        ASSERT_TRUE(auq.Enqueue(std::move(task)));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  auq.WaitDrained();

  constexpr uint64_t kAccepted = uint64_t{kProducers} * kTasksPerProducer;
  // processed() counts coalesced-away tasks too — nothing lost.
  EXPECT_EQ(auq.processed(), kAccepted);
  EXPECT_EQ(auq.depth(), 0u);
  const uint64_t coalesced = metrics.GetCounter("auq.coalesced")->value();
  EXPECT_GT(coalesced, 0u) << "6 rows x 2000 tasks never coalesced";
  EXPECT_EQ(delivered.load() + coalesced, kAccepted);
  EXPECT_GT(metrics.GetHistogram("auq.batch_size")->Count(), 0u);
}

TEST(AuqFlushStressTest, BatchedConcurrentEnqueueVsPauseDrainCycles) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 400;
  constexpr int kFlushCycles = 25;

  std::atomic<uint64_t> accepted{0};
  std::atomic<int> mid_flight{0};
  std::atomic<bool> overlap_seen{false};

  AuqOptions options;
  options.worker_threads = 3;
  options.drain_batch_size = 4;
  options.max_depth = 16;
  AsyncUpdateQueue auq(
      options, [](const IndexTask&) { return Status::OK(); },
      [&](const std::vector<IndexTask>& tasks, std::vector<Status>* out) {
        mid_flight.fetch_add(1, std::memory_order_acq_rel);
        std::this_thread::sleep_for(std::chrono::microseconds(80));
        mid_flight.fetch_sub(1, std::memory_order_acq_rel);
        out->assign(tasks.size(), Status::OK());
      });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&auq, &accepted, p] {
      for (int i = 0; i < kTasksPerProducer; i++) {
        IndexTask task;
        task.base_table = "t";
        task.row = "p" + std::to_string(p) + "-" + std::to_string(i % 10);
        task.ts = TimestampOracle::NowMicros();
        task.old_ts = task.ts;
        ASSERT_TRUE(auq.Enqueue(std::move(task)));
        accepted.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  std::thread flusher([&] {
    for (int cycle = 0; cycle < kFlushCycles; cycle++) {
      auq.Pause();
      auq.WaitDrained();
      // WaitDrained must observe in-flight BATCHES: a batch popped before
      // the pause may not be abandoned mid-delivery.
      if (mid_flight.load(std::memory_order_acquire) != 0) {
        overlap_seen.store(true);
      }
      EXPECT_EQ(auq.depth(), 0u) << "cycle " << cycle;
      auq.Resume();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& producer : producers) producer.join();
  flusher.join();
  EXPECT_FALSE(overlap_seen.load()) << "a batch was mid-flight at drain";

  auq.WaitDrained();
  EXPECT_EQ(accepted.load(), uint64_t{kProducers} * kTasksPerProducer);
  EXPECT_EQ(auq.processed(), accepted.load());
  EXPECT_EQ(auq.depth(), 0u);
}

TEST(AuqFlushStressTest, BatchedDrainSoundUnderRetries) {
  // A failed batch re-queues its coalesced survivors; drains must keep
  // counting them (and their absorbed tasks) as pending until delivered.
  std::atomic<uint64_t> batches{0};
  AuqOptions options;
  options.worker_threads = 2;
  options.drain_batch_size = 8;
  options.retry_backoff_ms = 1;
  AsyncUpdateQueue auq(
      options, [](const IndexTask&) { return Status::OK(); },
      [&](const std::vector<IndexTask>& tasks, std::vector<Status>* out) {
        if (batches.fetch_add(1) % 3 == 0) {
          out->assign(tasks.size(), Status::Unavailable("transient"));
          return;
        }
        out->assign(tasks.size(), Status::OK());
      });

  constexpr uint64_t kTasks = 300;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTasks; i++) {
      IndexTask task;
      task.base_table = "t";
      task.row = "r" + std::to_string(i % 12);
      task.ts = TimestampOracle::NowMicros();
      task.old_ts = task.ts;
      ASSERT_TRUE(auq.Enqueue(std::move(task)));
    }
  });

  for (int cycle = 0; cycle < 10; cycle++) {
    auq.Pause();
    auq.WaitDrained();
    EXPECT_EQ(auq.depth(), 0u) << "cycle " << cycle;
    auq.Resume();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  auq.WaitDrained();
  EXPECT_EQ(auq.processed(), kTasks);
  EXPECT_EQ(auq.depth(), 0u);
}

}  // namespace
}  // namespace diffindex
