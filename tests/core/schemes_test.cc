// End-to-end tests of the four Diff-Index maintenance schemes against the
// simulated cluster: Algorithms 1-4, the δ edge cases, read-repair, the
// drain-before-flush invariant, AUQ failure recovery, and the session
// consistency matrix of Section 3.3.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "core/backfill.h"
#include "core/index_codec.h"
#include "util/random.h"

namespace diffindex {
namespace {

class SchemesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    options.auq.staleness_sample_every = 1;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();
  }

  void CreateIndexedTable(const std::string& table, IndexScheme scheme,
                          const std::string& column = "title",
                          std::vector<std::string> extra = {}) {
    ASSERT_TRUE(cluster_->master()->CreateTable(table).ok());
    IndexDescriptor index;
    index.name = "by_" + column;
    index.column = column;
    index.scheme = scheme;
    index.extra_columns = std::move(extra);
    ASSERT_TRUE(cluster_->master()->CreateIndex(table, index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  // Waits until every server's AUQ is empty (async schemes quiesce).
  void WaitForQuiescence() {
    for (int i = 0; i < 2000; i++) {
      bool all_empty = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "AUQ did not drain";
  }

  std::set<std::string> HitRows(const std::vector<IndexHit>& hits) {
    std::set<std::string> rows;
    for (const auto& hit : hits) rows.insert(hit.base_row);
    return rows;
  }

  // Raw view of the index table (no repair): which base rows appear for
  // a value, stale entries included.
  std::set<std::string> RawIndexRows(const std::string& table,
                                     const std::string& index_name,
                                     const std::string& value) {
    IndexDescriptor index;
    EXPECT_TRUE(
        client_->reader()->FindIndex(table, index_name, &index).ok());
    std::vector<ScannedRow> rows;
    EXPECT_TRUE(client_->raw_client()
                    ->ScanRows(index.index_table,
                               IndexScanStartForValue(value),
                               IndexScanEndForValue(value), kMaxTimestamp, 0,
                               &rows)
                    .ok());
    std::set<std::string> result;
    for (const auto& row : rows) {
      std::string value_encoded, base_row;
      if (DecodeIndexRow(row.row, &value_encoded, &base_row)) {
        result.insert(base_row);
      }
    }
    return result;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

// ---- sync-full (Algorithm 1) ----

TEST_F(SchemesTest, SyncFullIndexVisibleImmediately) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "widget").ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "widget", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
}

TEST_F(SchemesTest, SyncFullUpdateRemovesOldEntrySynchronously) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "old").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "new").ok());

  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "new", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
  // SU4 deleted the old entry inside the put path — no repair involved.
  EXPECT_TRUE(RawIndexRows("items", "by_title", "old").empty());
}

TEST_F(SchemesTest, SyncFullSameValueUpdateKeepsEntryDeltaCase) {
  // The δ edge case of Section 4.3: when v_new == v_old, SU4's delete at
  // t_new - δ must not wipe the entry just written at t_new.
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "same").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "same").ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "same", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
}

TEST_F(SchemesTest, SyncFullDeleteRemovesEntry) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "w").ok());
  ASSERT_TRUE(client_->DeleteColumns("items", "aa-1", {"title"}).ok());
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "w", &hits).ok());
  EXPECT_TRUE(hits.empty());
}

TEST_F(SchemesTest, SyncFullMultipleRowsSameValue) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  for (int i = 0; i < 20; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 12) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "popular").ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_title", "popular", &hits).ok());
  EXPECT_EQ(hits.size(), 20u);
}

TEST_F(SchemesTest, QueryByIndexFetchesBaseRows) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  ASSERT_TRUE(client_->Put("items", "aa-1",
                           {Cell{"title", "widget", false},
                            Cell{"price", "99", false}})
                  .ok());
  std::vector<ScannedRow> rows;
  ASSERT_TRUE(client_->QueryByIndex("items", "by_title", "widget", &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].row, "aa-1");
  EXPECT_EQ(rows[0].cells.size(), 2u);
}

// ---- sync-insert (Algorithm 2) ----

TEST_F(SchemesTest, SyncInsertLeavesStaleEntriesUntilRead) {
  CreateIndexedTable("items", IndexScheme::kSyncInsert);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "old").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "new").ok());

  // The stale entry is physically present (no SU3/SU4 ran).
  EXPECT_EQ(RawIndexRows("items", "by_title", "old"),
            std::set<std::string>{"aa-1"});

  // A read through GetByIndex double-checks and returns nothing...
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "old", &hits).ok());
  EXPECT_TRUE(hits.empty());
  // ...and lazily repaired the index.
  EXPECT_TRUE(RawIndexRows("items", "by_title", "old").empty());

  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "new", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
}

TEST_F(SchemesTest, SyncInsertRepairsDeletedRow) {
  CreateIndexedTable("items", IndexScheme::kSyncInsert);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "w").ok());
  ASSERT_TRUE(client_->DeleteColumns("items", "aa-1", {"title"}).ok());
  // Entry still physically there (insert-only scheme)...
  EXPECT_EQ(RawIndexRows("items", "by_title", "w"),
            std::set<std::string>{"aa-1"});
  // ...but filtered and repaired on read.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "w", &hits).ok());
  EXPECT_TRUE(hits.empty());
  EXPECT_TRUE(RawIndexRows("items", "by_title", "w").empty());
}

TEST_F(SchemesTest, SyncInsertFreshEntryIsNotRepairedAway) {
  CreateIndexedTable("items", IndexScheme::kSyncInsert);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "keep").ok());
  for (int i = 0; i < 3; i++) {
    std::vector<IndexHit> hits;
    ASSERT_TRUE(client_->GetByIndex("items", "by_title", "keep", &hits).ok());
    EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
  }
}

// ---- async-simple (Algorithms 3-4) ----

TEST_F(SchemesTest, AsyncSimpleEventuallyConsistent) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  for (int i = 0; i < 30; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 9) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "async-v").ok());
  }
  WaitForQuiescence();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_title", "async-v", &hits).ok());
  EXPECT_EQ(hits.size(), 30u);
}

TEST_F(SchemesTest, AsyncSimpleUpdateEventuallyRemovesOldEntry) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "before").ok());
  WaitForQuiescence();
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "after").ok());
  WaitForQuiescence();
  EXPECT_TRUE(RawIndexRows("items", "by_title", "before").empty());
  EXPECT_EQ(RawIndexRows("items", "by_title", "after"),
            std::set<std::string>{"aa-1"});
}

TEST_F(SchemesTest, AsyncStalenessProbeRecordsLag) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  for (int i = 0; i < 20; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 9) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "t").ok());
  }
  WaitForQuiescence();
  Histogram staleness;
  cluster_->AggregateStaleness(&staleness);
  EXPECT_GT(staleness.Count(), 0u);
}

// ---- Drain-before-flush invariant (Section 5.3, Figure 5) ----

TEST_F(SchemesTest, FlushDrainsAuqFirst) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  for (int i = 0; i < 50; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 5) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "drained").ok());
  }
  // Flush every region WITHOUT waiting: PreFlush must pause + drain, so
  // right after the flush the queues are empty — PR(Flushed) = ∅.
  ASSERT_TRUE(client_->raw_client()->FlushTable("items").ok());
  for (NodeId id : cluster_->server_ids()) {
    EXPECT_EQ(cluster_->index_manager(id)->QueueDepth(), 0u)
        << "server " << id;
  }
  // And the index is complete.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_title", "drained", &hits).ok());
  EXPECT_EQ(hits.size(), 50u);
}

// ---- AUQ failure recovery (Section 5.3) ----

TEST_F(SchemesTest, AsyncIndexRecoversAfterServerCrash) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  for (int i = 0; i < 80; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 3) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "survive").ok());
  }
  // Crash a server immediately: its AUQ (with possibly pending tasks) and
  // memtables are gone. Recovery replays the WAL and re-enqueues every
  // replayed put, so the index converges.
  ASSERT_TRUE(cluster_->KillServer(2).ok());
  WaitForQuiescence();

  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_title", "survive", &hits).ok());
  EXPECT_EQ(hits.size(), 80u);
  // Every hit resolves to a real base row.
  for (const auto& hit : hits) {
    std::string value;
    EXPECT_TRUE(client_->Get("items", hit.base_row, "title", &value).ok());
    EXPECT_EQ(value, "survive");
  }
}

TEST_F(SchemesTest, SyncFullIndexSurvivesServerCrash) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  for (int i = 0; i < 60; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 7) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "sf").ok());
  }
  ASSERT_TRUE(cluster_->KillServer(1).ok());
  WaitForQuiescence();
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "sf", &hits).ok());
  EXPECT_EQ(hits.size(), 60u);
}

TEST_F(SchemesTest, DuplicateIndexDeliveryIsIdempotent) {
  // Crash recovery re-enqueues every replayed put "regardless of whether
  // it has been delivered before" — the index must not double-count.
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "dup").ok());
  WaitForQuiescence();  // delivered once already
  ASSERT_TRUE(cluster_->KillServer(1).ok());
  WaitForQuiescence();  // recovery may deliver again
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "dup", &hits).ok());
  EXPECT_EQ(hits.size(), 1u);
}

// ---- Session consistency (Sections 3.3 and 5.2) ----

TEST_F(SchemesTest, SessionMatrixOfSection33) {
  // The social-review scenario: User 1 posts a review for product A and
  // must see it in his own index lookup; User 2 is not guaranteed to.
  CreateIndexedTable("reviews", IndexScheme::kAsyncSession, "product");

  auto user1 = cluster_->NewDiffIndexClient();
  auto user2 = cluster_->NewDiffIndexClient();
  const SessionId s1 = user1->GetSession();
  const SessionId s2 = user2->GetSession();

  // User 1 posts a review for product A (async index: not yet visible).
  ASSERT_TRUE(user1->SessionPut(s1, "reviews", "aa-review-1",
                                {Cell{"product", "productA", false}})
                  .ok());

  // Read-your-write: User 1 sees his review immediately.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(user1->SessionGetByIndex(s1, "reviews", "by_product",
                                       "productA", &hits)
                  .ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-review-1"});

  // User 2 may or may not see it (eventual); after the AUQ drains he must.
  WaitForQuiescence();
  ASSERT_TRUE(user2->SessionGetByIndex(s2, "reviews", "by_product",
                                       "productA", &hits)
                  .ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-review-1"});

  user1->EndSession(s1);
  user2->EndSession(s2);
}

TEST_F(SchemesTest, SessionSeesOwnUpdateNotStaleValue) {
  CreateIndexedTable("items", IndexScheme::kAsyncSession);
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v1").ok());
  WaitForQuiescence();  // v1 entry delivered

  const SessionId s = client_->GetSession();
  ASSERT_TRUE(client_->SessionPut(s, "items", "aa-1",
                                  {Cell{"title", "v2", false}})
                  .ok());
  // Without draining: the server index still maps aa-1 to v1, but the
  // session must already see v2 and must NOT see v1.
  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->SessionGetByIndex(s, "items", "by_title", "v2", &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
  ASSERT_TRUE(
      client_->SessionGetByIndex(s, "items", "by_title", "v1", &hits).ok());
  EXPECT_TRUE(hits.empty());
  client_->EndSession(s);
}

TEST_F(SchemesTest, EndedSessionExpires) {
  CreateIndexedTable("items", IndexScheme::kAsyncSession);
  const SessionId s = client_->GetSession();
  client_->EndSession(s);
  Status status = client_->SessionPut(s, "items", "aa-1",
                                      {Cell{"title", "x", false}});
  // The base put happens before session bookkeeping; bookkeeping reports
  // the expired session.
  EXPECT_TRUE(status.IsSessionExpired());
}

// ---- Composite index ----

TEST_F(SchemesTest, CompositeIndexMatchesBothColumns) {
  CreateIndexedTable("items", IndexScheme::kSyncFull, "category",
                     {"subcategory"});
  ASSERT_TRUE(client_->Put("items", "aa-1",
                           {Cell{"category", "tools", false},
                            Cell{"subcategory", "saws", false}})
                  .ok());
  ASSERT_TRUE(client_->Put("items", "bb-2",
                           {Cell{"category", "tools", false},
                            Cell{"subcategory", "drills", false}})
                  .ok());

  std::vector<IndexHit> hits;
  const std::string value = EncodeCompositeIndexValue({"tools", "saws"});
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_category", value, &hits).ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});

  // Range over the leading component: both rows.
  const std::string lo = EncodeCompositeIndexValue({"tools"});
  const std::string hi = EncodeCompositeIndexValue({"toolt"});
  ASSERT_TRUE(client_->RangeByIndex("items", "by_category", lo, hi, 0, &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(SchemesTest, CompositeIndexUpdateOfOneComponent) {
  CreateIndexedTable("items", IndexScheme::kSyncFull, "category",
                     {"subcategory"});
  ASSERT_TRUE(client_->Put("items", "aa-1",
                           {Cell{"category", "tools", false},
                            Cell{"subcategory", "saws", false}})
                  .ok());
  // Update only the subcategory; the observer resolves the other
  // component from the base table.
  ASSERT_TRUE(
      client_->PutColumn("items", "aa-1", "subcategory", "hammers").ok());

  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->GetByIndex("items", "by_category",
                               EncodeCompositeIndexValue({"tools", "hammers"}),
                               &hits)
                  .ok());
  EXPECT_EQ(HitRows(hits), std::set<std::string>{"aa-1"});
  ASSERT_TRUE(client_
                  ->GetByIndex("items", "by_category",
                               EncodeCompositeIndexValue({"tools", "saws"}),
                               &hits)
                  .ok());
  EXPECT_TRUE(hits.empty());
}

// ---- Range queries ----

TEST_F(SchemesTest, RangeByIndexOverNumericValues) {
  CreateIndexedTable("items", IndexScheme::kSyncFull, "price");
  for (uint64_t price = 0; price < 50; price++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-p%llu", static_cast<unsigned>(price * 5),
             static_cast<unsigned long long>(price));
    ASSERT_TRUE(client_->PutColumn("items", row, "price",
                                   EncodeUint64IndexValue(price))
                    .ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->RangeByIndex("items", "by_price",
                                 EncodeUint64IndexValue(10),
                                 EncodeUint64IndexValue(20), 0, &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 10u);
  for (const auto& hit : hits) {
    uint64_t price;
    ASSERT_TRUE(DecodeUint64IndexValue(hit.value_encoded, &price));
    EXPECT_GE(price, 10u);
    EXPECT_LT(price, 20u);
  }
}

TEST_F(SchemesTest, RangeByIndexLimit) {
  CreateIndexedTable("items", IndexScheme::kSyncFull, "price");
  for (uint64_t price = 0; price < 30; price++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-p", static_cast<unsigned>(price * 8));
    ASSERT_TRUE(client_->PutColumn("items", row, "price",
                                   EncodeUint64IndexValue(price))
                    .ok());
  }
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_
                  ->RangeByIndex("items", "by_price",
                                 EncodeUint64IndexValue(0),
                                 EncodeUint64IndexValue(30), 5, &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 5u);
}

// ---- Backfill & cleanse ----

TEST_F(SchemesTest, BackfillIndexesPreexistingData) {
  ASSERT_TRUE(cluster_->master()->CreateTable("items").ok());
  auto raw = client_->raw_client();
  for (int i = 0; i < 40; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 6) % 256, i);
    ASSERT_TRUE(raw->PutColumn("items", row, "title", "pre-existing").ok());
  }
  // CREATE INDEX after the data exists.
  IndexDescriptor index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = IndexScheme::kSyncFull;
  ASSERT_TRUE(cluster_->master()->CreateIndex("items", index).ok());
  ASSERT_TRUE(raw->RefreshLayout().ok());

  IndexBackfill backfill(cluster_->NewClient(), cluster_->stats());
  BackfillReport report;
  ASSERT_TRUE(backfill.Run("items", "by_title", &report).ok());
  EXPECT_EQ(report.rows_scanned, 40u);
  EXPECT_EQ(report.entries_written, 40u);

  std::vector<IndexHit> hits;
  ASSERT_TRUE(
      client_->GetByIndex("items", "by_title", "pre-existing", &hits).ok());
  EXPECT_EQ(hits.size(), 40u);
}

TEST_F(SchemesTest, CleansePurgesStaleEntries) {
  CreateIndexedTable("items", IndexScheme::kSyncInsert);
  for (int i = 0; i < 20; i++) {
    char row[16];
    snprintf(row, sizeof(row), "%02x-%d", (i * 11) % 256, i);
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "v1").ok());
    ASSERT_TRUE(client_->PutColumn("items", row, "title", "v2").ok());
  }
  // 20 stale v1 entries linger (sync-insert never deletes inline).
  IndexBackfill backfill(cluster_->NewClient(), cluster_->stats());
  CleanseReport report;
  ASSERT_TRUE(backfill.Cleanse("items", "by_title", &report).ok());
  EXPECT_EQ(report.stale_removed, 20u);
  EXPECT_TRUE(RawIndexRows("items", "by_title", "v1").empty());
  EXPECT_EQ(RawIndexRows("items", "by_title", "v2").size(), 20u);
}

// ---- Table 2: I/O cost accounting ----

TEST_F(SchemesTest, Table2CostsSyncFull) {
  CreateIndexedTable("items", IndexScheme::kSyncFull);
  cluster_->stats()->Reset();
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v1").ok());
  // Update so the delete path (the "+1") is exercised.
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v2").ok());
  OpStats::Snapshot s = cluster_->stats()->snapshot();
  EXPECT_EQ(s.base_put, 2u);
  EXPECT_EQ(s.base_read, 2u);   // 1 per update (SU3)
  EXPECT_EQ(s.index_put, 3u);   // 2x SU2 + 1x SU4 (no old value on insert)
  EXPECT_EQ(s.index_read, 0u);
  EXPECT_EQ(s.async_index_put, 0u);
}

TEST_F(SchemesTest, Table2CostsSyncInsert) {
  CreateIndexedTable("items", IndexScheme::kSyncInsert);
  cluster_->stats()->Reset();
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v1").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v2").ok());
  OpStats::Snapshot s = cluster_->stats()->snapshot();
  EXPECT_EQ(s.base_put, 2u);
  EXPECT_EQ(s.base_read, 0u);  // the whole point of sync-insert
  EXPECT_EQ(s.index_put, 2u);  // SU2 only
  // Index read pays K base reads (K = 2 entries: one stale).
  std::vector<IndexHit> hits;
  ASSERT_TRUE(client_->GetByIndex("items", "by_title", "v1", &hits).ok());
  s = cluster_->stats()->snapshot();
  EXPECT_EQ(s.index_read, 1u);
  EXPECT_GE(s.base_read, 1u);   // double-check of the stale entry
  EXPECT_GE(s.index_put, 3u);   // repair delete
}

TEST_F(SchemesTest, Table2CostsAsyncSimple) {
  CreateIndexedTable("items", IndexScheme::kAsyncSimple);
  cluster_->stats()->Reset();
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v1").ok());
  ASSERT_TRUE(client_->PutColumn("items", "aa-1", "title", "v2").ok());
  WaitForQuiescence();
  OpStats::Snapshot s = cluster_->stats()->snapshot();
  EXPECT_EQ(s.base_put, 2u);
  EXPECT_EQ(s.base_read, 0u);       // nothing in the foreground path
  EXPECT_EQ(s.index_put, 0u);
  EXPECT_GE(s.async_base_read, 2u);  // BA2, in background ("[ ]")
  EXPECT_GE(s.async_index_put, 3u);  // BA3 + BA4
}

// ---- Property test: eventual base/index agreement under random ops ----

class SchemePropertyTest : public SchemesTest,
                           public ::testing::WithParamInterface<IndexScheme> {
};

TEST_P(SchemePropertyTest, RandomWorkloadConvergesToBaseTruth) {
  const IndexScheme scheme = GetParam();
  CreateIndexedTable("items", scheme);

  Random rng(314159 + static_cast<int>(scheme));
  std::map<std::string, std::string> model;  // row -> current title
  for (int i = 0; i < 400; i++) {
    char buf[24];
    snprintf(buf, sizeof(buf), "%02x-r%llu",
             static_cast<unsigned>(rng.Uniform(256)),
             static_cast<unsigned long long>(rng.Uniform(60)));
    const std::string row = buf;
    if (!model.count(row) || !rng.OneIn(5)) {
      const std::string title = "t" + std::to_string(rng.Uniform(10));
      ASSERT_TRUE(client_->PutColumn("items", row, "title", title).ok());
      model[row] = title;
    } else {
      ASSERT_TRUE(client_->DeleteColumns("items", row, {"title"}).ok());
      model.erase(row);
    }
    if (rng.OneIn(100)) {
      ASSERT_TRUE(client_->raw_client()->FlushTable("items").ok());
    }
  }
  WaitForQuiescence();

  // Ground truth: value -> rows.
  std::map<std::string, std::set<std::string>> truth;
  for (const auto& [row, title] : model) truth[title].insert(row);

  for (int v = 0; v < 10; v++) {
    const std::string title = "t" + std::to_string(v);
    std::vector<IndexHit> hits;
    ASSERT_TRUE(
        client_->GetByIndex("items", "by_title", title, &hits).ok());
    std::set<std::string> got = HitRows(hits);
    if (scheme == IndexScheme::kSyncInsert) {
      // Repair already filtered stale entries.
      EXPECT_EQ(got, truth[title]) << title;
    } else {
      EXPECT_EQ(got, truth[title]) << title << " under scheme "
                                   << IndexSchemeName(scheme);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemePropertyTest,
                         ::testing::Values(IndexScheme::kSyncFull,
                                           IndexScheme::kSyncInsert,
                                           IndexScheme::kAsyncSimple),
                         [](const auto& info) {
                           return std::string(IndexSchemeName(info.param))
                                      .find("full") != std::string::npos
                                      ? "sync_full"
                                  : info.param == IndexScheme::kSyncInsert
                                      ? "sync_insert"
                                      : "async_simple";
                         });

}  // namespace
}  // namespace diffindex
