// Crash-mid-batch chaos: the "auq.batch" failpoint crashes a server while
// a coalesced batch is in flight. Replay must re-enqueue the covered base
// puts from the WAL, and the index must converge with no lost entry (a
// coalesced-away task whose effect vanished) and no phantom entry (an
// intermediate value the batch half-delivered and nobody retracts).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "fault/failpoint.h"
#include "util/random.h"

namespace diffindex {
namespace {

std::string ValueName(int v) { return "v" + std::to_string(v); }

class AuqBatchCrashChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_servers = 3;
    options.regions_per_table = 6;
    options.auq.drain_batch_size = 8;
    options.auq.retry_backoff_ms = 1;
    options.client.retry_backoff_ms = 1;
    options.client.retry_backoff_max_ms = 8;
    ASSERT_TRUE(Cluster::Create(options, &cluster_).ok());
    client_ = cluster_->NewDiffIndexClient();

    ASSERT_TRUE(cluster_->master()->CreateTable("t").ok());
    IndexDescriptor index;
    index.name = "by_c";
    index.column = "c";
    index.scheme = IndexScheme::kAsyncSimple;
    ASSERT_TRUE(cluster_->master()->CreateIndex("t", index).ok());
    ASSERT_TRUE(client_->raw_client()->RefreshLayout().ok());
  }

  void WaitForQuiescence() {
    for (int i = 0; i < 5000; i++) {
      bool all_empty = true;
      for (NodeId id : cluster_->server_ids()) {
        if (cluster_->index_manager(id)->QueueDepth() > 0) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "AUQ did not drain";
  }

  std::set<std::string> RawIndexRows(const std::string& value) {
    IndexDescriptor index;
    EXPECT_TRUE(client_->reader()->FindIndex("t", "by_c", &index).ok());
    std::vector<ScannedRow> rows;
    EXPECT_TRUE(client_->raw_client()
                    ->ScanRows(index.index_table,
                               IndexScanStartForValue(value),
                               IndexScanEndForValue(value), kMaxTimestamp, 0,
                               &rows)
                    .ok());
    std::set<std::string> result;
    for (const auto& row : rows) {
      std::string value_encoded, base_row;
      if (DecodeIndexRow(row.row, &value_encoded, &base_row)) {
        result.insert(base_row);
      }
    }
    return result;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DiffIndexClient> client_;
};

TEST_F(AuqBatchCrashChaosTest, CrashMidBatchLosesNothingGainsNothing) {
  const uint64_t seed = 0xBA7C4A54ULL;
  fault::ScopedFailpointCleanup cleanup;

  // The handler runs ON the APS worker that hit the point; it only
  // requests the crash, the test thread executes it (killing the server
  // from inside its own worker would deadlock the shutdown).
  std::atomic<int> crash_requests{0};
  auto* failpoints = fault::FailpointRegistry::Global();
  failpoints->SetCrashHandler(
      [&crash_requests](const std::string&) { crash_requests.fetch_add(1); });

  Random rng(static_cast<uint32_t>(seed));
  std::map<std::string, std::string> model;  // row -> current value
  auto do_op = [&](int i) {
    char buf[16];
    const uint32_t r = rng.Uniform(12);  // small: batches coalesce heavily
    snprintf(buf, sizeof(buf), "%02x-r%u", (r * 37) % 256, r);
    const std::string row = buf;
    if (model.count(row) && rng.OneIn(6)) {
      ASSERT_TRUE(client_->DeleteColumns("t", row, {"c"}).ok()) << "op " << i;
      model.erase(row);
    } else {
      const std::string value = ValueName(rng.Uniform(5));
      ASSERT_TRUE(client_->PutColumn("t", row, "c", value).ok()) << "op " << i;
      model[row] = value;
    }
  };

  // Phase 1: build up state and let some of it deliver cleanly.
  for (int i = 0; i < 60; i++) do_op(i);

  // Phase 2: every batch delivery "crashes the server" (and fails the
  // batch). Keep writing underneath so batches are actually in flight.
  failpoints->Arm("auq.batch", fault::FailpointPolicy::Crash(1.0, seed));
  for (int i = 0; i < 40; i++) do_op(1000 + i);
  for (int i = 0; i < 2000 && crash_requests.load() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(crash_requests.load(), 0) << "no batch was ever in flight";
  failpoints->Disarm("auq.batch");
  failpoints->SetCrashHandler(nullptr);

  // Execute one crash: the victim's queued + in-flight batches die with
  // it; recovery replays its WAL and re-enqueues every replayed put.
  std::vector<NodeId> ids = cluster_->server_ids();
  ASSERT_TRUE(cluster_->KillServer(ids[seed % ids.size()]).ok());

  // Phase 3: a little post-crash traffic, then converge.
  for (int i = 0; i < 20; i++) do_op(2000 + i);
  WaitForQuiescence();

  // Ground truth from the model: no lost entries, no phantoms.
  std::map<std::string, std::set<std::string>> truth;
  for (const auto& [row, value] : model) truth[value].insert(row);
  for (int v = 0; v < 5; v++) {
    const std::string value = ValueName(v);
    EXPECT_EQ(RawIndexRows(value), truth[value]) << "value " << value;
  }
}

}  // namespace
}  // namespace diffindex
