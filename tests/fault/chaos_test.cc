// Seeded chaos schedules across all four index schemes, plus the
// drain-before-flush regression. Each schedule prints its seed; to replay a
// failure, re-run with the printed seed (see EXPERIMENTS.md, "Replaying a
// chaos failure"). The base seed can be overridden through the
// DIFFINDEX_CHAOS_SEED environment variable — CI runs one job with a
// time-derived seed (echoed into the log) on top of the pinned default.

#include "chaos_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace diffindex {
namespace chaos {
namespace {

constexpr int kSchedulesPerScheme = 6;

uint64_t BaseSeed() {
  const char* env = std::getenv("DIFFINDEX_CHAOS_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xD1FF1DE0ULL;  // pinned default: deterministic CI baseline
}

void RunSchedules(IndexScheme scheme) {
  const uint64_t base = BaseSeed();
  for (int i = 0; i < kSchedulesPerScheme; i++) {
    ChaosOptions options;
    options.scheme = scheme;
    options.seed = base + static_cast<uint64_t>(i) * 7919;
    ChaosReport report = RunChaosSchedule(options);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ChaosTest, SyncFullSurvivesSeededSchedules) {
  RunSchedules(IndexScheme::kSyncFull);
}

TEST(ChaosTest, SyncInsertSurvivesSeededSchedules) {
  RunSchedules(IndexScheme::kSyncInsert);
}

TEST(ChaosTest, AsyncSimpleSurvivesSeededSchedules) {
  RunSchedules(IndexScheme::kAsyncSimple);
}

TEST(ChaosTest, AsyncSessionSurvivesSeededSchedules) {
  RunSchedules(IndexScheme::kAsyncSession);
}

// The harness must DETECT broken invariants, not just tolerate faults:
// skipping the Section 5.3 drain-before-flush barrier (via the "auq.drain"
// failpoint) strands undelivered index tasks behind the flush point, and a
// crash then loses them for good. The same schedule with the barrier intact
// verifies clean — the violation is the barrier's absence, nothing else.
TEST(ChaosTest, BrokenDrainInvariantIsCaught) {
  ChaosReport broken = RunBrokenDrainScenario(BaseSeed(), true);
  bool lost_entry = false;
  for (const std::string& v : broken.violations) {
    if (v.find("lost index entry") != std::string::npos) lost_entry = true;
  }
  EXPECT_TRUE(lost_entry)
      << "disabling drain-before-flush went undetected: " << broken.Summary();
}

TEST(ChaosTest, IntactDrainInvariantVerifiesClean) {
  ChaosReport intact = RunBrokenDrainScenario(BaseSeed(), false);
  EXPECT_TRUE(intact.ok()) << intact.Summary();
}

// Checkpointed-recovery scenarios (several seeds each; replay a failure
// by re-running with the printed seed).
void RunRecoverySeeds(RecoveryScenario scenario) {
  const uint64_t base = BaseSeed();
  for (int i = 0; i < 4; i++) {
    ChaosReport report =
        RunRecoveryScenario(base + static_cast<uint64_t>(i) * 104729, scenario);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(ChaosTest, KillRecoveringOwnerConverges) {
  RunRecoverySeeds(RecoveryScenario::kKillRecoveringOwner);
}

TEST(ChaosTest, CorruptCheckpointNeverLosesData) {
  RunRecoverySeeds(RecoveryScenario::kCorruptCheckpoint);
}

TEST(ChaosTest, GcRacingFailoverKeepsAckedWrites) {
  RunRecoverySeeds(RecoveryScenario::kGcRacesFailover);
}

}  // namespace
}  // namespace chaos
}  // namespace diffindex
