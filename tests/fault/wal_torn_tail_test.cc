// Torn WAL tails, produced by FaultEnv short writes on the real append
// path (not hand-edited files): the reader must recover every complete
// record and flag only the tear; recovery must replay exactly the intact
// prefix; and a region server whose append tore must roll to a fresh WAL
// so later acked edits never land behind the tear.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/region_server.h"
#include "fault/fault_env.h"
#include "lsm/wal.h"
#include "util/env.h"

namespace diffindex {
namespace {

class WalTornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "wal_torn_" +
           std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }
  std::string dir_;
};

// Record framing is [crc:4][len:4][payload]; an 8-byte payload makes each
// record 16 bytes, so byte budgets can target exact tear positions.
constexpr uint64_t kRecordBytes = 16;

std::string Payload(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "record-%01d", i);
  return buf;
}

void WriteTornLog(const std::string& path, int full_records,
                  uint64_t extra_bytes) {
  fault::FaultEnv env(Env::Default());
  fault::FaultEnv::Rule rule;
  rule.path_substring = ".log";
  rule.kind = fault::FaultEnv::Rule::Kind::kShortWrite;
  rule.byte_budget = full_records * kRecordBytes + extra_bytes;
  env.AddRule(rule);

  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(
      wal::Writer::Open(&env, path, wal::SyncMode::kNone, &writer).ok());
  for (int i = 0; i < full_records; i++) {
    ASSERT_TRUE(writer->AddRecord(Payload(i)).ok());
  }
  // The crossing record: its prefix lands, the append reports failure —
  // exactly what a crash mid-write leaves behind.
  EXPECT_FALSE(writer->AddRecord(Payload(full_records)).ok());
  (void)writer->Close();
}

void ExpectRecovers(const std::string& path, int expect_records,
                    bool expect_corruption) {
  std::unique_ptr<wal::Reader> reader;
  ASSERT_TRUE(wal::Reader::Open(Env::Default(), path, &reader).ok());
  std::string payload;
  int got = 0;
  while (reader->ReadRecord(&payload)) {
    EXPECT_EQ(payload, Payload(got));
    got++;
  }
  EXPECT_EQ(got, expect_records);
  EXPECT_EQ(reader->corruption(), expect_corruption);
}

TEST_F(WalTornTailTest, TornBodyRecoversCompletePrefix) {
  const std::string path = dir_ + "/torn_body.log";
  WriteTornLog(path, 3, /*extra_bytes=*/8 + 2);  // header + 2 body bytes
  ExpectRecovers(path, 3, /*expect_corruption=*/true);
}

TEST_F(WalTornTailTest, TornHeaderRecoversCompletePrefix) {
  const std::string path = dir_ + "/torn_header.log";
  WriteTornLog(path, 3, /*extra_bytes=*/3);  // partial header only
  ExpectRecovers(path, 3, /*expect_corruption=*/true);
}

TEST_F(WalTornTailTest, CleanLogReportsNoCorruption) {
  const std::string path = dir_ + "/clean.log";
  std::unique_ptr<wal::Writer> writer;
  ASSERT_TRUE(wal::Writer::Open(Env::Default(), path, wal::SyncMode::kNone,
                                &writer)
                  .ok());
  for (int i = 0; i < 3; i++) ASSERT_TRUE(writer->AddRecord(Payload(i)).ok());
  ASSERT_TRUE(writer->Close().ok());
  ExpectRecovers(path, 3, /*expect_corruption=*/false);
}

// Region-level recovery over a torn log: the intact prefix is replayed and
// re-enqueued into index maintenance (Section 5.3 requirement (2)); the
// torn suffix is discarded.
TEST_F(WalTornTailTest, RecoveryReplaysIntactPrefixAndReenqueues) {
  struct RecordingHooks final : public IndexMaintenanceHooks {
    std::vector<std::string> replayed;
    Status PostApply(const PutRequest&, Timestamp) override {
      return Status::OK();
    }
    void PreFlush(const std::string&) override {}
    void PostFlush(const std::string&) override {}
    void OnWalReplay(const PutRequest& put, Timestamp) override {
      replayed.push_back(put.row);
    }
    void OnRegionOpened(const std::string&, uint64_t) override {}
    uint64_t QueueDepth() const override { return 0; }
  };

  // A "dead server's" WAL with 4 edits for region t/r1, the 4th torn: its
  // append fails partway through the record body.
  const std::string wal_path = dir_ + "/dead_server.log";
  {
    fault::FaultEnv env(Env::Default());
    std::unique_ptr<wal::Writer> writer;
    ASSERT_TRUE(
        wal::Writer::Open(&env, wal_path, wal::SyncMode::kNone, &writer)
            .ok());
    uint64_t intact_bytes = 0;
    for (int i = 1; i <= 4; i++) {
      WalEdit edit;
      edit.table = "t";
      edit.region_id = 1;
      edit.seq = i;
      edit.row = "row-" + std::to_string(i);
      edit.cells = {Cell{"c", "value-" + std::to_string(i), false}};
      edit.ts = 100 + i;
      std::string payload;
      edit.EncodeTo(&payload);
      if (i == 4) {
        fault::FaultEnv::Rule rule;
        rule.kind = fault::FaultEnv::Rule::Kind::kShortWrite;
        rule.byte_budget = intact_bytes + 8 + payload.size() / 2;
        env.AddRule(rule);
        EXPECT_FALSE(writer->AddRecord(payload).ok());
      } else {
        ASSERT_TRUE(writer->AddRecord(payload).ok());
        intact_bytes += 8 + payload.size();
      }
    }
    (void)writer->Close();
  }

  LatencyModel latency;
  Fabric fabric(&latency);
  RegionServerOptions options;
  RegionServer server(7, dir_, &fabric, options);
  ASSERT_TRUE(server.Start().ok());
  RecordingHooks hooks;
  server.SetHooks(&hooks);

  RegionInfoWire info;
  info.table = "t";
  info.region_id = 1;
  info.start_row = "";
  info.end_row = "";
  info.server_id = 7;
  ASSERT_TRUE(server.OpenRegionWithRecovery(info, {wal_path}).ok());

  EXPECT_EQ(hooks.replayed,
            (std::vector<std::string>{"row-1", "row-2", "row-3"}));
  ASSERT_TRUE(server.Stop().ok());
}

// End-to-end: a torn append inside a live cluster fails the put, the
// server rolls to a fresh WAL, and a subsequent crash + recovery restores
// every ACKED write while the torn (never-acked) record stays dead.
TEST_F(WalTornTailTest, TornAppendRollsWalAndAckedWritesSurviveCrash) {
  fault::FaultEnv fenv(Env::Default());
  ClusterOptions copt;
  copt.num_servers = 2;
  copt.regions_per_table = 2;
  copt.auq.retry_backoff_ms = 1;
  copt.client.retry_backoff_ms = 1;
  copt.client.retry_backoff_max_ms = 8;
  copt.env = &fenv;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(copt, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());

  fault::FaultEnv::Rule rule;
  rule.path_substring = ".log";
  rule.kind = fault::FaultEnv::Rule::Kind::kShortWrite;
  rule.byte_budget = 256;
  fenv.AddRule(rule);

  std::set<std::string> acked;
  std::string torn_row;
  for (int i = 0; i < 100 && torn_row.empty(); i++) {
    const std::string row = "row-" + std::to_string(i);
    Status s = client->PutColumn("t", row, "c", "v");
    if (s.ok()) {
      acked.insert(row);
    } else {
      torn_row = row;  // the append tore; this put was never acked
    }
  }
  ASSERT_FALSE(torn_row.empty()) << "short-write rule never triggered";
  fenv.ClearRules();

  // The server rolled its WAL on the failed append: new writes land on a
  // fresh file, past the tear.
  const std::string after_roll = "zz-after-roll";
  ASSERT_TRUE(client->PutColumn("t", after_roll, "c", "v").ok());
  acked.insert(after_roll);

  RegionInfoWire info;
  ASSERT_TRUE(client->RouteRow("t", torn_row, &info).ok());
  ASSERT_TRUE(cluster->KillServer(info.server_id).ok());
  ASSERT_TRUE(client->RefreshLayout().ok());

  for (const std::string& row : acked) {
    std::string value;
    ASSERT_TRUE(client->GetCell("t", row, "c", kMaxTimestamp, &value).ok())
        << "acked write to " << row << " lost after crash recovery";
    EXPECT_EQ(value, "v");
  }
  std::string value;
  EXPECT_TRUE(client->GetCell("t", torn_row, "c", kMaxTimestamp, &value).IsNotFound())
      << "torn (never-acked) record resurrected by recovery";
}

}  // namespace
}  // namespace diffindex
