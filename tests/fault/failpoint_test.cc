#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace diffindex {
namespace fault {
namespace {

TEST(FailpointTest, UnarmedPointNeverFires) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  EXPECT_FALSE(reg->IsArmed("nope"));
  EXPECT_TRUE(reg->MaybeFail("nope").ok());
  EXPECT_FALSE(reg->Fires("nope"));
}

TEST(FailpointTest, ErrorOnceFiresExactlyOnce) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  reg->Arm("p", FailpointPolicy::ErrorOnce(Status::Corruption("boom")));
  Status s = reg->MaybeFail("p");
  EXPECT_TRUE(s.IsCorruption());
  for (int i = 0; i < 10; i++) EXPECT_TRUE(reg->MaybeFail("p").ok());
  EXPECT_EQ(reg->hits("p"), 11u);
  EXPECT_EQ(reg->fires("p"), 1u);
}

TEST(FailpointTest, ErrorEveryNthFiresOnMultiples) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  reg->Arm("p", FailpointPolicy::ErrorEveryNth(3));
  int fired = 0;
  for (int i = 1; i <= 9; i++) {
    if (!reg->MaybeFail("p").ok()) {
      fired++;
      EXPECT_EQ(i % 3, 0) << "fired on hit " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST(FailpointTest, ProbabilityIsSeededAndReplays) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();

  auto run = [&] {
    reg->Arm("p", FailpointPolicy::WithProbability(0.5, 42));
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; i++) outcomes.push_back(!reg->MaybeFail("p").ok());
    return outcomes;
  };
  const auto a = run();
  const auto b = run();  // re-arming resets the PRNG: bit-for-bit replay
  EXPECT_EQ(a, b);

  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(FailpointTest, DisarmStopsFiring) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  reg->Arm("p", FailpointPolicy::ErrorEveryNth(1));
  EXPECT_FALSE(reg->MaybeFail("p").ok());
  reg->Disarm("p");
  EXPECT_FALSE(reg->IsArmed("p"));
  EXPECT_TRUE(reg->MaybeFail("p").ok());
}

TEST(FailpointTest, CrashPolicyInvokesHandlerAndFailsTheHit) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  std::vector<std::string> crashed;
  reg->SetCrashHandler(
      [&crashed](const std::string& point) { crashed.push_back(point); });
  reg->Arm("p", FailpointPolicy::Crash(1.0));
  EXPECT_FALSE(reg->MaybeFail("p").ok());
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], "p");
}

TEST(FailpointTest, FiresBumpMetricsCounter) {
  ScopedFailpointCleanup cleanup;
  obs::MetricsRegistry metrics;
  auto* reg = FailpointRegistry::Global();
  reg->SetMetrics(&metrics);
  reg->Arm("wal.append", FailpointPolicy::ErrorEveryNth(2));
  for (int i = 0; i < 6; i++) (void)reg->MaybeFail("wal.append");
  EXPECT_EQ(metrics.GetCounter("fault.injected.wal.append")->value(), 3u);
  reg->SetMetrics(nullptr);
}

TEST(FailpointTest, ConcurrentHitsStayConsistent) {
  ScopedFailpointCleanup cleanup;
  auto* reg = FailpointRegistry::Global();
  reg->Arm("p", FailpointPolicy::ErrorEveryNth(2));
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; i++) {
        if (!reg->MaybeFail("p").ok()) fired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg->hits("p"), 4000u);
  EXPECT_EQ(fired.load(), 2000);
}

}  // namespace
}  // namespace fault
}  // namespace diffindex
