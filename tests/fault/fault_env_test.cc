#include "fault/fault_env.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "util/env.h"

namespace diffindex {
namespace fault {
namespace {

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "fault_env_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override {
    (void)Env::Default()->RemoveDirRecursively(dir_);
  }

  std::string ReadAll(const std::string& path) {
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(Env::Default()->NewRandomAccessFile(path, &file).ok());
    std::string scratch(file->Size(), '\0');
    Slice result;
    EXPECT_TRUE(
        file->Read(0, scratch.size(), &result, scratch.data()).ok());
    return std::string(result.data(), result.size());
  }

  std::string dir_;
};

TEST_F(FaultEnvTest, PassesThroughWithoutRules) {
  FaultEnv env(Env::Default());
  const std::string path = dir_ + "/plain.log";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("hello").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadAll(path), "hello");
  EXPECT_EQ(env.injected(), 0u);
}

TEST_F(FaultEnvTest, ShortWriteTearsTheCrossingAppend) {
  FaultEnv env(Env::Default());
  FaultEnv::Rule rule;
  rule.path_substring = ".log";
  rule.kind = FaultEnv::Rule::Kind::kShortWrite;
  rule.byte_budget = 10;
  env.AddRule(rule);

  const std::string path = dir_ + "/torn.log";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("12345678").ok());  // 8 bytes, within budget
  Status s = file->Append("ABCDEFGH");         // crosses: 2 bytes land
  EXPECT_TRUE(s.IsIOError());
  (void)file->Close();
  EXPECT_EQ(ReadAll(path), "12345678AB");
  EXPECT_EQ(env.injected(), 1u);
}

TEST_F(FaultEnvTest, DiskFullRefusesTheCrossingAppendEntirely) {
  FaultEnv env(Env::Default());
  FaultEnv::Rule rule;
  rule.path_substring = ".sst";
  rule.kind = FaultEnv::Rule::Kind::kDiskFull;
  rule.byte_budget = 4;
  env.AddRule(rule);

  const std::string path = dir_ + "/full.sst";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("1234").ok());
  EXPECT_FALSE(file->Append("x").ok());  // nothing of this lands
  (void)file->Close();
  EXPECT_EQ(ReadAll(path), "1234");

  // Other extensions are untouched by the .sst rule.
  std::unique_ptr<WritableFile> other;
  ASSERT_TRUE(env.NewWritableFile(dir_ + "/ok.log", &other).ok());
  EXPECT_TRUE(other->Append("123456789").ok());
  (void)other->Close();
}

TEST_F(FaultEnvTest, SyncAndReadErrors) {
  FaultEnv env(Env::Default());
  const std::string path = dir_ + "/s.log";
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
    ASSERT_TRUE(file->Append("data").ok());
    FaultEnv::Rule rule;
    rule.kind = FaultEnv::Rule::Kind::kSyncError;
    env.AddRule(rule);
    EXPECT_FALSE(file->Sync().ok());
    env.ClearRules();
    EXPECT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
  }
  FaultEnv::Rule read_rule;
  read_rule.kind = FaultEnv::Rule::Kind::kReadError;
  env.AddRule(read_rule);
  std::unique_ptr<RandomAccessFile> ra;
  ASSERT_TRUE(env.NewRandomAccessFile(path, &ra).ok());
  char scratch[16];
  Slice result;
  EXPECT_FALSE(ra->Read(0, 4, &result, scratch).ok());
  env.ClearRules();
  EXPECT_TRUE(ra->Read(0, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "data");
}

TEST_F(FaultEnvTest, ProbabilisticAppendErrorIsSeededAndCounted) {
  obs::MetricsRegistry metrics;
  auto run = [&](uint64_t seed) {
    FaultEnv env(Env::Default());
    env.SetSeed(seed);
    env.SetMetrics(&metrics);
    FaultEnv::Rule rule;
    rule.kind = FaultEnv::Rule::Kind::kAppendError;
    rule.probability = 0.5;
    env.AddRule(rule);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env.NewWritableFile(dir_ + "/p" + std::to_string(seed), &file).ok());
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; i++) {
      outcomes.push_back(file->Append("x").ok());
    }
    (void)file->Close();
    env.SetMetrics(nullptr);
    return outcomes;
  };
  const auto a = run(7);
  FaultEnv env2(Env::Default());
  env2.SetSeed(7);
  // Same seed, same rule: identical fault pattern (file name differs but
  // decisions depend only on the PRNG draw sequence).
  FaultEnv::Rule rule;
  rule.kind = FaultEnv::Rule::Kind::kAppendError;
  rule.probability = 0.5;
  env2.AddRule(rule);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env2.NewWritableFile(dir_ + "/replay", &file).ok());
  for (int i = 0; i < 64; i++) {
    EXPECT_EQ(file->Append("x").ok(), a[i]) << "diverged at append " << i;
  }
  (void)file->Close();
  EXPECT_GT(metrics.GetCounter("fault.env.append_error")->value(), 0u);
}

}  // namespace
}  // namespace fault
}  // namespace diffindex
