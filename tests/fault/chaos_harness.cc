#include "chaos_harness.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <set>
#include <thread>

#include "check/model_workload.h"
#include "check/schedule.h"
#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "fault/failpoint.h"
#include "fault/fault_env.h"
#include "util/env.h"

namespace diffindex {
namespace chaos {
namespace {

const char* SchemeName(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kSyncFull:
      return "sync-full";
    case IndexScheme::kSyncInsert:
      return "sync-insert";
    case IndexScheme::kAsyncSimple:
      return "async-simple";
    case IndexScheme::kAsyncSession:
      return "async-session";
  }
  return "unknown";
}

constexpr int kNumValues = 6;

std::string ValueName(int i) { return "v" + std::to_string(i); }

std::string RowName(int i) {
  // Spread rows across the hex keyspace so every region sees traffic.
  char buf[16];
  snprintf(buf, sizeof(buf), "%02x-r%03d", (i * 37) % 256, i);
  return buf;
}

// Shadow oracle: what the base table may legitimately hold per row, given
// which ops were acknowledged. A failed op may or may not have applied
// (e.g. applied server-side but the response was dropped), so failures
// only widen the possible set.
struct Oracle {
  struct RowState {
    std::set<std::string> possible;
    bool may_be_absent = true;
  };
  std::map<std::string, RowState> rows;

  void PutOk(const std::string& row, const std::string& value) {
    RowState& st = rows[row];
    st.possible = {value};
    st.may_be_absent = false;
  }
  void PutFailed(const std::string& row, const std::string& value) {
    rows[row].possible.insert(value);
  }
  void DeleteOk(const std::string& row) {
    RowState& st = rows[row];
    st.possible.clear();
    st.may_be_absent = true;
  }
  void DeleteFailed(const std::string& row) {
    rows[row].may_be_absent = true;
  }
  bool Definite(const std::string& row) const {
    auto it = rows.find(row);
    return it != rows.end() && it->second.possible.size() == 1 &&
           !it->second.may_be_absent;
  }
};

enum class Event {
  kQuiet,
  kFlush,
  kKill,
  kSilentCrash,
  kAddServer,
  kPartition,
  kFailpoints,
  kEnvFaults,
  kNetFaults,
};

const char* EventName(Event e) {
  switch (e) {
    case Event::kQuiet: return "quiet";
    case Event::kFlush: return "flush";
    case Event::kKill: return "kill";
    case Event::kSilentCrash: return "silent-crash";
    case Event::kAddServer: return "add-server";
    case Event::kPartition: return "partition";
    case Event::kFailpoints: return "failpoints";
    case Event::kEnvFaults: return "env-faults";
    case Event::kNetFaults: return "net-faults";
  }
  return "?";
}

// Failpoints safe to arm probabilistically during chaos. auq.enqueue and
// auq.drain are deliberately absent: they silently LOSE work (that is their
// purpose — proving the harness catches real invariant breaks) and would
// turn every schedule into a failure. region.open stays off so recovery
// cannot wedge.
const char* const kChaosFailpoints[] = {
    "wal.append", "wal.sync",     "lsm.flush",       "lsm.sst_write",
    "auq.process", "index.put",   "index.delete",    "index.read_base",
    // Checkpointed-recovery seams: a failed checkpoint write is tolerated
    // (stale checkpoints only widen replay) and a fired wal.gc skips one
    // GC pass (a stalled collector), so both are safe to arm randomly.
    "checkpoint.write", "wal.gc",
};

bool WaitAuqDrained(Cluster* cluster, int timeout_ms) {
  for (int i = 0; i < timeout_ms; i++) {
    bool idle = true;
    for (NodeId id : cluster->server_ids()) {
      IndexManager* im = cluster->index_manager(id);
      if (im != nullptr && im->QueueDepth() > 0) idle = false;
    }
    if (idle) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

ClusterOptions MakeClusterOptions(const ChaosOptions& opt, Env* env) {
  ClusterOptions copt;
  copt.num_servers = opt.num_servers;
  copt.regions_per_table = 6;
  copt.auq.retry_backoff_ms = 1;
  if (opt.scheme == IndexScheme::kAsyncSession) {
    // Keep the APS visibly behind the base writes so read-your-writes is a
    // meaningful property (the session cache, not luck, must provide it).
    copt.auq.process_delay_ms = 2;
  }
  // Fast client retries: crash/partition windows cost milliseconds, not
  // the production-profile hundreds of ms, so schedules stay quick.
  copt.client.retry_backoff_ms = 1;
  copt.client.retry_backoff_max_ms = 8;
  copt.client.retry_jitter_seed = opt.seed ^ 0x5eedULL;
  copt.env = env;
  return copt;
}

Status CreateIndexedTable(Cluster* cluster, IndexScheme scheme) {
  DIFFINDEX_RETURN_NOT_OK(cluster->master()->CreateTable("t"));
  IndexDescriptor index;
  index.name = "by_c";
  index.column = "c";
  index.scheme = scheme;
  return cluster->master()->CreateIndex("t", index);
}

}  // namespace

std::string FormatChaosSchedule(const ChaosOptions& options) {
  check::Schedule schedule;
  schedule.kind = "chaos";
  schedule.set("seed", std::to_string(options.seed));
  schedule.set("scheme", SchemeName(options.scheme));
  schedule.set_int("servers", options.num_servers);
  schedule.set_int("rounds", options.rounds);
  schedule.set_int("ops", options.ops_per_round);
  schedule.set_int("keys", options.key_space);
  schedule.set_int("crashes", options.enable_crashes ? 1 : 0);
  schedule.set_int("partitions", options.enable_partitions ? 1 : 0);
  schedule.set_int("env", options.enable_env_faults ? 1 : 0);
  schedule.set_int("failpoints", options.enable_failpoints ? 1 : 0);
  schedule.set_int("net", options.enable_net_faults ? 1 : 0);
  return check::FormatSchedule(schedule);
}

bool ParseChaosSchedule(const std::string& text, ChaosOptions* options,
                        std::string* error) {
  check::Schedule schedule;
  if (!check::ParseSchedule(text, &schedule, error)) return false;
  if (schedule.kind != "chaos") {
    *error = "not a chaos schedule (kind \"" + schedule.kind + "\")";
    return false;
  }
  ChaosOptions out;
  out.seed = strtoull(schedule.get("seed", "1").c_str(), nullptr, 10);
  const std::string scheme = schedule.get("scheme", "async-simple");
  bool known = false;
  for (IndexScheme candidate :
       {IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
        IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession}) {
    if (scheme == SchemeName(candidate)) {
      out.scheme = candidate;
      known = true;
    }
  }
  if (!known) {
    *error = "unknown scheme \"" + scheme + "\"";
    return false;
  }
  out.num_servers =
      static_cast<int>(schedule.get_int("servers", out.num_servers));
  out.rounds = static_cast<int>(schedule.get_int("rounds", out.rounds));
  out.ops_per_round =
      static_cast<int>(schedule.get_int("ops", out.ops_per_round));
  out.key_space = static_cast<int>(schedule.get_int("keys", out.key_space));
  out.enable_crashes = schedule.get_int("crashes", 1) != 0;
  out.enable_partitions = schedule.get_int("partitions", 1) != 0;
  out.enable_env_faults = schedule.get_int("env", 1) != 0;
  out.enable_failpoints = schedule.get_int("failpoints", 1) != 0;
  out.enable_net_faults = schedule.get_int("net", 1) != 0;
  *options = out;
  return true;
}

ChaosReport ReplaySchedule(const std::string& text) {
  ChaosReport report;
  check::Schedule schedule;
  std::string error;
  if (!check::ParseSchedule(text, &schedule, &error)) {
    report.violations.push_back("unparseable schedule: " + error);
    return report;
  }
  if (schedule.kind == "chaos") {
    ChaosOptions options;
    if (!ParseChaosSchedule(text, &options, &error)) {
      report.violations.push_back("bad chaos schedule: " + error);
      return report;
    }
    return RunChaosSchedule(options);
  }
  if (schedule.kind == "check") {
    check::ModelOptions model;
    std::vector<int> choices;
    if (!check::FromSchedule(schedule, &model, &choices)) {
      report.violations.push_back("bad check schedule: " + text);
      return report;
    }
    report.scheme = std::string("check/") + schedule.get("scheme");
    fprintf(stderr, "[chaos] replaying check schedule: %s\n", text.c_str());
    check::RunOutcome outcome = check::RunModel(model, choices);
    report.ops = model.num_writers * model.ops_per_writer;
    report.ok_ops = report.ops;
    if (outcome.diverged) {
      report.violations.push_back(
          "replay diverged from recorded choices (code changed since the "
          "schedule was captured?)");
    }
    if (!outcome.violation.empty()) {
      report.violations.push_back(outcome.violation);
    }
    return report;
  }
  report.violations.push_back("unknown schedule kind \"" + schedule.kind +
                              "\"");
  return report;
}

std::string ChaosReport::Summary() const {
  char head[256];
  snprintf(head, sizeof(head),
           "[chaos] seed=%llu scheme=%s ops=%d (ok=%d failed=%d) crashes=%d "
           "partitions=%d env=%d failpoints=%d net=%d flushes=%d "
           "violations=%zu",
           static_cast<unsigned long long>(seed), scheme.c_str(), ops, ok_ops,
           failed_ops, crashes, partition_rounds, env_fault_rounds,
           failpoint_rounds, net_fault_rounds, flush_rounds,
           violations.size());
  std::string out = head;
  for (size_t i = 0; i < violations.size() && i < 8; i++) {
    out += "\n  violation: " + violations[i];
  }
  if (violations.size() > 8) out += "\n  ...";
  return out;
}

ChaosReport RunChaosSchedule(const ChaosOptions& opt) {
  ChaosReport report;
  report.seed = opt.seed;
  report.scheme = SchemeName(opt.scheme);
  fprintf(stderr, "[chaos] seed=%llu scheme=%s starting\n",
          static_cast<unsigned long long>(opt.seed), report.scheme.c_str());

  auto violation = [&](const std::string& what) {
    report.violations.push_back(what);
  };

  // Cleanup is declared first (destroyed last): whatever happens, the next
  // test starts with nothing armed.
  fault::ScopedFailpointCleanup cleanup;
  Random rng(opt.seed);
  fault::FaultEnv fenv(Env::Default());
  fenv.SetSeed(opt.seed ^ 0xe17aULL);

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(MakeClusterOptions(opt, &fenv), &cluster);
  if (!s.ok()) {
    violation("cluster create failed: " + s.ToString());
    return report;
  }
  fenv.SetMetrics(cluster->metrics());
  cluster->fabric()->SetFaultSeed(opt.seed ^ 0xfab1ULL);

  s = CreateIndexedTable(cluster.get(), opt.scheme);
  if (!s.ok()) {
    violation("table setup failed: " + s.ToString());
    return report;
  }
  auto client = cluster->NewDiffIndexClient();
  (void)client->raw_client()->RefreshLayout();

  // kCrash failpoints must not crash from the hitting thread (it may BE a
  // server thread); the handler only requests, the driver loop executes.
  std::atomic<int> crash_requests{0};
  auto* failpoints = fault::FailpointRegistry::Global();
  failpoints->SetCrashHandler(
      [&crash_requests](const std::string&) { crash_requests.fetch_add(1); });

  std::vector<std::string> rows;
  for (int i = 0; i < opt.key_space; i++) rows.push_back(RowName(i));

  Oracle oracle;
  const bool use_session = opt.scheme == IndexScheme::kAsyncSession;
  SessionId session = use_session ? client->GetSession() : 0;

  NodeId next_server_id = static_cast<NodeId>(opt.num_servers + 1);

  auto live_count = [&] { return cluster->server_ids().size(); };
  auto random_live_server = [&]() -> NodeId {
    std::vector<NodeId> ids = cluster->server_ids();
    return ids[rng.Uniform(ids.size())];
  };
  auto service_crash_requests = [&] {
    while (crash_requests.fetch_sub(1) > 0) {
      if (live_count() > 2) {
        (void)cluster->KillServer(random_live_server());
        report.crashes++;
      }
    }
    crash_requests.store(0);
  };

  auto do_op = [&] {
    report.ops++;
    const double roll = rng.NextDouble();
    if (roll < 0.60) {
      const std::string& row = rows[rng.Uniform(rows.size())];
      const std::string value = ValueName(static_cast<int>(
          rng.Uniform(kNumValues)));
      Status ps;
      if (use_session) {
        ps = client->SessionPut(session, "t", row,
                                {Cell{"c", value, false}});
      } else {
        ps = client->PutColumn("t", row, "c", value);
      }
      if (ps.ok()) {
        report.ok_ops++;
        oracle.PutOk(row, value);
        if (use_session) {
          // Read-your-writes: the session that acked this put must see it
          // in its own index reads immediately, chaos or not. Errors are
          // tolerated (the read may hit a dead node); an OK read that
          // misses the write is a contract violation.
          std::vector<IndexHit> hits;
          Status rs =
              client->SessionGetByIndex(session, "t", "by_c", value, &hits);
          if (rs.ok()) {
            bool found = false;
            for (const IndexHit& h : hits) {
              if (h.base_row == row) found = true;
            }
            if (!found) {
              violation("read-your-writes violated: session put of " + row +
                        "=" + value + " invisible to its own index read");
            }
          }
        }
      } else {
        report.failed_ops++;
        oracle.PutFailed(row, value);
      }
    } else if (roll < 0.72) {
      const std::string& row = rows[rng.Uniform(rows.size())];
      Status ds = client->DeleteColumns("t", row, {"c"});
      if (ds.ok()) {
        report.ok_ops++;
        oracle.DeleteOk(row);
      } else {
        report.failed_ops++;
        oracle.DeleteFailed(row);
      }
    } else {
      // Read-check: a row whose state the oracle knows exactly must read
      // back exactly, even mid-chaos (read errors are tolerated; wrong or
      // missing data is not — acked writes survive crashes).
      const size_t start = rng.Uniform(rows.size());
      for (size_t k = 0; k < rows.size(); k++) {
        const std::string& row = rows[(start + k) % rows.size()];
        if (!oracle.Definite(row)) continue;
        std::string got;
        Status gs = client->Get("t", row, "c", &got);
        if (gs.ok()) {
          report.ok_ops++;
          if (oracle.rows[row].possible.count(got) == 0) {
            violation("read-check: row " + row + " returned '" + got +
                      "' not in oracle set");
          }
        } else if (gs.IsNotFound()) {
          report.ok_ops++;
          violation("read-check: acked write to row " + row +
                    " lost mid-chaos (NotFound)");
        } else {
          report.failed_ops++;
        }
        break;
      }
    }
  };

  // ---- Chaos rounds: one fault event per round, ops under it ----

  std::vector<std::pair<NodeId, NodeId>> open_partitions;
  for (int round = 0; round < opt.rounds; round++) {
    std::vector<Event> menu = {Event::kQuiet, Event::kFlush};
    if (opt.enable_crashes && live_count() > 2) {
      menu.push_back(Event::kKill);
      menu.push_back(Event::kSilentCrash);
      menu.push_back(Event::kAddServer);
    }
    if (opt.enable_partitions && live_count() >= 2) {
      menu.push_back(Event::kPartition);
      menu.push_back(Event::kPartition);
    }
    if (opt.enable_failpoints) {
      menu.push_back(Event::kFailpoints);
      menu.push_back(Event::kFailpoints);
    }
    if (opt.enable_env_faults) menu.push_back(Event::kEnvFaults);
    if (opt.enable_net_faults) menu.push_back(Event::kNetFaults);
    const Event event = menu[rng.Uniform(menu.size())];
    if (opt.verbose) {
      fprintf(stderr, "[chaos] seed=%llu round %d: %s\n",
              static_cast<unsigned long long>(opt.seed), round,
              EventName(event));
    }

    NodeId silent_victim = 0;
    switch (event) {
      case Event::kQuiet:
        break;
      case Event::kFlush:
        report.flush_rounds++;
        (void)client->raw_client()->FlushTable("t");
        break;
      case Event::kKill:
        report.crashes++;
        (void)cluster->KillServer(random_live_server());
        break;
      case Event::kSilentCrash:
        // Crash without telling the master; ops run against the hole until
        // the end of the round, when the failure is "detected".
        silent_victim = random_live_server();
        report.crashes++;
        (void)cluster->SilentlyCrashServer(silent_victim);
        break;
      case Event::kAddServer:
        (void)cluster->AddServer(next_server_id++);
        break;
      case Event::kPartition: {
        report.partition_rounds++;
        std::vector<NodeId> ids = cluster->server_ids();
        const NodeId a = ids[rng.Uniform(ids.size())];
        NodeId b = ids[rng.Uniform(ids.size())];
        if (a != b) {
          cluster->fabric()->SetPartitioned(a, b, true);
          open_partitions.emplace_back(a, b);
        }
        break;
      }
      case Event::kFailpoints: {
        report.failpoint_rounds++;
        int armed = 0;
        for (size_t i = 0; i < std::size(kChaosFailpoints); i++) {
          if (rng.NextDouble() < 0.35) {
            failpoints->Arm(kChaosFailpoints[i],
                            fault::FailpointPolicy::WithProbability(
                                0.05 + 0.20 * rng.NextDouble(),
                                opt.seed ^ (round * 131ULL + i)));
            armed++;
          }
        }
        if (rng.NextDouble() < 0.30) {
          // Rarely, a hit on the WAL append path "crashes the server"
          // (handler requests, driver loop executes on a random node).
          failpoints->Arm("wal.append", fault::FailpointPolicy::Crash(
                                            0.02, opt.seed ^ (round * 977ULL)));
          armed++;
        }
        if (armed == 0) {
          failpoints->Arm("auq.process",
                          fault::FailpointPolicy::WithProbability(
                              0.15, opt.seed ^ (round * 131ULL)));
        }
        break;
      }
      case Event::kEnvFaults: {
        report.env_fault_rounds++;
        fault::FaultEnv::Rule rule;
        if (rng.NextDouble() < 0.5) {
          // Torn WAL appends: files absorb a budget, then the crossing
          // append writes a prefix and fails (the server rolls the WAL).
          rule.path_substring = ".log";
          rule.kind = fault::FaultEnv::Rule::Kind::kShortWrite;
          rule.byte_budget = 512 + rng.Uniform(4096);
        } else {
          // Disk-full on SSTable builds: flushes fail, memtables must
          // survive.
          rule.path_substring = ".sst";
          rule.kind = fault::FaultEnv::Rule::Kind::kDiskFull;
          rule.byte_budget = rng.Uniform(512);
        }
        fenv.AddRule(rule);
        if (rng.NextDouble() < 0.5) {
          fault::FaultEnv::Rule read_rule;
          read_rule.path_substring = ".sst";
          read_rule.kind = fault::FaultEnv::Rule::Kind::kReadError;
          read_rule.probability = 0.1;
          fenv.AddRule(read_rule);
        }
        break;
      }
      case Event::kNetFaults: {
        report.net_fault_rounds++;
        Fabric::EdgeFault fault;
        fault.drop_probability = 0.05 + 0.10 * rng.NextDouble();
        fault.duplicate_probability = 0.05 + 0.10 * rng.NextDouble();
        fault.extra_latency_us =
            static_cast<uint32_t>(100 + rng.Uniform(900));
        cluster->fabric()->SetDefaultFault(fault);
        break;
      }
    }

    for (int op = 0; op < opt.ops_per_round; op++) {
      service_crash_requests();
      do_op();
      if (event == Event::kEnvFaults && op == opt.ops_per_round / 2 &&
          rng.NextDouble() < 0.5) {
        // Flush under active I/O faults: exercises the failed-flush
        // restore path.
        (void)client->raw_client()->FlushTable("t");
      }
    }

    // Heal this round's fault before the next one begins.
    switch (event) {
      case Event::kSilentCrash:
        (void)cluster->master()->OnServerDead(silent_victim);
        break;
      case Event::kPartition:
        for (const auto& [a, b] : open_partitions) {
          cluster->fabric()->SetPartitioned(a, b, false);
        }
        open_partitions.clear();
        break;
      case Event::kFailpoints:
        failpoints->DisarmAll();
        break;
      case Event::kEnvFaults:
        fenv.ClearRules();
        break;
      case Event::kNetFaults:
        cluster->fabric()->ClearFaults();
        break;
      default:
        break;
    }
    service_crash_requests();
  }

  // ---- Halt all faults, converge, verify ----

  failpoints->DisarmAll();
  fenv.ClearRules();
  cluster->fabric()->ClearFaults();
  for (const auto& [a, b] : open_partitions) {
    cluster->fabric()->SetPartitioned(a, b, false);
  }
  open_partitions.clear();
  crash_requests.store(0);
  if (use_session) client->EndSession(session);

  if (!WaitAuqDrained(cluster.get(), 20000)) {
    violation("AUQ failed to drain after faults were halted (convergence)");
  }
  (void)client->raw_client()->RefreshLayout();

  // Index view per value, through the scheme's own read path (sync-insert's
  // double-check-and-clean filters its by-design stale entries here).
  std::map<std::string, std::set<std::string>> index_rows;
  for (int v = 0; v < kNumValues; v++) {
    const std::string value = ValueName(v);
    std::vector<IndexHit> hits;
    Status is = client->GetByIndex("t", "by_c", value, &hits);
    if (!is.ok()) {
      violation("index read for '" + value +
                "' failed after convergence: " + is.ToString());
      continue;
    }
    for (const IndexHit& h : hits) {
      index_rows[value].insert(h.base_row);
      if (oracle.rows.count(h.base_row) == 0) {
        violation("phantom index entry: value '" + value +
                  "' references never-written row " + h.base_row);
      }
    }
  }

  for (const auto& [row, st] : oracle.rows) {
    std::string got;
    Status gs = client->Get("t", row, "c", &got);
    if (gs.IsNotFound()) {
      if (!st.may_be_absent) {
        violation("lost base write: row " + row +
                  " absent but an acked put was never deleted");
      }
      for (int v = 0; v < kNumValues; v++) {
        if (index_rows[ValueName(v)].count(row) > 0) {
          violation("phantom index entry: absent row " + row +
                    " still indexed under '" + ValueName(v) + "'");
        }
      }
    } else if (gs.ok()) {
      if (st.possible.count(got) == 0) {
        violation("base row " + row + " holds '" + got +
                  "', outside the oracle's possible set");
      }
      if (index_rows[got].count(row) == 0) {
        violation("lost index entry: row " + row + " holds '" + got +
                  "' but the index does not reference it");
      }
      for (int v = 0; v < kNumValues; v++) {
        const std::string other = ValueName(v);
        if (other != got && index_rows[other].count(row) > 0) {
          violation("phantom index entry: row " + row + " holds '" + got +
                    "' but is still indexed under '" + other + "'");
        }
      }
    } else {
      violation("base read of row " + row +
                " failed after convergence: " + gs.ToString());
    }
  }

  // Causal consistency spot-check for sync-full: with the cluster healthy,
  // a put must be index-visible the moment it is acknowledged, and an
  // update must retire the old entry just as promptly (Algorithm 1's
  // delete-at-ts-minus-delta).
  if (opt.scheme == IndexScheme::kSyncFull) {
    const std::string row = "zz-causal";
    for (const char* value : {"vc-a", "vc-b"}) {
      Status ps = client->PutColumn("t", row, "c", value);
      if (!ps.ok()) {
        violation(std::string("causal check put of '") + value +
                  "' failed on a healthy cluster: " + ps.ToString());
        continue;
      }
      std::vector<IndexHit> hits;
      Status is = client->GetByIndex("t", "by_c", value, &hits);
      bool found = false;
      for (const IndexHit& h : hits) {
        if (h.base_row == row) found = true;
      }
      if (!is.ok() || !found) {
        violation(std::string("causal consistency violated: acked put of '") +
                  value + "' not immediately index-visible");
      }
    }
    std::vector<IndexHit> stale;
    Status is = client->GetByIndex("t", "by_c", "vc-a", &stale);
    if (is.ok()) {
      for (const IndexHit& h : stale) {
        if (h.base_row == row) {
          violation("causal consistency violated: superseded entry 'vc-a' "
                    "still index-visible after the update was acked");
        }
      }
    }
  }

  fprintf(stderr, "%s\n", report.Summary().c_str());
  if (!report.ok()) {
    fprintf(stderr, "[chaos] replay with: %s\n",
            FormatChaosSchedule(opt).c_str());
  }
  return report;
}

ChaosReport RunBrokenDrainScenario(uint64_t seed, bool break_invariant) {
  ChaosReport report;
  report.seed = seed;
  report.scheme = std::string("async-simple/drain-") +
                  (break_invariant ? "broken" : "intact");
  fprintf(stderr, "[chaos] seed=%llu scenario=%s starting\n",
          static_cast<unsigned long long>(seed), report.scheme.c_str());

  fault::ScopedFailpointCleanup cleanup;
  Random rng(seed);

  ClusterOptions copt;
  copt.num_servers = 3;
  copt.regions_per_table = 6;
  copt.auq.retry_backoff_ms = 1;
  // Slow APS: the flush finds a non-empty queue, so skipping the drain
  // barrier actually strands undelivered tasks behind the flush point.
  copt.auq.process_delay_ms = 40;
  copt.auq.worker_threads = 1;
  copt.client.retry_backoff_ms = 1;
  copt.client.retry_backoff_max_ms = 8;
  copt.client.retry_jitter_seed = seed;

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(copt, &cluster);
  if (!s.ok()) {
    report.violations.push_back("cluster create failed: " + s.ToString());
    return report;
  }
  s = CreateIndexedTable(cluster.get(), IndexScheme::kAsyncSimple);
  if (!s.ok()) {
    report.violations.push_back("table setup failed: " + s.ToString());
    return report;
  }
  auto client = cluster->NewDiffIndexClient();
  (void)client->raw_client()->RefreshLayout();

  // Rows whose BASE region lives on the victim: their WAL edits are what
  // the broken flush strands.
  const NodeId victim = 1 + static_cast<NodeId>(rng.Uniform(3));
  std::vector<std::string> victim_rows;
  for (int i = 0; i < 256 && victim_rows.size() < 8; i++) {
    const std::string row = RowName(i);
    RegionInfoWire info;
    if (client->raw_client()->RouteRow("t", row, &info).ok() &&
        info.server_id == victim) {
      victim_rows.push_back(row);
    }
  }
  const std::string value = "vD";
  for (const std::string& row : victim_rows) {
    report.ops++;
    Status ps = client->PutColumn("t", row, "c", value);
    if (ps.ok()) {
      report.ok_ops++;
    } else {
      report.failed_ops++;
      report.violations.push_back("setup put failed: " + ps.ToString());
    }
  }

  if (break_invariant) {
    // Skip the Section 5.3 drain-before-flush barrier on every flush.
    fault::FailpointRegistry::Global()->Arm(
        "auq.drain", fault::FailpointPolicy::ErrorEveryNth(1));
  }
  (void)client->raw_client()->FlushTable("t");
  fault::FailpointRegistry::Global()->DisarmAll();

  // Crash the victim (its AUQ backlog dies with it) and recover. Replay
  // only re-enqueues edits past the flush point — with the barrier broken,
  // the flushed-but-undelivered tasks are gone for good.
  report.crashes++;
  (void)cluster->SilentlyCrashServer(victim);
  (void)cluster->master()->OnServerDead(victim);

  if (!WaitAuqDrained(cluster.get(), 20000)) {
    report.violations.push_back("AUQ failed to drain after recovery");
  }
  (void)client->raw_client()->RefreshLayout();

  std::set<std::string> indexed;
  std::vector<IndexHit> hits;
  Status is = client->GetByIndex("t", "by_c", value, &hits);
  if (!is.ok()) {
    report.violations.push_back("index read failed: " + is.ToString());
  }
  for (const IndexHit& h : hits) indexed.insert(h.base_row);
  for (const std::string& row : victim_rows) {
    if (indexed.count(row) == 0) {
      report.violations.push_back("lost index entry: acked put of row " +
                                  row + " has no index entry after recovery");
    }
  }

  fprintf(stderr, "%s\n", report.Summary().c_str());
  return report;
}

ChaosReport RunRecoveryScenario(uint64_t seed, RecoveryScenario scenario) {
  ChaosReport report;
  report.seed = seed;
  switch (scenario) {
    case RecoveryScenario::kKillRecoveringOwner:
      report.scheme = "recovery/kill-recovering-owner";
      break;
    case RecoveryScenario::kCorruptCheckpoint:
      report.scheme = "recovery/corrupt-checkpoint";
      break;
    case RecoveryScenario::kGcRacesFailover:
      report.scheme = "recovery/gc-races-failover";
      break;
  }
  fprintf(stderr, "[chaos] seed=%llu scenario=%s starting\n",
          static_cast<unsigned long long>(seed), report.scheme.c_str());

  fault::ScopedFailpointCleanup cleanup;
  Random rng(seed);

  ClusterOptions copt;
  copt.num_servers = 4;
  copt.regions_per_table = 6;
  copt.client.retry_backoff_ms = 1;
  copt.client.retry_backoff_max_ms = 8;
  copt.client.retry_jitter_seed = seed ^ 0x4ecULL;
  if (scenario == RecoveryScenario::kGcRacesFailover) {
    // Tiny segments and a 1 ms sweep: the collector runs continuously
    // while the failover replays, maximizing the delete-vs-read race.
    copt.server.wal_segment_bytes = 2 << 10;
    copt.server.wal_gc_interval_ms = 1;
    copt.server.lsm.memtable_flush_bytes = 32 << 10;
  }

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(copt, &cluster);
  if (!s.ok()) {
    report.violations.push_back("cluster create failed: " + s.ToString());
    return report;
  }
  s = cluster->master()->CreateTable("t");
  if (!s.ok()) {
    report.violations.push_back("table setup failed: " + s.ToString());
    return report;
  }
  auto client = cluster->NewClient();
  (void)client->RefreshLayout();

  // Acked writes the epilogue must find, whatever the scenario does.
  std::map<std::string, std::string> acked;
  auto put_phase = [&](int count, const std::string& tag) {
    for (int i = 0; i < count; i++) {
      const std::string row = RowName(i * 3 + static_cast<int>(tag.size()));
      const std::string value = tag + std::to_string(i);
      report.ops++;
      if (client->PutColumn("t", row, "c", value).ok()) {
        report.ok_ops++;
        acked[row] = value;
      } else {
        report.failed_ops++;
      }
    }
  };

  put_phase(40, "a");
  (void)client->FlushTable("t");  // flush checkpoints cover phase "a"
  put_phase(30, "b");             // lives in WAL + memtables only

  const NodeId victim = 1 + static_cast<NodeId>(rng.Uniform(4));
  switch (scenario) {
    case RecoveryScenario::kKillRecoveringOwner: {
      report.crashes += 2;
      (void)cluster->SilentlyCrashServer(victim);
      std::thread first(
          [&] { (void)cluster->master()->OnServerDead(victim); });
      // Kill a random survivor while the first failover is in flight; the
      // re-entrant OnServerDead must converge either way.
      std::this_thread::sleep_for(std::chrono::milliseconds(rng.Uniform(3)));
      std::vector<NodeId> ids = cluster->server_ids();
      const NodeId second = ids[rng.Uniform(ids.size())];
      (void)cluster->SilentlyCrashServer(second);
      (void)cluster->master()->OnServerDead(second);
      first.join();
      break;
    }
    case RecoveryScenario::kCorruptCheckpoint: {
      // Scribble every checkpoint the victim's regions wrote, then kill.
      for (const auto& info : cluster->master()->regions()) {
        if (info.server_id != victim) continue;
        const std::string path = RegionCheckpointPath(cluster->data_root(),
                                                      info.table,
                                                      info.region_id);
        std::unique_ptr<WritableFile> file;
        if (Env::Default()->NewWritableFile(path, &file).ok()) {
          (void)file->Append("scribble");
          (void)file->Close();
        }
      }
      report.crashes++;
      (void)cluster->KillServer(victim);
      break;
    }
    case RecoveryScenario::kGcRacesFailover: {
      // Keep writing (rolling + GC-ing segments) while the failover
      // replays the victim's log.
      std::atomic<bool> stop{false};
      std::thread writer([&] {
        auto wclient = cluster->NewClient();
        Random wrng(seed ^ 0x6cULL);
        int i = 0;
        while (!stop.load()) {
          (void)wclient->PutColumn("t", RowName(200 + (i++ % 40)), "pad",
                                   wrng.RandomBytes(300));
          if (i % 64 == 0) (void)wclient->FlushTable("t");
        }
      });
      report.crashes++;
      (void)cluster->KillServer(victim);
      stop.store(true);
      writer.join();
      break;
    }
  }

  (void)client->RefreshLayout();
  for (const auto& [row, value] : acked) {
    std::string got;
    Status rs = client->GetCell("t", row, "c", kMaxTimestamp, &got);
    if (!rs.ok()) {
      report.violations.push_back("lost acked write: row " + row + ": " +
                                  rs.ToString());
    } else if (got != value) {
      report.violations.push_back("wrong value for row " + row + ": got " +
                                  got + " want " + value);
    }
  }

  fprintf(stderr, "%s\n", report.Summary().c_str());
  return report;
}

}  // namespace chaos
}  // namespace diffindex
