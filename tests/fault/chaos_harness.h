// Crash-consistency chaos harness: runs a mixed read/write workload under a
// seeded fault schedule (server crashes + recoveries, network partitions,
// message-level faults, injected I/O errors and failpoint windows), then
// halts all faults, drains the AUQ and verifies the scheme's consistency
// contract against a shadow oracle:
//
//   - no lost or phantom index entries (all schemes, after convergence),
//   - causal consistency for sync-full (fresh writes immediately visible),
//   - read-your-writes for async-session (via session reads during chaos),
//   - convergence for async-simple / sync-insert (the drained final check).
//
// Every run prints its seed; re-running with the same ChaosOptions replays
// the schedule bit-for-bit (all randomness — workload, fault choice, fault
// parameters, failpoint PRNGs, FaultEnv and fabric PRNGs — derives from
// ChaosOptions::seed).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/catalog.h"

namespace diffindex {
namespace chaos {

struct ChaosOptions {
  // Master seed; every other PRNG in the run is derived from it.
  uint64_t seed = 1;
  IndexScheme scheme = IndexScheme::kAsyncSimple;

  int num_servers = 4;
  int rounds = 10;
  int ops_per_round = 25;
  // Distinct base rows the workload writes to.
  int key_space = 48;

  // Fault classes to draw from (one fault event per round).
  bool enable_crashes = true;
  bool enable_partitions = true;
  bool enable_env_faults = true;
  bool enable_failpoints = true;
  bool enable_net_faults = true;

  bool verbose = false;
};

struct ChaosReport {
  uint64_t seed = 0;
  std::string scheme;

  int ops = 0;
  int ok_ops = 0;
  int failed_ops = 0;
  int crashes = 0;
  int partition_rounds = 0;
  int env_fault_rounds = 0;
  int failpoint_rounds = 0;
  int net_fault_rounds = 0;
  int flush_rounds = 0;

  // Consistency-contract violations found by the verification epilogue (or
  // during chaos, for read-your-writes). Empty = the run passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Runs one full chaos schedule and verifies the consistency contract.
ChaosReport RunChaosSchedule(const ChaosOptions& options);

// Replayable-schedule-string bridge (src/check/schedule.h). A chaos run
// is fully determined by its ChaosOptions, so the "chaos:" string just
// carries them:
//
//   chaos:seed=7;scheme=async-simple;servers=4;rounds=10;ops=25;keys=48;
//         crashes=1;partitions=1;env=1;failpoints=1;net=1
std::string FormatChaosSchedule(const ChaosOptions& options);
bool ParseChaosSchedule(const std::string& text, ChaosOptions* options,
                        std::string* error);

// Replays a schedule string of either kind:
//   * "chaos:..." — RunChaosSchedule with the parsed options (bit-for-bit,
//     all randomness derives from the seed).
//   * "check:..." — the model-checker workload (check/model_workload.h)
//     that produced it: decision-for-decision in a DIFFINDEX_CHECK build;
//     in a plain ASan/TSan build the choices are inert and the same model
//     re-runs as a sanitizer stress pass (writers serialized through the
//     scheduler token, AUQ workers genuinely concurrent).
// The outcome lands in ChaosReport::violations either way, so one ctest
// wrapper can replay whatever string a failing run printed.
ChaosReport ReplaySchedule(const std::string& text);

// Targeted regression for the Section 5.3 drain-before-flush invariant:
// queues index tasks behind a slow APS, flushes (with the "auq.drain"
// failpoint skipping the drain barrier when break_invariant is true),
// crashes the server and recovers. With the barrier broken, the flush
// advances the recovery point past WAL edits whose index tasks were never
// delivered — the verification must report lost index entries. With the
// barrier intact the same schedule must verify clean.
ChaosReport RunBrokenDrainScenario(uint64_t seed, bool break_invariant);

// Targeted recovery scenarios for the checkpointed-recovery path. Each is
// seeded/replayable and verifies the no-lost-acked-write contract after
// the dust settles.
enum class RecoveryScenario {
  // Kill a server, then kill one of the survivors mid-recovery (often a
  // new owner holding half-recovered regions). The re-entrant failover
  // must converge with every acked write served.
  kKillRecoveringOwner,
  // Scribble over the victim's flush checkpoints before the kill: a
  // corrupt checkpoint must widen replay to the full log, never narrow
  // it — over-replay costs time, data loss is a violation.
  kCorruptCheckpoint,
  // Aggressive background WAL GC (tiny segments, 1 ms sweep) racing the
  // failover's replay: GC must never delete a segment replay still
  // needs, and replay tolerates files GC'd under it.
  kGcRacesFailover,
};
ChaosReport RunRecoveryScenario(uint64_t seed, RecoveryScenario scenario);

}  // namespace chaos
}  // namespace diffindex
