// Message-level fabric faults: drop, duplicate delivery, extra latency —
// per-edge and default, all driven by one seeded PRNG.

#include <gtest/gtest.h>

#include <atomic>

#include "net/fabric.h"
#include "util/latency_model.h"

namespace diffindex {
namespace {

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    latency_.set_params([] {
      LatencyParams p;
      p.scale = 0;
      return p;
    }());
    fabric_ = std::make_unique<Fabric>(&latency_);
    fabric_->SetObservers(&metrics_, nullptr);
    fabric_->RegisterNode(2, [this](MsgType, Slice body, std::string* resp) {
      handled_.fetch_add(1);
      *resp = "echo:" + body.ToString();
      return Status::OK();
    });
  }

  Status Call(std::string* resp) {
    return fabric_->Call(1, 2, MsgType::kPut, "x", resp);
  }

  LatencyModel latency_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<Fabric> fabric_;
  std::atomic<int> handled_{0};
};

TEST_F(NetFaultTest, NoFaultsPassesThrough) {
  std::string resp;
  ASSERT_TRUE(Call(&resp).ok());
  EXPECT_EQ(resp, "echo:x");
  EXPECT_EQ(handled_.load(), 1);
}

TEST_F(NetFaultTest, DropFailsWithUnavailableWithoutReachingTheHandler) {
  Fabric::EdgeFault fault;
  fault.drop_probability = 1.0;
  fabric_->SetEdgeFault(1, 2, fault);
  std::string resp;
  Status s = Call(&resp);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(handled_.load(), 0);
  EXPECT_EQ(metrics_.GetCounter("fault.net.dropped")->value(), 1u);

  // Other edges are unaffected by the (1,2) override.
  fabric_->RegisterNode(3, [](MsgType, Slice, std::string* resp) {
    *resp = "ok";
    return Status::OK();
  });
  EXPECT_TRUE(fabric_->Call(1, 3, MsgType::kPut, "x", &resp).ok());

  fabric_->ClearFaults();
  EXPECT_TRUE(Call(&resp).ok());
}

TEST_F(NetFaultTest, DuplicateDeliversTwiceKeepsOneResponse) {
  Fabric::EdgeFault fault;
  fault.duplicate_probability = 1.0;
  fabric_->SetDefaultFault(fault);
  std::string resp;
  ASSERT_TRUE(Call(&resp).ok());
  EXPECT_EQ(resp, "echo:x");  // the duplicate's response was discarded
  EXPECT_EQ(handled_.load(), 2);
  EXPECT_EQ(metrics_.GetCounter("fault.net.duplicated")->value(), 1u);
}

TEST_F(NetFaultTest, ExtraLatencyIsCountedAndDelivers) {
  Fabric::EdgeFault fault;
  fault.extra_latency_us = 100;
  fabric_->SetDefaultFault(fault);
  std::string resp;
  ASSERT_TRUE(Call(&resp).ok());
  EXPECT_EQ(resp, "echo:x");
  EXPECT_EQ(metrics_.GetCounter("fault.net.delayed")->value(), 1u);
}

TEST_F(NetFaultTest, SeededDropPatternReplays) {
  auto run = [&](uint64_t seed) {
    fabric_->SetFaultSeed(seed);
    Fabric::EdgeFault fault;
    fault.drop_probability = 0.5;
    fabric_->SetDefaultFault(fault);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; i++) {
      std::string resp;
      outcomes.push_back(Call(&resp).ok());
    }
    fabric_->ClearFaults();
    return outcomes;
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a, b);
  int delivered = 0;
  for (bool ok : a) delivered += ok ? 1 : 0;
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 64);
}

TEST_F(NetFaultTest, InactiveEdgeFaultErasesOverride) {
  Fabric::EdgeFault fault;
  fault.drop_probability = 1.0;
  fabric_->SetEdgeFault(1, 2, fault);
  // Edge faults are symmetric: the normalized (1,2) override also governs
  // 2 -> 1 traffic.
  fabric_->RegisterNode(1, [](MsgType, Slice, std::string* resp) {
    *resp = "ok";
    return Status::OK();
  });
  std::string resp;
  EXPECT_TRUE(fabric_->Call(2, 1, MsgType::kPut, "x", &resp).IsUnavailable());
  fabric_->SetEdgeFault(1, 2, Fabric::EdgeFault{});  // inactive: removed
  EXPECT_TRUE(Call(&resp).ok());
}

}  // namespace
}  // namespace diffindex
