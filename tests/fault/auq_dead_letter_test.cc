// AUQ poison-task escape hatch (AuqOptions::max_attempts + dead-letter
// list) and crash-abandon gauge hygiene.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/auq.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace diffindex {
namespace {

IndexTask MakeTask(const std::string& row) {
  IndexTask task;
  task.base_table = "t";
  task.row = row;
  task.cells = {Cell{"c", "v", false}};
  task.ts = 1;
  task.index.name = "by_c";
  task.index.column = "c";
  return task;
}

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; i++) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(AuqDeadLetterTest, PoisonTaskIsDeadLetteredAfterMaxAttempts) {
  obs::MetricsRegistry metrics;
  AuqOptions options;
  options.worker_threads = 1;
  options.retry_backoff_ms = 1;
  options.max_attempts = 3;
  options.metrics = &metrics;
  std::atomic<int> attempts{0};
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    attempts.fetch_add(1);
    return Status::IOError("poison");
  });

  ASSERT_TRUE(auq.Enqueue(MakeTask("r1")));
  ASSERT_TRUE(WaitFor([&] { return auq.dead_letters() == 1; }));
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(auq.depth(), 0u);
  EXPECT_EQ(metrics.GetGauge("auq.depth")->value(), 0);
  EXPECT_EQ(metrics.GetGauge("auq.dead_letters")->value(), 1);

  std::vector<IndexTask> dead = auq.DrainDeadLetters();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].row, "r1");
  EXPECT_EQ(dead[0].attempts, 3);
  EXPECT_EQ(auq.dead_letters(), 0u);
  EXPECT_EQ(metrics.GetGauge("auq.dead_letters")->value(), 0);

  auq.Shutdown();
}

// "auq.dead_letter" models a crash between the escape decision and the
// in-memory record landing: the worker's queue bookkeeping still runs
// (no wedge, gauges return to zero) but the dead-letter record is lost,
// which is exactly the window a Cleanse sweep has to repair.
TEST(AuqDeadLetterTest, DeadLetterCrashWindowLosesRecordButNotBookkeeping) {
  obs::MetricsRegistry metrics;
  AuqOptions options;
  options.worker_threads = 1;
  options.retry_backoff_ms = 1;
  options.max_attempts = 3;
  options.metrics = &metrics;
  std::atomic<int> attempts{0};
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    attempts.fetch_add(1);
    return Status::IOError("poison");
  });

  fault::FailpointRegistry::Global()->Arm(
      "auq.dead_letter", fault::FailpointPolicy::ErrorEveryNth(1));
  ASSERT_TRUE(auq.Enqueue(MakeTask("r1")));
  ASSERT_TRUE(WaitFor([&] { return attempts.load() == 3; }));
  auq.WaitDrained();  // in-flight accounting survived the lost record
  EXPECT_EQ(auq.dead_letters(), 0u);  // ...but the record itself did not
  EXPECT_EQ(auq.depth(), 0u);
  EXPECT_EQ(metrics.GetGauge("auq.depth")->value(), 0);
  EXPECT_EQ(metrics.GetGauge("auq.dead_letters")->value(), 0);
  fault::FailpointRegistry::Global()->Disarm("auq.dead_letter");

  // Disarmed, the next poison task is recorded normally.
  ASSERT_TRUE(auq.Enqueue(MakeTask("r2")));
  ASSERT_TRUE(WaitFor([&] { return auq.dead_letters() == 1; }));
  EXPECT_EQ(metrics.GetGauge("auq.dead_letters")->value(), 1);
  auq.Shutdown();
}

TEST(AuqDeadLetterTest, DefaultRetriesForeverUntilSuccess) {
  AuqOptions options;
  options.worker_threads = 1;
  options.retry_backoff_ms = 1;  // max_attempts stays 0: paper semantics
  std::atomic<int> attempts{0};
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    // Fails more times than any sane bounded-retry default before
    // succeeding — eventual delivery must still happen.
    return attempts.fetch_add(1) < 12 ? Status::Unavailable("later")
                                      : Status::OK();
  });
  ASSERT_TRUE(auq.Enqueue(MakeTask("r1")));
  ASSERT_TRUE(WaitFor([&] { return auq.processed() == 1; }));
  EXPECT_EQ(auq.dead_letters(), 0u);
  EXPECT_EQ(attempts.load(), 13);
  auq.Shutdown();
}

TEST(AuqDeadLetterTest, AbandonDropsBacklogAndSquaresDepthGauge) {
  obs::MetricsRegistry metrics;
  AuqOptions options;
  options.worker_threads = 1;
  options.retry_backoff_ms = 1;
  options.metrics = &metrics;
  std::atomic<bool> block{true};
  std::atomic<bool> started{false};
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    started.store(true);
    while (block.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(auq.Enqueue(MakeTask("r" + std::to_string(i))));
  }
  const bool picked_up = WaitFor([&] { return started.load(); });
  if (!picked_up) block.store(false);  // let the worker die before we join
  ASSERT_TRUE(picked_up);
  EXPECT_GT(metrics.GetGauge("auq.depth")->value(), 0);

  // Abandon while the worker is stuck inside task 1: the queued backlog is
  // dropped immediately; the in-flight task is released afterwards and
  // completes, but nothing behind it is delivered.
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    block.store(false);
  });
  auq.Abandon();
  unblocker.join();
  // Crash semantics: backlog dropped, not delivered — and the shared depth
  // gauge must not keep counting ghost tasks.
  EXPECT_EQ(auq.processed(), 1u);
  EXPECT_EQ(metrics.GetGauge("auq.depth")->value(), 0);
  EXPECT_FALSE(auq.Enqueue(MakeTask("late")));
}

TEST(AuqDeadLetterTest, GracefulShutdownStillDeliversBacklog) {
  obs::MetricsRegistry metrics;
  AuqOptions options;
  options.worker_threads = 1;
  options.retry_backoff_ms = 1;
  options.metrics = &metrics;
  std::atomic<int> delivered{0};
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    delivered.fetch_add(1);
    return Status::OK();
  });
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(auq.Enqueue(MakeTask("r" + std::to_string(i))));
  }
  auq.Shutdown();
  EXPECT_EQ(delivered.load(), 5);
  EXPECT_EQ(metrics.GetGauge("auq.depth")->value(), 0);
}

}  // namespace
}  // namespace diffindex
