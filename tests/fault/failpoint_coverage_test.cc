// Arms the failpoints that model infrastructure faults no other suite
// exercises by name — region.open, wal.replay, auq.enqueue — and checks
// each one's documented failure mode end to end. Keeping every consulted
// point armed somewhere is enforced by the analyzer's
// failpoint-reachability rule.

#include <gtest/gtest.h>

#include <atomic>

#include "cluster/cluster.h"
#include "core/auq.h"
#include "fault/failpoint.h"

namespace diffindex {
namespace {

class FailpointCoverageTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::Global()->DisarmAll();
  }
};

// "region.open" fails the region bring-up itself: a table create that
// needs a new region surfaces the injected error instead of publishing a
// half-opened layout, and the next attempt (point disarmed) succeeds.
TEST_F(FailpointCoverageTest, RegionOpenFailureSurfacesOnCreateTable) {
  ClusterOptions options;
  options.num_servers = 1;
  options.regions_per_table = 2;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("healthy").ok());

  fault::FailpointRegistry::Global()->Arm(
      "region.open", fault::FailpointPolicy::ErrorOnce(
                         Status::IOError("injected region.open fault")));
  Status s = cluster->master()->CreateTable("wounded");
  EXPECT_FALSE(s.ok());

  fault::FailpointRegistry::Global()->Disarm("region.open");
  EXPECT_TRUE(cluster->master()->CreateTable("recovered").ok());
}

// "wal.replay" fails log-splitting during failover. A transient fault
// is retried on another attempt and self-heals, so the injection must
// be persistent (every hit) to prove the failure mode: the master
// exhausts recovery_open_attempts, reports the failure (first_failure
// propagates, the failed-region counter moves) and publishes nothing
// unreplayed.
TEST_F(FailpointCoverageTest, WalReplayFailureFailsRecoveryOfThatRegion) {
  ClusterOptions options;
  options.num_servers = 2;
  options.regions_per_table = 2;
  std::unique_ptr<Cluster> cluster;
  ASSERT_TRUE(Cluster::Create(options, &cluster).ok());
  ASSERT_TRUE(cluster->master()->CreateTable("t").ok());
  auto client = cluster->NewClient();
  ASSERT_TRUE(client->RefreshLayout().ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client
                    ->PutColumn("t", "row-" + std::to_string(i), "c", "v")
                    .ok());
  }

  const uint64_t failed_before =
      cluster->metrics()->GetCounter("recovery.failed")->value();
  ASSERT_TRUE(cluster->SilentlyCrashServer(1).ok());
  fault::FailpointRegistry::Global()->Arm(
      "wal.replay", fault::FailpointPolicy::ErrorEveryNth(
                        1, Status::IOError("injected wal.replay fault")));
  Status dead = cluster->master()->OnServerDead(1);
  EXPECT_FALSE(dead.ok());
  EXPECT_GT(cluster->metrics()->GetCounter("recovery.failed")->value(),
            failed_before);
}

// "auq.enqueue" models task loss between ack and queue insertion: the
// producer is told true, but nothing lands and nothing is processed.
// (This is the invariant break the chaos oracle exists to catch, which
// is why the chaos table deliberately never arms it.)
TEST_F(FailpointCoverageTest, AuqEnqueueLossAcksWithoutLanding) {
  std::atomic<int> processed{0};
  AuqOptions options;
  AsyncUpdateQueue auq(options, [&](const IndexTask&) {
    processed++;
    return Status::OK();
  });
  IndexTask task;
  task.base_table = "t";
  task.row = "row";
  task.ts = TimestampOracle::NowMicros();

  fault::FailpointRegistry::Global()->Arm(
      "auq.enqueue", fault::FailpointPolicy::ErrorEveryNth(1));
  EXPECT_TRUE(auq.Enqueue(task));  // acked...
  auq.WaitDrained();
  EXPECT_EQ(auq.depth(), 0u);      // ...but never landed
  EXPECT_EQ(processed.load(), 0);

  fault::FailpointRegistry::Global()->Disarm("auq.enqueue");
  EXPECT_TRUE(auq.Enqueue(task));
  auq.WaitDrained();
  EXPECT_EQ(processed.load(), 1);
  auq.Shutdown();
}

}  // namespace
}  // namespace diffindex
