#include "net/message.h"

#include <gtest/gtest.h>

#include "net/fabric.h"

namespace diffindex {
namespace {

TEST(CellKeyTest, RoundTrip) {
  const std::string key = EncodeCellKey("row1", "colA");
  std::string row, column;
  ASSERT_TRUE(DecodeCellKey(key, &row, &column));
  EXPECT_EQ(row, "row1");
  EXPECT_EQ(column, "colA");
}

TEST(CellKeyTest, EmptyColumn) {
  const std::string key = EncodeCellKey("row1", "");
  std::string row, column;
  ASSERT_TRUE(DecodeCellKey(key, &row, &column));
  EXPECT_EQ(row, "row1");
  EXPECT_TRUE(column.empty());
}

TEST(CellKeyTest, NoSeparatorFails) {
  std::string row, column;
  EXPECT_FALSE(DecodeCellKey(Slice("no-separator"), &row, &column));
}

TEST(CellKeyTest, CellsOfOneRowAreContiguous) {
  // All cells of row "ab" sort between "ab\x00" and "ab\x01".
  const std::string a = EncodeCellKey("ab", "z");
  const std::string b = EncodeCellKey("abc", "a");
  EXPECT_LT(a, b);  // row "ab" < row "abc" regardless of columns
}

TEST(MessageTest, PutRequestRoundTrip) {
  PutRequest req;
  req.table = "items";
  req.row = "row42";
  req.cells = {Cell{"title", "widget", false}, Cell{"price", "", true}};
  req.ts = 12345;
  req.return_old_values = true;

  std::string buf;
  req.EncodeTo(&buf);
  Slice in(buf);
  PutRequest decoded;
  ASSERT_TRUE(PutRequest::DecodeFrom(&in, &decoded));
  EXPECT_EQ(decoded.table, "items");
  EXPECT_EQ(decoded.row, "row42");
  ASSERT_EQ(decoded.cells.size(), 2u);
  EXPECT_EQ(decoded.cells[0].column, "title");
  EXPECT_EQ(decoded.cells[0].value, "widget");
  EXPECT_FALSE(decoded.cells[0].is_delete);
  EXPECT_TRUE(decoded.cells[1].is_delete);
  EXPECT_EQ(decoded.ts, 12345u);
  EXPECT_TRUE(decoded.return_old_values);
  EXPECT_TRUE(in.empty());
}

TEST(MessageTest, PutResponseRoundTrip) {
  PutResponse resp;
  resp.assigned_ts = 777;
  resp.old_values = {OldCellValue{"title", true, "old-widget", 700},
                     OldCellValue{"price", false, "", 0}};
  std::string buf;
  resp.EncodeTo(&buf);
  Slice in(buf);
  PutResponse decoded;
  ASSERT_TRUE(PutResponse::DecodeFrom(&in, &decoded));
  EXPECT_EQ(decoded.assigned_ts, 777u);
  ASSERT_EQ(decoded.old_values.size(), 2u);
  EXPECT_TRUE(decoded.old_values[0].found);
  EXPECT_EQ(decoded.old_values[0].value, "old-widget");
  EXPECT_FALSE(decoded.old_values[1].found);
}

TEST(MessageTest, ScanRowsRoundTrip) {
  ScanRowsResponse resp;
  resp.rows = {ScannedRow{"r1", {RowCell{"c1", "v1", 1}}},
               ScannedRow{"r2", {RowCell{"c1", "v2", 2},
                                 RowCell{"c2", "v3", 3}}}};
  std::string buf;
  resp.EncodeTo(&buf);
  Slice in(buf);
  ScanRowsResponse decoded;
  ASSERT_TRUE(ScanRowsResponse::DecodeFrom(&in, &decoded));
  ASSERT_EQ(decoded.rows.size(), 2u);
  EXPECT_EQ(decoded.rows[1].cells[1].value, "v3");
}

TEST(MessageTest, LayoutRoundTrip) {
  FetchLayoutResponse resp;
  resp.layout_epoch = 42;
  TableInfoWire table;
  table.name = "items";
  IndexInfoWire index;
  index.name = "by_title";
  index.column = "title";
  index.scheme = 2;
  index.index_table = "__idx_items_by_title";
  index.extra_columns = {"subtitle"};
  table.indexes.push_back(index);
  resp.tables.push_back(table);
  resp.regions.push_back(RegionInfoWire{"items", 7, "40", "80", 3});

  std::string buf;
  resp.EncodeTo(&buf);
  Slice in(buf);
  FetchLayoutResponse decoded;
  ASSERT_TRUE(FetchLayoutResponse::DecodeFrom(&in, &decoded));
  EXPECT_EQ(decoded.layout_epoch, 42u);
  ASSERT_EQ(decoded.tables.size(), 1u);
  ASSERT_EQ(decoded.tables[0].indexes.size(), 1u);
  EXPECT_EQ(decoded.tables[0].indexes[0].extra_columns[0], "subtitle");
  ASSERT_EQ(decoded.regions.size(), 1u);
  EXPECT_EQ(decoded.regions[0].server_id, 3u);
}

TEST(MessageTest, TruncatedDecodeFails) {
  PutRequest req;
  req.table = "t";
  req.row = "r";
  req.cells = {Cell{"c", "v", false}};
  std::string buf;
  req.EncodeTo(&buf);
  buf.resize(buf.size() - 3);
  Slice in(buf);
  PutRequest decoded;
  EXPECT_FALSE(PutRequest::DecodeFrom(&in, &decoded));
}

// ---- Fabric ----

TEST(FabricTest, CallReachesHandler) {
  Fabric fabric(nullptr);
  fabric.RegisterNode(5, [](MsgType type, Slice body, std::string* resp) {
    EXPECT_EQ(type, MsgType::kGetCell);
    *resp = "echo:" + body.ToString();
    return Status::OK();
  });
  std::string resp;
  ASSERT_TRUE(fabric.Call(1, 5, MsgType::kGetCell, "ping", &resp).ok());
  EXPECT_EQ(resp, "echo:ping");
  EXPECT_EQ(fabric.calls_made(), 1u);
}

TEST(FabricTest, UnregisteredNodeUnavailable) {
  Fabric fabric(nullptr);
  std::string resp;
  EXPECT_TRUE(
      fabric.Call(1, 99, MsgType::kGetCell, "", &resp).IsUnavailable());
}

TEST(FabricTest, DownNodeUnavailable) {
  Fabric fabric(nullptr);
  fabric.RegisterNode(5, [](MsgType, Slice, std::string*) {
    return Status::OK();
  });
  fabric.SetNodeDown(5, true);
  std::string resp;
  EXPECT_TRUE(
      fabric.Call(1, 5, MsgType::kGetCell, "", &resp).IsUnavailable());
  fabric.SetNodeDown(5, false);
  EXPECT_TRUE(fabric.Call(1, 5, MsgType::kGetCell, "", &resp).ok());
}

TEST(FabricTest, PartitionBlocksBothDirections) {
  Fabric fabric(nullptr);
  auto ok_handler = [](MsgType, Slice, std::string*) { return Status::OK(); };
  fabric.RegisterNode(1, ok_handler);
  fabric.RegisterNode(2, ok_handler);
  fabric.SetPartitioned(1, 2, true);
  std::string resp;
  EXPECT_TRUE(fabric.Call(1, 2, MsgType::kGetCell, "", &resp).IsUnavailable());
  EXPECT_TRUE(fabric.Call(2, 1, MsgType::kGetCell, "", &resp).IsUnavailable());
  // Other pairs unaffected.
  fabric.RegisterNode(3, ok_handler);
  EXPECT_TRUE(fabric.Call(1, 3, MsgType::kGetCell, "", &resp).ok());
  fabric.SetPartitioned(1, 2, false);
  EXPECT_TRUE(fabric.Call(1, 2, MsgType::kGetCell, "", &resp).ok());
}

TEST(FabricTest, HandlerStatusPropagates) {
  Fabric fabric(nullptr);
  fabric.RegisterNode(5, [](MsgType, Slice, std::string*) {
    return Status::WrongRegion("moved");
  });
  std::string resp;
  EXPECT_TRUE(fabric.Call(1, 5, MsgType::kPut, "", &resp).IsWrongRegion());
}

}  // namespace
}  // namespace diffindex
