// Lint fixture: exercises the blessed form of every construct the linter
// inspects. Expected: zero violations under every rule. Not compiled.

#include "core/observers.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/mutex.h"

namespace diffindex {

class FixtureClean {
 public:
  Status Run(IndexManager* mgr, const IndexTask& task,
             const std::string& new_row, const std::string& old_row,
             obs::MetricsRegistry* metrics, obs::TraceCollector* traces,
             bool fg) {
    DIFFINDEX_FAILPOINT("index.put");
    obs::SpanTimer span(metrics, traces, "aps.task");
    metrics->GetCounter("index.read")->Add();
    // A dynamic suffix on a documented wildcard row is fine.
    metrics->GetCounter("fault.injected." + task.index.index_table)->Add();
    MutexLock lock(mu_);
    auto owned =
        std::unique_ptr<int>(new int(7));  // NOLINT(diffindex-naked-new)
    (void)owned;
    DIFFINDEX_RETURN_NOT_OK(
        mgr->PutIndexEntry(task.index.index_table, new_row, task.ts, fg));
    return mgr->DeleteIndexEntry(task.index.index_table, old_row,
                                 task.ts - kDelta, fg);
  }

 private:
  Mutex mu_;
};

}  // namespace diffindex
