// Lint fixture: DeleteIndexEntry called with the bare edit timestamp.
// Section 4.3 requires old-entry deletes at `ts - kDelta` so a delete
// never shadows the index entry of a concurrent re-insert at the same
// ts. Expected: exactly one `index-ts` violation. Not compiled.

#include "core/observers.h"

namespace diffindex {

Status FixtureBadIndexTsDelete(IndexManager* mgr, const IndexTask& task,
                               const std::string& old_row, bool fg) {
  DIFFINDEX_RETURN_NOT_OK(mgr->DeleteIndexEntry(
      task.index.index_table, old_row, task.ts - kDelta, fg));
  return mgr->DeleteIndexEntry(task.index.index_table, old_row, task.ts,
                               fg);  // violation
}

}  // namespace diffindex
