// Lint fixture: a nested scoped-lock acquisition of two annotated locks
// that runs AGAINST the declared order (outer_mu_ is declared before
// inner_mu_, but Backwards() acquires inner first) with no
// NOLINT(diffindex-lock-order) waiver. Expected: `lock-order` violation
// only (the conforming Forward() nesting must not fire). Not compiled.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

class FixtureNested {
 public:
  void Forward() {
    MutexLock outer(&outer_mu_);
    MutexLock inner(&inner_mu_);  // declared order: fine
  }

  void Backwards() {
    MutexLock inner(&inner_mu_);
    MutexLock outer(&outer_mu_);  // violation: inner -> outer undeclared
  }

 private:
  Mutex outer_mu_ ACQUIRED_BEFORE(inner_mu_);
  Mutex inner_mu_;
};

}  // namespace diffindex
