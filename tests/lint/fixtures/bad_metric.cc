// Lint fixture: creates an instrument whose name has no row in the
// DESIGN.md section 6 metric names table. Expected: exactly one
// `metric-names` violation. Not compiled.

#include "obs/metrics.h"

namespace diffindex {

void FixtureBadMetric(obs::MetricsRegistry* metrics) {
  metrics->GetCounter("index.read")->Add();       // documented: clean
  metrics->GetCounter("index.mystery")->Add();    // violation
  metrics->GetCounter(DynamicName());             // no literal: skipped
}

}  // namespace diffindex
