// Lint fixture: opens a SpanTimer on a stage missing from the DESIGN.md
// span-stage list. Expected: exactly one `metric-names` violation.
// Not compiled.

#include "obs/trace.h"

namespace diffindex {

void FixtureBadSpanStage(obs::MetricsRegistry* m, obs::TraceCollector* t) {
  obs::SpanTimer ok(m, t, "rs.put");             // documented: clean
  obs::SpanTimer bad(m, t, "rs.secret_stage");   // violation
}

}  // namespace diffindex
