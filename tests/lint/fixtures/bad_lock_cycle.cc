// Lint fixture: the ACQUIRED_BEFORE annotations declare a cyclic lock
// order (a before b, b before a) — a declared deadlock. Expected:
// `lock-order` violation only. Not compiled.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

class FixtureLockCycle {
 private:
  Mutex alpha_mu_ ACQUIRED_BEFORE(beta_mu_);
  Mutex beta_mu_ ACQUIRED_BEFORE(alpha_mu_);
};

}  // namespace diffindex
