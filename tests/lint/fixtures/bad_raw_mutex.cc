// Lint fixture: uses a raw std synchronization primitive instead of the
// annotated wrappers in util/mutex.h. Expected: `raw-mutex` violations
// only (the member, the lock_guard, and its template argument).
// Not compiled.

#include <mutex>

namespace diffindex {

class FixtureRawMutex {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // violation (lock_guard)
    ++count_;
  }

 private:
  std::mutex mu_;  // violation (mutex)
  int count_ = 0;
};

}  // namespace diffindex
