// Lint fixture: PutIndexEntry called with a shifted timestamp, breaking
// the Section 4.3 ordering rule (index entries live at the base edit's
// ts; only old-entry deletes are shifted down by kDelta). Expected:
// exactly one `index-ts` violation. Not compiled.

#include "core/observers.h"

namespace diffindex {

Status FixtureBadIndexTsPut(IndexManager* mgr, const IndexTask& task,
                            const std::string& new_row, bool fg) {
  DIFFINDEX_RETURN_NOT_OK(
      mgr->PutIndexEntry(task.index.index_table, new_row, task.ts, fg));
  return mgr->PutIndexEntry(task.index.index_table, new_row,
                            task.ts - kDelta, fg);  // violation
}

}  // namespace diffindex
