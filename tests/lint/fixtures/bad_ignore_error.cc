// Lint fixture: .IgnoreError() with no adjacent rationale comment.
// Expected: exactly one `ignore-error` violation — the commented forms
// (trailing, line above, and multi-line statement) are all clean.
// Not compiled.

namespace diffindex {

Status Cleanup();

void FixtureIgnoreError() {
  Cleanup().IgnoreError();  // trailing rationale: best-effort cleanup

  // Rationale above the statement: failure only delays the next sweep.
  Cleanup().IgnoreError();

  // Rationale above a statement that wraps across lines, with an
  // initializer brace inside the call — still adjacent.
  CleanupWith(Options{/*retries=*/0})
      .IgnoreError();

  Cleanup().IgnoreError();  //

  Cleanup().IgnoreError();
}

}  // namespace diffindex
