// Lint fixture: consults a failpoint that is not in the DESIGN.md
// section 7 catalog. Expected: exactly one `failpoint-names` violation.
// Not compiled; scanned by tests/lint/run_lint_fixtures.py.

#include "fault/failpoint.h"

namespace diffindex {

void FixtureBadFailpoint() {
  DIFFINDEX_FAILPOINT("wal.append");        // documented: clean
  DIFFINDEX_FAILPOINT("wal.undocumented");  // violation
}

}  // namespace diffindex
