// Lint fixture: a naked `new` without a NOLINT(diffindex-naked-new)
// waiver. Expected: exactly one `naked-new` violation. Not compiled.

namespace diffindex {

struct Widget {
  int x = 0;
};

Widget* FixtureNakedNew(char* mem) {
  Widget* waived = new Widget();  // NOLINT(diffindex-naked-new)
  Widget* placed = new (mem) Widget();  // placement new: clean
  (void)waived;
  (void)placed;
  return new Widget();  // violation
}

}  // namespace diffindex
