// Lint fixture: an lsm/ file including a cluster/ header. The storage
// engine must stay below the distribution layer. Expected: exactly one
// `lsm-layering` violation. Not compiled.

#include "cluster/region.h"
#include "lsm/lsm_tree.h"

namespace diffindex {

void FixtureLsmLayering() {}

}  // namespace diffindex
