#!/usr/bin/env python3
"""Proves every diffindex_lint.py rule still fires.

Runs the linter (all rules) over each fixture in tests/lint/fixtures/ and
checks that the bad fixtures report violations of exactly their one
intended rule, and that clean.cc reports nothing. Registered as the
`lint_fixtures` ctest.
"""

import argparse
import os
import re
import subprocess
import sys

# fixture file -> the one rule it must (and may only) trip.
EXPECTATIONS = {
    "bad_failpoint.cc": "failpoint-names",
    "bad_metric.cc": "metric-names",
    "bad_span_stage.cc": "metric-names",
    "bad_raw_mutex.cc": "raw-mutex",
    "bad_naked_new.cc": "naked-new",
    "bad_index_ts_put.cc": "index-ts",
    "bad_index_ts_delete.cc": "index-ts",
    "bad_ignore_error.cc": "ignore-error",
    "bad_lock_cycle.cc": "lock-order",
    "bad_nested_unannotated.cc": "lock-order",
    os.path.join("lsm", "bad_layering.cc"): "lsm-layering",
    "clean.cc": None,
}


def run_linter(root, fixture_path):
    linter = os.path.join(root, "tools", "lint", "diffindex_lint.py")
    proc = subprocess.run(
        [sys.executable, linter, "--root", root, fixture_path],
        capture_output=True,
        text=True,
    )
    rules = re.findall(r"\[([a-z-]+)\]", proc.stdout)
    return proc.returncode, rules, proc.stdout


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True, help="repo root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    fixture_dir = os.path.join(root, "tests", "lint", "fixtures")

    failures = []
    for rel, expected_rule in sorted(EXPECTATIONS.items()):
        path = os.path.join(fixture_dir, rel)
        if not os.path.exists(path):
            failures.append("%s: fixture missing" % rel)
            continue
        code, rules, out = run_linter(root, path)
        if expected_rule is None:
            if code != 0 or rules:
                failures.append(
                    "%s: expected clean, got exit %d:\n%s" % (rel, code, out)
                )
            continue
        if code != 1:
            failures.append(
                "%s: expected exit 1 (violations), got %d:\n%s"
                % (rel, code, out)
            )
            continue
        if not rules:
            failures.append("%s: no violations reported:\n%s" % (rel, out))
            continue
        stray = sorted(set(rules) - {expected_rule})
        if stray:
            failures.append(
                "%s: expected only [%s] violations, also got %s:\n%s"
                % (rel, expected_rule, stray, out)
            )

    # The unused fixture set would rot silently; fail if a fixture appears
    # on disk without an expectation.
    for dirpath, _, filenames in os.walk(fixture_dir):
        for name in filenames:
            rel = os.path.relpath(os.path.join(dirpath, name), fixture_dir)
            if rel not in EXPECTATIONS:
                failures.append("%s: fixture has no expectation entry" % rel)

    if failures:
        for f in failures:
            print("FAIL:", f)
        return 1
    print("ok: %d fixtures checked" % len(EXPECTATIONS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
