// Section 8.2 opening claim: "in a moderate cluster and data set,
// query-by-index is 2-3 orders of magnitude faster compared to
// parallel-table-scan" [15]. This bench runs a highly selective query
// (one matching row) both ways:
//   * via the global secondary index (one index lookup + one row fetch);
//   * via a full table scan filtering on the predicate client-side.

#include <chrono>

#include "bench_common.h"

namespace diffindex::bench {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t TimeMicros(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Query-by-index vs parallel table scan (selective query)",
              "Tan et al., EDBT 2014, Section 8.2 (citing [15])");

  EnvOptions env_options;
  env_options.num_items = 20000;
  env_options.scheme = IndexScheme::kSyncFull;
  ApplySmoke(&env_options);  // keep num_items consistent with the probes

  RunnerOptions runner_options;  // unused ops config; load only
  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto client = env.cluster->NewDiffIndexClient();

  const uint64_t kProbes = SmokeN(10, 3);
  uint64_t index_total = 0, scan_total = 0;
  Random rng(4242);
  for (uint64_t probe = 0; probe < kProbes; probe++) {
    const uint64_t id = rng.Uniform(env_options.num_items);
    const std::string title = env.items->TitleValue(id, 0);

    index_total += TimeMicros([&] {
      std::vector<ScannedRow> rows;
      Status qs = client->QueryByIndex("item", ItemTable::kTitleIndex,
                                       title, &rows);
      if (!qs.ok() || rows.size() != 1) {
        printf("index query failed (%s, %zu rows)\n", qs.ToString().c_str(),
               rows.size());
      }
    });

    scan_total += TimeMicros([&] {
      std::vector<ScannedRow> rows;
      Status qs =
          client->raw_client()->ScanRows("item", "", "", kMaxTimestamp, 0,
                                         &rows);
      size_t matches = 0;
      for (const auto& row : rows) {
        for (const auto& cell : row.cells) {
          if (cell.column == ItemTable::kTitleColumn &&
              cell.value == title) {
            matches++;
          }
        }
      }
      if (!qs.ok() || matches != 1) {
        printf("table scan failed (%s)\n", qs.ToString().c_str());
      }
    });
  }

  const double index_avg = static_cast<double>(index_total) / kProbes;
  const double scan_avg = static_cast<double>(scan_total) / kProbes;
  printf("query-by-index   : %10.0f us/query\n", index_avg);
  printf("full-table-scan  : %10.0f us/query\n", scan_avg);
  printf("speedup          : %10.0fx\n", scan_avg / index_avg);
  printf("\nExpected shape: the index is orders of magnitude faster for\n");
  printf("selective queries (the paper reports 2-3 orders of magnitude\n");
  printf("at 40M rows; the gap widens with table size).\n");
  return 0;
}
