// Section 5.3, "Low performance impact of the recovery protocol": the
// draining-AUQ-before-flush constraint "will slightly delay flush when the
// system is under a heavy write load. We show in Section 8 that in
// practice, this delay is reasonable."
//
// This bench drives a heavy async-indexed write load with small memtables
// (frequent flushes) and reports how much put-side stall the pause &
// drain protocol induced, compared against a no-index run with identical
// flush pressure.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunPoint(const char* label, bool with_index) {
  EnvOptions env_options;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.with_title_index = with_index;
  env_options.num_items = 4000;
  env_options.settle_to_disk = false;

  RunnerOptions runner_options;
  runner_options.op = WorkloadOp::kUpdateFullRow;
  runner_options.threads = 8;
  runner_options.total_operations = 4000;
  runner_options.seed = 47;

  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  cluster_options.regions_per_table = 8;
  cluster_options.latency.scale = 1.0;
  // Small memtables: flush roughly every few hundred puts per region.
  cluster_options.server.lsm.memtable_flush_bytes = 128 << 10;

  BenchEnv env;
  {
    std::unique_ptr<Cluster> cluster;
    Status s = Cluster::Create(cluster_options, &cluster);
    if (!s.ok()) {
      printf("setup failed: %s\n", s.ToString().c_str());
      return;
    }
    env.cluster = std::move(cluster);
  }
  ItemTableOptions item_options;
  item_options.num_items = env_options.num_items;
  item_options.title_scheme = IndexScheme::kAsyncSimple;
  item_options.create_title_index = with_index;
  item_options.create_price_index = false;
  env.items = std::make_unique<ItemTable>(env.cluster.get(), item_options);
  if (!env.items->Create().ok()) return;
  env.runner = std::make_unique<WorkloadRunner>(env.cluster.get(),
                                                env.items.get(),
                                                runner_options);
  if (!env.runner->LoadItems(8).ok()) return;

  RunnerResult result;
  if (!env.runner->Run(&result).ok()) return;
  WaitQuiescent(env.cluster.get());

  const uint64_t flushes = env.cluster->TotalFlushes();
  const uint64_t stall = env.cluster->TotalFlushStallMicros();
  printf("%-10s tps=%7.0f avg=%6.0fus p99=%7lluus  flushes=%4llu  "
         "put-stall: total=%7llu us (%6.0f us/flush, %4.1f us/op)\n",
         label, result.tps, result.latency->Average(),
         static_cast<unsigned long long>(result.latency->Percentile(99)),
         static_cast<unsigned long long>(flushes),
         static_cast<unsigned long long>(stall),
         flushes > 0 ? static_cast<double>(stall) / flushes : 0.0,
         result.operations > 0
             ? static_cast<double>(stall) / result.operations
             : 0.0);
}

}  // namespace
}  // namespace diffindex::bench

int main() {
  using namespace diffindex;
  using namespace diffindex::bench;
  PrintHeader("Drain-AUQ-before-flush: put stall under heavy write load",
              "Tan et al., EDBT 2014, Section 5.3 (Figure 5 protocol)");
  RunPoint("no-index", false);
  RunPoint("async", true);
  printf("\nExpected shape: the async run adds stall versus no-index (puts\n");
  printf("briefly blocked while the AUQ drains before each flush), but\n");
  printf("the per-op amortized delay stays small — the paper's 'this\n");
  printf("delay is reasonable'.\n");
  return 0;
}
