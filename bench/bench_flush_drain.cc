// Section 5.3, "Low performance impact of the recovery protocol": the
// draining-AUQ-before-flush constraint "will slightly delay flush when the
// system is under a heavy write load. We show in Section 8 that in
// practice, this delay is reasonable."
//
// This bench drives a heavy async-indexed write load with small memtables
// (frequent flushes) and reports how much put-side stall the pause &
// drain protocol induced, compared against a no-index run with identical
// flush pressure. The indexed run is measured at drain_batch_size=1
// (task-at-a-time APS) and >1 (coalescing batched drain, Section 11 of
// DESIGN.md): the batched drain coalesces superseded tasks and ships one
// multi-put per region server, so both the put stall and the tail-drain
// time shrink.

#include <chrono>

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunPoint(const char* label, bool with_index, int drain_batch_size,
              MetricsJsonWriter* metrics_out) {
  EnvOptions env_options;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.with_title_index = with_index;
  env_options.num_items = 4000;
  env_options.settle_to_disk = false;
  ApplySmoke(&env_options);

  RunnerOptions runner_options;
  runner_options.op = WorkloadOp::kUpdateFullRow;
  runner_options.threads = 8;
  runner_options.total_operations = 4000;
  runner_options.seed = 47;
  ApplySmoke(&runner_options);

  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  cluster_options.regions_per_table = 8;
  cluster_options.latency.scale = 1.0;
  // Small memtables: flush roughly every few hundred puts per region.
  cluster_options.server.lsm.memtable_flush_bytes = 128 << 10;
  cluster_options.auq.drain_batch_size = drain_batch_size;
  ApplySmoke(&cluster_options);

  BenchEnv env;
  {
    std::unique_ptr<Cluster> cluster;
    Status s = Cluster::Create(cluster_options, &cluster);
    if (!s.ok()) {
      printf("setup failed: %s\n", s.ToString().c_str());
      return;
    }
    env.cluster = std::move(cluster);
  }
  ItemTableOptions item_options;
  item_options.num_items = env_options.num_items;
  item_options.title_scheme = IndexScheme::kAsyncSimple;
  item_options.create_title_index = with_index;
  item_options.create_price_index = false;
  env.items = std::make_unique<ItemTable>(env.cluster.get(), item_options);
  if (!env.items->Create().ok()) return;
  env.runner = std::make_unique<WorkloadRunner>(env.cluster.get(),
                                                env.items.get(),
                                                runner_options);
  if (!env.runner->LoadItems(env_options.load_threads).ok()) return;

  RunnerResult result;
  if (!env.runner->Run(&result).ok()) return;
  // Tail drain: how long the AUQ backlog takes to empty once the offered
  // load stops — the direct beneficiary of the coalescing batched drain.
  const auto drain_start = std::chrono::steady_clock::now();
  WaitQuiescent(env.cluster.get());
  const double drain_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - drain_start)
              .count()) /
      1000.0;

  const uint64_t flushes = env.cluster->TotalFlushes();
  const uint64_t stall = env.cluster->TotalFlushStallMicros();
  const uint64_t coalesced =
      env.cluster->metrics()->GetCounter("auq.coalesced")->value();
  printf("%-14s tps=%7.0f avg=%6.0fus p99=%7lluus  flushes=%4llu  "
         "put-stall: total=%7llu us (%6.0f us/flush, %4.1f us/op)  "
         "tail-drain=%6.1fms  coalesced=%llu\n",
         label, result.tps, result.latency->Average(),
         static_cast<unsigned long long>(result.latency->Percentile(99)),
         static_cast<unsigned long long>(flushes),
         static_cast<unsigned long long>(stall),
         flushes > 0 ? static_cast<double>(stall) / flushes : 0.0,
         result.operations > 0
             ? static_cast<double>(stall) / result.operations
             : 0.0,
         drain_ms, static_cast<unsigned long long>(coalesced));
  metrics_out->AddPoint(label, env.cluster.get());
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  MetricsJsonWriter metrics_out(args.metrics_json);
  PrintHeader("Drain-AUQ-before-flush: put stall under heavy write load",
              "Tan et al., EDBT 2014, Section 5.3 (Figure 5 protocol)");
  RunPoint("no-index", false, 1, &metrics_out);
  RunPoint("async drain=1", true, 1, &metrics_out);
  RunPoint("async drain=8", true, 8, &metrics_out);
  printf("\nExpected shape: the async runs add stall versus no-index (puts\n");
  printf("briefly blocked while the AUQ drains before each flush), but\n");
  printf("the per-op amortized delay stays small — the paper's 'this\n");
  printf("delay is reasonable'. The drain=8 run coalesces superseded\n");
  printf("tasks and ships one RPC per server per batch, so its put TPS\n");
  printf("is at least that of drain=1 and its stall/tail-drain smaller.\n");
  return metrics_out.Write() ? 0 : 1;
}
