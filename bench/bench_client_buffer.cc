// The paper's client-buffer remark (Section 8.1/8.2): "For a fair
// comparison with sync-full, we turn off the client buffer in both YCSB
// and coprocessors. As a consequence, the throughput we report is not as
// good as those in [12]... the throughput of the system can be further
// optimized by enabling client buffer for update."
//
// This bench measures update throughput with the buffer off (one RPC per
// put — the configuration of Figures 7/10) and on (per-server multi-put
// batches), for no-index and async-simple tables.

#include "bench_common.h"

#include "cluster/buffered_writer.h"

namespace diffindex::bench {
namespace {

void RunPoint(const char* label, bool with_index, size_t batch) {
  EnvOptions env_options;
  env_options.with_title_index = with_index;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.num_items = 10000;
  ApplySmoke(&env_options);

  RunnerOptions unused;
  BenchEnv env;
  if (!MakeLoadedEnv(env_options, unused, &env).ok()) return;

  const uint64_t kItems = env_options.num_items;
  const uint64_t kOps = SmokeN(8000, 200);
  const int kThreads = g_smoke ? 4 : 8;
  std::atomic<uint64_t> next{0};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto client = env.cluster->NewClient();
      BufferedWriter writer(client, "item", batch == 0 ? 1 : batch);
      Random rng(71 + t);
      for (;;) {
        const uint64_t op = next.fetch_add(1, std::memory_order_relaxed);
        if (op >= kOps) break;
        const uint64_t id = rng.Uniform(kItems);
        if (batch == 0) {
          (void)client->PutColumn("item", env.items->RowKey(id),
                                  ItemTable::kTitleColumn,
                                  env.items->TitleValue(id, op + 1));
        } else {
          (void)writer.AddColumn(env.items->RowKey(id),
                                 ItemTable::kTitleColumn,
                                 env.items->TitleValue(id, op + 1));
        }
      }
      (void)writer.Flush();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()) /
      1e6;
  if (with_index) WaitQuiescent(env.cluster.get());
  printf("%-34s tps=%8.0f\n", label, static_cast<double>(kOps) / seconds);
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Client write buffer: update throughput, buffer off vs on",
              "Tan et al., EDBT 2014, Section 8.1 (client buffer remark)");

  printf("-- no index --\n");
  RunPoint("buffer off (1 RPC/put)", false, 0);
  RunPoint("buffer on, batch=16", false, 16);
  RunPoint("buffer on, batch=64", false, 64);

  printf("-- async-simple index --\n");
  RunPoint("buffer off (1 RPC/put)", true, 0);
  RunPoint("buffer on, batch=64", true, 64);

  printf("\nExpected shape: batching amortizes the client<->server round\n");
  printf("trip and lifts throughput well above the unbuffered runs the\n");
  printf("paper reports (its Figures use buffer-off, as do ours).\n");
  return 0;
}
