// Read-path baseline for the query engine (DESIGN.md §13): the same
// range workload measured through (a) the legacy sequential path —
// RangeByIndex's region-by-region walk plus one GetRow per hit — (b) the
// engine's scatter-gather scan with batched read-repair, (c) the
// scatter-gather scan serving a covered projection (zero base reads),
// and, for sync-insert, (d) scatter-gather with the sequential per-hit
// repair, isolating the MultiGet batching delta.
//
// The indexed values are hex-prefixed strings, so the index entries
// spread across every index-table region and the scatter legs genuinely
// fan out (uint64-encoded values would all sort into the first region).
// Injected costs (network hop 40us, disk read 180us) make the RPC-count
// differences visible in wall-clock latency.

#include <thread>

#include "bench_common.h"
#include "core/diff_index_client.h"
#include "query/engine.h"
#include "util/random.h"

namespace diffindex::bench {
namespace {

constexpr char kTable[] = "scan_items";
constexpr char kIndex[] = "by_skey";
constexpr char kColumn[] = "skey";
constexpr char kExtra[] = "aux";

constexpr uint64_t kItems = 6000;
constexpr int kQueries = 40;
constexpr int kRangePrefixWidth = 8;  // ~items*width/256 entries per query

// Wide ranges for the scan-stage comparison: ~half the keyspace, so the
// range genuinely spans several index regions and the serial region walk
// pays one round trip per region where the scatter legs pay one.
constexpr int kWideQueries = 8;
constexpr int kWidePrefixWidth = 128;

std::string RowName(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%02x-i%05llu",
           static_cast<unsigned>((i * 37) % 256),
           static_cast<unsigned long long>(i));
  return buf;
}

std::string SKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%02x-%05llu",
           static_cast<unsigned>((i * 59) % 256),
           static_cast<unsigned long long>(i));
  return buf;
}

struct Env {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<DiffIndexClient> client;
};

Status MakeEnv(IndexScheme scheme, uint64_t items, Env* env) {
  ClusterOptions options;
  options.num_servers = 4;
  // Finer partitioning than the default benches: the scatter-gather
  // design point is many regions per range, where the serial walk pays
  // one round trip per region. Hop cost is cross-rack rather than the
  // default same-rack 40us, as in the paper's distributed testbed.
  options.regions_per_table = 16;
  options.latency.network_hop_micros = 100;
  options.latency.scale = 1.0;
  options.server.block_cache_bytes = 256 << 10;
  options.server.base_row_cache_bytes = 4 << 20;
  ApplySmoke(&options);
  DIFFINDEX_RETURN_NOT_OK(Cluster::Create(options, &env->cluster));
  DIFFINDEX_RETURN_NOT_OK(env->cluster->master()->CreateTable(kTable));
  IndexDescriptor index;
  index.name = kIndex;
  index.column = kColumn;
  index.scheme = scheme;
  index.extra_columns = {kExtra};
  DIFFINDEX_RETURN_NOT_OK(env->cluster->master()->CreateIndex(kTable, index));
  env->client = env->cluster->NewDiffIndexClient();
  DIFFINDEX_RETURN_NOT_OK(env->client->raw_client()->RefreshLayout());

  // Parallel load; skey + aux + body in one put per row (the covered
  // projection serves skey/aux at the entry's timestamp).
  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      auto client = env->cluster->NewDiffIndexClient();
      (void)t;
      for (;;) {
        const uint64_t i = next.fetch_add(1);
        if (i >= items || failed.load()) return;
        Status s = client->Put(
            kTable, RowName(i),
            {Cell{kColumn, SKey(i), false},
             Cell{kExtra, "aux" + std::to_string(i), false},
             Cell{"body", std::string(100, 'b'), false}});
        if (!s.ok()) failed.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) return Status::Aborted("load failed");

  auto raw = env->cluster->NewClient();
  DIFFINDEX_RETURN_NOT_OK(raw->FlushTable(kTable));
  DIFFINDEX_RETURN_NOT_OK(raw->CompactTable(kTable));
  WaitQuiescent(env->cluster.get());
  return Status::OK();
}

// One query = one [lo, hi) prefix range; every mode replays the same
// seeded range sequence so the latency comparison is like-for-like.
struct QueryGen {
  Random rng;
  int width;
  explicit QueryGen(uint32_t seed, int range_width = kRangePrefixWidth)
      : rng(seed), width(range_width) {}
  void Next(std::string* lo, std::string* hi) {
    const uint32_t p = rng.Uniform(256 - static_cast<uint32_t>(width));
    char buf[16];
    snprintf(buf, sizeof(buf), "%02x", p);
    *lo = buf;
    snprintf(buf, sizeof(buf), "%02x", p + static_cast<uint32_t>(width));
    *hi = buf;
  }
};

using QueryFn = Status (*)(Env*, ReadEngine*, const std::string&,
                           const std::string&, uint64_t*);

// (a) Legacy path: sequential region walk + one GetRow per hit.
Status SeqLoopQuery(Env* env, ReadEngine*, const std::string& lo,
                    const std::string& hi, uint64_t* rows_out) {
  std::vector<IndexHit> hits;
  DIFFINDEX_RETURN_NOT_OK(
      env->client->RangeByIndex(kTable, kIndex, lo, hi, 0, &hits));
  uint64_t rows = 0;
  for (const IndexHit& hit : hits) {
    GetRowResponse resp;
    DIFFINDEX_RETURN_NOT_OK(env->client->GetRow(kTable, hit.base_row, &resp));
    if (resp.found) rows++;
  }
  *rows_out = rows;
  return Status::OK();
}

Status EngineQuery(Env* env, ReadEngine* engine, const std::string& lo,
                   const std::string& hi, bool covered, bool batched,
                   uint64_t* rows_out) {
  (void)env;
  ScanSpec spec;
  spec.table = kTable;
  spec.index_name = kIndex;
  spec.value_lo_encoded = lo;
  spec.value_hi_encoded = hi;
  spec.projection = {kColumn, kExtra};
  ScanOptions options;
  options.allow_covered = covered;
  options.batched_repair = batched;
  std::vector<ScannedRow> rows;
  DIFFINDEX_RETURN_NOT_OK(engine->ScanByIndex(spec, options, &rows));
  *rows_out = rows.size();
  return Status::OK();
}

Status ScatterQuery(Env* env, ReadEngine* engine, const std::string& lo,
                    const std::string& hi, uint64_t* rows) {
  return EngineQuery(env, engine, lo, hi, /*covered=*/false,
                     /*batched=*/true, rows);
}

Status ScatterSeqRepairQuery(Env* env, ReadEngine* engine,
                             const std::string& lo, const std::string& hi,
                             uint64_t* rows) {
  return EngineQuery(env, engine, lo, hi, /*covered=*/false,
                     /*batched=*/false, rows);
}

Status CoveredQuery(Env* env, ReadEngine* engine, const std::string& lo,
                    const std::string& hi, uint64_t* rows) {
  return EngineQuery(env, engine, lo, hi, /*covered=*/true,
                     /*batched=*/true, rows);
}

// Scan-stage pair: the serial region walk vs the scatter legs, with the
// base fetch out of the picture on both sides (hits only / covered
// entries only, one page wide enough for the whole range).
Status WideSeqScanQuery(Env* env, ReadEngine*, const std::string& lo,
                        const std::string& hi, uint64_t* rows_out) {
  std::vector<IndexHit> hits;
  DIFFINDEX_RETURN_NOT_OK(
      env->client->RangeByIndex(kTable, kIndex, lo, hi, 0, &hits));
  *rows_out = hits.size();
  return Status::OK();
}

Status WideScatterQuery(Env* env, ReadEngine* engine, const std::string& lo,
                        const std::string& hi, uint64_t* rows_out) {
  (void)env;
  ScanSpec spec;
  spec.table = kTable;
  spec.index_name = kIndex;
  spec.value_lo_encoded = lo;
  spec.value_hi_encoded = hi;
  spec.projection = {kColumn};
  ScanOptions options;
  options.page_entries = 8192;  // one page: the legs cover the range
  options.max_parallel = 8;
  std::vector<ScannedRow> rows;
  DIFFINDEX_RETURN_NOT_OK(engine->ScanByIndex(spec, options, &rows));
  *rows_out = rows.size();
  return Status::OK();
}

void RunMode(Env* env, ReadEngine* engine, const char* scheme,
             const char* mode, QueryFn fn, int full_queries = kQueries,
             int range_width = kRangePrefixWidth) {
  const int queries = static_cast<int>(
      SmokeN(static_cast<uint64_t>(full_queries), 6));
  // Per-mode latency histogram in the cluster registry: the JSON
  // snapshot carries every mode's distribution for this scheme's point.
  Histogram* hist = env->cluster->metrics()->GetHistogram(
      std::string("bench.read.") + mode + "_micros");
  obs::Counter* base_reads =
      env->cluster->metrics()->GetCounter("io.base_read");
  const uint64_t base_reads_before = base_reads->value();

  QueryGen gen(1234, range_width);
  uint64_t total_rows = 0;
  for (int q = 0; q < queries; q++) {
    std::string lo, hi;
    gen.Next(&lo, &hi);
    const auto start = std::chrono::steady_clock::now();
    uint64_t rows = 0;
    Status s = fn(env, engine, lo, hi, &rows);
    const uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (!s.ok()) {
      printf("%s/%s: query failed: %s\n", scheme, mode,
             s.ToString().c_str());
      return;
    }
    hist->Add(micros);
    total_rows += rows;
  }
  printf("%-13s %-18s avg=%9.0fus  p50=%8lluus  p95=%8lluus  "
         "rows/query=%4llu  base-reads/query=%5llu\n",
         scheme, mode, hist->Average(),
         static_cast<unsigned long long>(hist->Percentile(50)),
         static_cast<unsigned long long>(hist->Percentile(95)),
         static_cast<unsigned long long>(total_rows /
                                         static_cast<uint64_t>(queries)),
         static_cast<unsigned long long>(
             (base_reads->value() - base_reads_before) /
             static_cast<uint64_t>(queries)));
}

void RunSeries(IndexScheme scheme, MetricsJsonWriter* writer) {
  const char* label = SchemeLabel(scheme);
  Env env;
  Status s = MakeEnv(scheme, SmokeN(kItems, 400), &env);
  if (!s.ok()) {
    printf("%s: setup failed: %s\n", label, s.ToString().c_str());
    return;
  }
  ReadEngineOptions engine_options;
  engine_options.max_parallel_legs = 8;  // wide scans span ~8 regions
  ReadEngine engine(env.client.get(), engine_options);

  // Warm the caches once with the query ranges every mode replays, so
  // mode order does not bias the comparison.
  {
    QueryGen gen(1234);
    const int queries = static_cast<int>(SmokeN(kQueries, 6));
    for (int q = 0; q < queries; q++) {
      std::string lo, hi;
      gen.Next(&lo, &hi);
      uint64_t rows = 0;
      (void)SeqLoopQuery(&env, &engine, lo, hi, &rows);
    }
  }

  RunMode(&env, &engine, label, "scan_seq", WideSeqScanQuery,
          kWideQueries, kWidePrefixWidth);
  RunMode(&env, &engine, label, "scan_scatter", WideScatterQuery,
          kWideQueries, kWidePrefixWidth);
  RunMode(&env, &engine, label, "seq_loop", SeqLoopQuery);
  if (scheme == IndexScheme::kSyncInsert) {
    RunMode(&env, &engine, label, "scatter_seqrepair",
            ScatterSeqRepairQuery);
  }
  RunMode(&env, &engine, label, "scatter_batched", ScatterQuery);
  RunMode(&env, &engine, label, "covered", CoveredQuery);
  writer->AddPoint(label, env.cluster.get());
  printf("\n");
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Read engine: scatter-gather / covered / batched repair",
              "Tan et al., EDBT 2014, Section 8.2 read path; "
              "Luo & Carey, arXiv 1808.08896 Section 5");
  MetricsJsonWriter writer(args.metrics_json);
  RunSeries(IndexScheme::kSyncFull, &writer);
  RunSeries(IndexScheme::kSyncInsert, &writer);
  RunSeries(IndexScheme::kAsyncSimple, &writer);
  RunSeries(IndexScheme::kAsyncSession, &writer);
  if (!writer.Write()) return 1;
  printf("Expected shape: scan_scatter beats scan_seq under every scheme\n");
  printf("(legs fan out instead of walking index regions serially), most\n");
  printf("dramatically for sync-insert where the serial walk also pays a\n");
  printf("double-check per entry; scatter_batched beats seq_loop and\n");
  printf("scatter_seqrepair for sync-insert by collapsing K GetCell round\n");
  printf("trips into per-server MultiGets (for the other schemes the two\n");
  printf("are a wash: the per-hit base fetch stage is identical); covered\n");
  printf("drops the base fetch to zero reads and wins everywhere.\n");
  return 0;
}
