// Ablation of the APS (asynchronous processing service) sizing: worker
// thread count vs async-simple throughput and index staleness, plus the
// effect of a bounded AUQ ("by assigning a large-size AUQ the workload
// surge can be largely absorbed", Section 8.2).

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunPoint(const char* label, int workers, size_t max_depth) {
  EnvOptions env_options;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.num_items = 10000;
  ApplySmoke(&env_options);

  RunnerOptions runner_options;
  runner_options.op = WorkloadOp::kUpdateTitle;
  runner_options.threads = 16;
  runner_options.total_operations = 8000;
  runner_options.seed = 53;
  ApplySmoke(&runner_options);

  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  cluster_options.regions_per_table = 8;
  cluster_options.latency.scale = 1.0;
  cluster_options.auq.worker_threads = workers;
  cluster_options.auq.max_depth = max_depth;
  cluster_options.auq.staleness_sample_every = 10;
  ApplySmoke(&cluster_options);

  BenchEnv env;
  {
    std::unique_ptr<Cluster> cluster;
    if (!Cluster::Create(cluster_options, &cluster).ok()) return;
    env.cluster = std::move(cluster);
  }
  ItemTableOptions item_options;
  item_options.num_items = env_options.num_items;
  item_options.title_scheme = IndexScheme::kAsyncSimple;
  item_options.create_price_index = false;
  env.items = std::make_unique<ItemTable>(env.cluster.get(), item_options);
  if (!env.items->Create().ok()) return;
  env.runner = std::make_unique<WorkloadRunner>(env.cluster.get(),
                                                env.items.get(),
                                                runner_options);
  if (!env.runner->LoadItems(8).ok()) return;
  {
    auto client = env.cluster->NewClient();
    (void)client->FlushTable("item");
    (void)client->CompactTable("item");
  }

  RunnerResult result;
  if (!env.runner->Run(&result).ok()) return;
  WaitQuiescent(env.cluster.get());

  Histogram staleness;
  env.cluster->AggregateStaleness(&staleness);
  printf("%-26s tps=%7.0f put-avg=%6.0fus  staleness p50=%8.2fms "
         "p99=%9.2fms\n",
         label, result.tps, result.latency->Average(),
         static_cast<double>(staleness.Percentile(50)) / 1000.0,
         static_cast<double>(staleness.Percentile(99)) / 1000.0);
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Ablation: APS worker count and AUQ bound (async-simple)",
              "Tan et al., EDBT 2014, Sections 5.1 and 8.2");

  printf("-- APS worker threads (unbounded queue) --\n");
  RunPoint("workers=1", 1, 0);
  RunPoint("workers=2", 2, 0);
  RunPoint("workers=4", 4, 0);

  printf("-- AUQ capacity (2 workers): bounded queue = backpressure --\n");
  RunPoint("depth=unbounded", 2, 0);
  RunPoint("depth=64", 2, 64);
  RunPoint("depth=4", 2, 4);

  printf("\nExpected shape: more APS workers drain faster (lower\n");
  printf("staleness) at the same offered load; a small AUQ bound turns\n");
  printf("staleness into put-side backpressure (higher put latency,\n");
  printf("bounded lag) — the trade the paper describes for absorbing\n");
  printf("workload surges with a large AUQ.\n");
  return 0;
}
