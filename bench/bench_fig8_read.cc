// Figure 8: index read performance — exact-match getByIndex returning one
// row, latency vs throughput per scheme.
//
// Expected shape (paper): sync-full lowest (it only touches the small
// index table); sync-insert much higher (each hit adds a disk-bound base
// read to double-check staleness); async close to sync-full (same read
// path, results just not guaranteed consistent).

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunSeries(const char* label, IndexScheme scheme) {
  const std::vector<int> kThreadSweep =
      g_smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};

  // One environment per scheme: load, then a light update pass so
  // sync-insert has some stale entries to double-check (as it would in
  // steady state), then read-only measurement.
  for (int threads : kThreadSweep) {
    EnvOptions env_options;
    env_options.scheme = scheme;
    env_options.num_items = 12000;

    RunnerOptions update_options;
    update_options.op = WorkloadOp::kUpdateTitle;
    update_options.threads = 8;
    update_options.total_operations = 2000;
    update_options.seed = 13;

    BenchEnv env;
    Status s = MakeLoadedEnv(env_options, update_options, &env);
    if (!s.ok()) {
      printf("setup failed: %s\n", s.ToString().c_str());
      return;
    }
    RunnerResult update_result;
    (void)env.runner->Run(&update_result);
    WaitQuiescent(env.cluster.get());
    // Push updates to disk too; the paper measures with a warmed block
    // cache, which repeated index reads provide naturally.
    auto client = env.cluster->NewClient();
    (void)client->FlushTable("item");

    RunnerOptions read_options;
    read_options.op = WorkloadOp::kReadIndexExact;
    read_options.threads = threads;
    read_options.total_operations = 600ull * threads;
    read_options.seed = 17 + threads;
    ApplySmoke(&read_options);
    // Reads run through the same runner so the exact-match predicates use
    // the post-update item versions (each query hits exactly one row).
    RunnerResult result;
    s = env.runner->RunWith(read_options, &result);
    if (!s.ok()) {
      printf("run failed: %s\n", s.ToString().c_str());
      return;
    }
    PrintSeriesRow(label, threads, result);
  }
  printf("\n");
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Figure 8: read latency vs throughput per scheme",
              "Tan et al., EDBT 2014, Section 8.2, Figure 8");
  RunSeries("sync-full", IndexScheme::kSyncFull);
  RunSeries("sync-insert", IndexScheme::kSyncInsert);
  RunSeries("async-simple", IndexScheme::kAsyncSimple);
  printf("Expected shape: full lowest; insert much higher (adds a base\n");
  printf("read per returned row); async close to full.\n");
  return 0;
}
