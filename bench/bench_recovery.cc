// Checkpointed recovery: time-to-serve after a server kill, as a function
// of how much un-flushed (WAL-only) data the victim held, with and
// without flush checkpoints bounding the replay.
//
// Each point builds a fresh cluster, loads a flushed baseline (covered by
// the per-region flush checkpoints), writes `unflushed` more puts that
// live only in the WAL + memtables, then kills a server and measures the
// wall time until every one of the victim's rows is readable again
// (OnServerDead is synchronous: open + bounded replay + recovery flush,
// then a probe read through a refreshed layout).
//
// Expected shape: with checkpoints, time-to-serve scales with the
// UN-FLUSHED data only (the flushed baseline is skipped via
// wal.replay_skipped); without them, every kill replays the victim's
// whole log, so even the unflushed=0 point pays for the baseline.

#include <chrono>

#include "bench_common.h"
#include "util/random.h"

namespace diffindex::bench {
namespace {

std::string BenchRow(int i, const char* tag) {
  char row[32];
  snprintf(row, sizeof(row), "%02x-%s%d", (i * 7) % 256, tag, i);
  return row;
}

void RunPoint(uint64_t baseline, uint64_t unflushed, bool with_checkpoints,
              MetricsJsonWriter* metrics_out) {
  ClusterOptions options;
  options.num_servers = 3;
  options.regions_per_table = 6;
  options.server.recovery_use_checkpoints = with_checkpoints;
  options.client.retry_backoff_ms = 1;
  options.client.retry_backoff_max_ms = 8;
  ApplySmoke(&options);

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(options, &cluster);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  if (!cluster->master()->CreateTable("t").ok()) return;
  auto client = cluster->NewClient();
  (void)client->RefreshLayout();

  Random rng(baseline + unflushed + (with_checkpoints ? 1 : 0));
  std::vector<std::string> victim_rows;
  auto put_rows = [&](uint64_t n, const char* tag) {
    for (uint64_t i = 0; i < n; i++) {
      const std::string row = BenchRow(static_cast<int>(i), tag);
      if (!client->PutColumn("t", row, "c", rng.RandomBytes(200)).ok()) {
        continue;
      }
      RegionInfoWire info;
      if (client->RouteRow("t", row, &info).ok() && info.server_id == 1) {
        victim_rows.push_back(row);
      }
    }
  };

  put_rows(baseline, "base");
  (void)client->FlushTable("t");  // checkpoints now cover the baseline
  put_rows(unflushed, "hot");

  const auto start = std::chrono::steady_clock::now();
  (void)cluster->KillServer(1);
  (void)client->RefreshLayout();
  // Served = every row the victim held answers again.
  std::string value;
  for (const std::string& row : victim_rows) {
    (void)client->GetCell("t", row, "c", kMaxTimestamp, &value);
  }
  const double serve_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()) /
      1000.0;

  const uint64_t replayed =
      cluster->metrics()->GetCounter("wal.replayed")->value();
  const uint64_t skipped =
      cluster->metrics()->GetCounter("wal.replay_skipped")->value();
  char label[96];
  snprintf(label, sizeof(label),
           "ckpt=%s,unflushed=%llu,serve_ms=%.1f",
           with_checkpoints ? "on" : "off",
           static_cast<unsigned long long>(unflushed), serve_ms);
  printf("checkpoints=%-3s unflushed=%6llu  time-to-serve=%8.1fms  "
         "replayed=%6llu  skipped=%6llu\n",
         with_checkpoints ? "on" : "off",
         static_cast<unsigned long long>(unflushed), serve_ms,
         static_cast<unsigned long long>(replayed),
         static_cast<unsigned long long>(skipped));
  metrics_out->AddPoint(label, cluster.get());
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  MetricsJsonWriter metrics_out(args.metrics_json);
  PrintHeader("Recovery: time-to-serve vs un-flushed data, checkpoints on/off",
              "Tan et al., EDBT 2014, Section 5.3 (recovery protocol)");
  const uint64_t baseline = SmokeN(8000, 200);
  const uint64_t sizes_full[] = {0, 1000, 4000, 16000};
  const uint64_t sizes_smoke[] = {0, 50};
  const uint64_t* sizes = g_smoke ? sizes_smoke : sizes_full;
  const size_t num_sizes = g_smoke ? 2 : 4;
  for (size_t i = 0; i < num_sizes; i++) {
    RunPoint(baseline, sizes[i], /*with_checkpoints=*/true, &metrics_out);
  }
  for (size_t i = 0; i < num_sizes; i++) {
    RunPoint(baseline, sizes[i], /*with_checkpoints=*/false, &metrics_out);
  }
  printf("\nExpected shape: the ckpt=on series scales with the un-flushed\n");
  printf("row count alone (the flushed baseline shows up as 'skipped');\n");
  printf("the ckpt=off series replays baseline+unflushed on every kill,\n");
  printf("so even its unflushed=0 point pays the full-log replay cost.\n");
  return metrics_out.Write() ? 0 : 1;
}
