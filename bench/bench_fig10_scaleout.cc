// Figure 10: scale-out — the paper repeats the update experiment on a 5x
// larger cluster (8 -> 40 region servers, 40M -> 200M rows) and reports
// sub-linear but healthy scaling with the *relative order of schemes
// preserved*. We scale 2 -> 8 servers with 4x the data.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunPoint(const char* label, IndexScheme scheme, bool with_index,
              int servers, uint64_t items, int threads) {
  EnvOptions env_options;
  env_options.num_servers = servers;
  env_options.regions_per_table = servers * 2;
  env_options.scheme = scheme;
  env_options.with_title_index = with_index;
  env_options.num_items = items;

  RunnerOptions runner_options;
  runner_options.op = with_index ? WorkloadOp::kUpdateTitle
                                 : WorkloadOp::kBasePutNoIndex;
  runner_options.threads = threads;
  runner_options.total_operations = 500ull * threads;
  runner_options.seed = 31 + servers;

  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  RunnerResult result;
  s = env.runner->Run(&result);
  if (!s.ok()) {
    printf("run failed: %s\n", s.ToString().c_str());
    return;
  }
  printf("servers=%d %-14s ", servers, label);
  PrintSeriesRow("", threads, result);
  if (scheme == IndexScheme::kAsyncSimple && with_index) {
    WaitQuiescent(env.cluster.get());
  }
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader(
      "Figure 10: update performance at 4x cluster/data scale",
      "Tan et al., EDBT 2014, Section 8.2, Figure 10 (RC2 cloud)");

  printf("--- small cluster (2 servers, 8k rows) ---\n");
  RunPoint("no-index", IndexScheme::kSyncFull, false, 2, 8000, 8);
  RunPoint("sync-insert", IndexScheme::kSyncInsert, true, 2, 8000, 8);
  RunPoint("sync-full", IndexScheme::kSyncFull, true, 2, 8000, 8);
  RunPoint("async-simple", IndexScheme::kAsyncSimple, true, 2, 8000, 8);

  printf("--- large cluster (8 servers, 32k rows, 4x offered load) ---\n");
  RunPoint("no-index", IndexScheme::kSyncFull, false, 8, 32000, 32);
  RunPoint("sync-insert", IndexScheme::kSyncInsert, true, 8, 32000, 32);
  RunPoint("sync-full", IndexScheme::kSyncFull, true, 8, 32000, 32);
  RunPoint("async-simple", IndexScheme::kAsyncSimple, true, 8, 32000, 32);

  printf("\nExpected shape: the larger cluster reaches a multiple (though\n");
  printf("sub-linear) of the small cluster's TPS, and the relative order\n");
  printf("of the schemes is preserved at both scales.\n");
  return 0;
}
