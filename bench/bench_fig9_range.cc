// Figure 9: range-query latency under different selectivity (the paper
// sweeps 0.0001% -> 0.1% on the item_price index with 10 client threads).
//
// Expected shape: sync-insert degrades sharply as selectivity grows
// coarser — every returned row costs an extra base read for the
// double-check — while sync-full and async stay comparatively flat.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

constexpr uint64_t kItems = 12000;
constexpr uint64_t kPriceDomain = 1000000;

void RunSeries(const char* label, IndexScheme scheme) {
  // Selectivity -> expected result rows (items uniformly priced over the
  // domain): width w returns ~ items * w / domain rows.
  const struct {
    const char* selectivity;
    uint64_t expected_rows;
  } kSweep[] = {
      {"0.0001%", 4}, {"0.001%", 12}, {"0.01%", 120}, {"0.1%", 1200}};

  EnvOptions env_options;
  env_options.scheme = scheme;
  env_options.num_items = kItems;
  env_options.with_title_index = false;
  env_options.with_price_index = true;

  RunnerOptions base_options;
  base_options.op = WorkloadOp::kRangeIndexPrice;
  base_options.threads = 10;  // the paper uses 10 concurrent clients
  base_options.seed = 29;

  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, base_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  WaitQuiescent(env.cluster.get());

  for (const auto& point : kSweep) {
    RunnerOptions options = base_options;
    options.price_range_width =
        point.expected_rows * kPriceDomain / kItems;
    options.total_operations =
        point.expected_rows >= 1000 ? 60 : 400;
    ApplySmoke(&options);
    RunnerResult result;
    s = env.runner->RunWith(options, &result);
    if (!s.ok()) {
      printf("run failed: %s\n", s.ToString().c_str());
      return;
    }
    printf("%-14s selectivity=%-8s (~%4llu rows)  avg=%9.0fus  "
           "p95=%8lluus\n",
           label, point.selectivity,
           static_cast<unsigned long long>(point.expected_rows),
           result.latency->Average(),
           static_cast<unsigned long long>(result.latency->Percentile(95)));
  }
  printf("\n");
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Figure 9: range-query latency vs selectivity",
              "Tan et al., EDBT 2014, Section 8.2, Figure 9");
  RunSeries("sync-full", IndexScheme::kSyncFull);
  RunSeries("async-simple", IndexScheme::kAsyncSimple);
  RunSeries("sync-insert", IndexScheme::kSyncInsert);
  printf("Expected shape: sync-insert grows sharply with result size (K\n");
  printf("base reads per query); sync-full/async grow only mildly.\n");
  return 0;
}
