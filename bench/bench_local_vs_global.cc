// Section 3.1: local vs. global index — the design decision behind
// Diff-Index. "A local index has the advantage of faster update because
// of its collocation with a data region; its drawback is that every query
// has to be broadcast to each region, and therefore costly especially for
// highly selective queries." A global index inverts the trade: updates
// pay remote calls, selective queries touch only the regions that hold
// the answer.
//
// This bench measures both halves on identical clusters, at two cluster
// sizes — the broadcast cost of the local index grows with the region
// count while the global index's selective-read cost does not.

#include "bench_common.h"

#include "core/index_codec.h"

namespace diffindex::bench {
namespace {

struct Point {
  double update_avg_us = 0;
  double read_avg_us = 0;
};

Point RunPoint(bool local, int servers) {
  Point result;
  const uint64_t kItems = SmokeN(8000, 400);

  ClusterOptions cluster_options;
  cluster_options.num_servers = servers;
  cluster_options.regions_per_table = servers * 2;
  cluster_options.latency.scale = 1.0;
  cluster_options.server.block_cache_bytes = 256 << 10;
  ApplySmoke(&cluster_options);
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(cluster_options, &cluster).ok()) return result;

  ItemTableOptions item_options;
  item_options.num_items = kItems;
  item_options.create_title_index = false;
  item_options.create_price_index = false;
  ItemTable items(cluster.get(), item_options);
  if (!items.Create().ok()) return result;
  IndexDescriptor index;
  index.name = "by_title";
  index.column = ItemTable::kTitleColumn;
  index.scheme = IndexScheme::kSyncFull;
  index.is_local = local;
  if (!cluster->master()->CreateIndex("item", index).ok()) return result;

  RunnerOptions load_options;
  WorkloadRunner runner(cluster.get(), &items, load_options);
  if (!runner.LoadItems(8).ok()) return result;
  {
    auto admin = cluster->NewClient();
    (void)admin->FlushTable("item");
    (void)admin->CompactTable("item");
  }

  // Updates: single-threaded, pure latency comparison.
  auto client = cluster->NewDiffIndexClient();
  const int kUpdates = static_cast<int>(SmokeN(300, 40));
  Random rng(61);
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kUpdates; i++) {
      const uint64_t id = rng.Uniform(kItems);
      (void)client->PutColumn("item", items.RowKey(id),
                              ItemTable::kTitleColumn,
                              items.TitleValue(id, 100 + i));
    }
    result.update_avg_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        kUpdates;
  }

  // Highly selective reads: exact-match queries returning one row.
  const int kReads = static_cast<int>(SmokeN(300, 40));
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReads; i++) {
      const uint64_t id = rng.Uniform(kItems);
      std::vector<IndexHit> hits;
      (void)client->GetByIndex("item", "by_title",
                               items.TitleValue(id, 0), &hits);
    }
    result.read_avg_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        kReads;
  }
  return result;
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Local vs global index: update and selective-read latency",
              "Tan et al., EDBT 2014, Section 3.1");

  const std::vector<int> kServerSweep =
      g_smoke ? std::vector<int>{2} : std::vector<int>{2, 8};
  for (int servers : kServerSweep) {
    Point global = RunPoint(/*local=*/false, servers);
    Point local = RunPoint(/*local=*/true, servers);
    printf("servers=%d (%d regions)\n", servers, servers * 2);
    printf("  global (sync-full): update=%6.0fus  selective read=%6.0fus\n",
           global.update_avg_us, global.read_avg_us);
    printf("  local             : update=%6.0fus  selective read=%6.0fus\n",
           local.update_avg_us, local.read_avg_us);
  }
  printf("\nExpected shape: local updates beat global (no remote index\n");
  printf("call); global selective reads beat local, and the gap WIDENS\n");
  printf("with cluster size (broadcast cost scales with region count,\n");
  printf("the paper's reason to 'focus on global indexes to better\n");
  printf("support selective queries on big data').\n");
  return 0;
}
