// Equations 1 and 2 (Section 4): the latency decomposition of the
// synchronous schemes —
//
//   L(sync-full)   = L(PI) + L(RB) + L(DI)     (Eq. 1)
//   L(sync-insert) = L(PI)                      (Eq. 2)
//
// and the premise behind the whole design: in LSM, L(RB) (a disk-bound
// base read) dwarfs L(PI)/L(DI) (log-structured writes). This bench
// measures each primitive on the loaded cluster and checks the additive
// relation L(sync-full) - L(base put) ≈ L(PI) + L(RB) + L(DI).

#include <chrono>

#include "bench_common.h"
#include "core/index_codec.h"

namespace diffindex::bench {
namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double AvgMicros(int n, Fn fn) {
  const auto start = Clock::now();
  for (int i = 0; i < n; i++) fn(i);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 Clock::now() - start)
                 .count()) /
         n;
}

}  // namespace
}  // namespace diffindex::bench

int main() {
  using namespace diffindex;
  using namespace diffindex::bench;
  PrintHeader("Equations 1-2: latency decomposition of the sync schemes",
              "Tan et al., EDBT 2014, Section 4, Equations 1 and 2");

  EnvOptions env_options;
  env_options.num_items = 12000;
  env_options.scheme = IndexScheme::kSyncFull;
  env_options.with_title_index = false;  // measure primitives by hand

  RunnerOptions runner_options;
  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto client = env.cluster->NewClient();
  const int kN = 200;
  Random rng(7);

  // L(base put): put into the (unindexed) base table.
  const double base_put = AvgMicros(kN, [&](int i) {
    (void)client->PutColumn("item", env.items->RowKey(rng.Uniform(12000)),
                            ItemTable::kTitleColumn,
                            "probe" + std::to_string(i));
  });

  // L(PI): a put into a small key-only "index" table.
  (void)env.cluster->master()->CreateTable("probe_index");
  (void)client->RefreshLayout();
  const double index_put = AvgMicros(kN, [&](int i) {
    (void)client->PutColumn("probe_index",
                            EncodeIndexRow("v" + std::to_string(i), "row"),
                            "", "");
  });

  // L(RB): disk-bound read of a random base row (cold cache).
  const double base_read = AvgMicros(kN, [&](int i) {
    std::string value;
    (void)client->GetCell("item",
                          env.items->RowKey((i * 997 + 13) % 12000),
                          ItemTable::kTitleColumn, kMaxTimestamp, &value);
  });

  // L(DI): delete from the index table (a put of a tombstone).
  const double index_delete = AvgMicros(kN, [&](int i) {
    (void)client->Put("probe_index",
                      EncodeIndexRow("v" + std::to_string(i), "row"),
                      {Cell{"", "", true}});
  });

  printf("L(base put) = %7.0f us\n", base_put);
  printf("L(PI)       = %7.0f us   (index put)\n", index_put);
  printf("L(RB)       = %7.0f us   (base read: disk-bound)\n", base_read);
  printf("L(DI)       = %7.0f us   (index delete)\n", index_delete);
  const double eq1 = index_put + base_read + index_delete;
  printf("Eq.1 L(sync-full index work) = L(PI)+L(RB)+L(DI) = %7.0f us\n",
         eq1);
  printf("Eq.2 L(sync-insert index work) = L(PI)           = %7.0f us\n",
         index_put);
  printf("ratio RB / PI = %.1fx  (LSM read/write asymmetry, Section 2.1)\n",
         base_read / index_put);

  // Cross-check against the end-to-end schemes on identical clusters.
  struct SchemePoint {
    const char* label;
    IndexScheme scheme;
    bool with_index;
  } points[] = {
      {"no-index", IndexScheme::kSyncFull, false},
      {"sync-insert", IndexScheme::kSyncInsert, true},
      {"sync-full", IndexScheme::kSyncFull, true},
  };
  printf("\nEnd-to-end single-threaded update latencies:\n");
  double measured[3] = {0, 0, 0};
  for (int p = 0; p < 3; p++) {
    EnvOptions scheme_env;
    scheme_env.num_items = 8000;
    scheme_env.scheme = points[p].scheme;
    scheme_env.with_title_index = points[p].with_index;
    RunnerOptions scheme_run;
    scheme_run.op = points[p].with_index ? WorkloadOp::kUpdateTitle
                                         : WorkloadOp::kBasePutNoIndex;
    scheme_run.threads = 1;
    scheme_run.total_operations = 300;
    BenchEnv scheme_bench;
    if (!MakeLoadedEnv(scheme_env, scheme_run, &scheme_bench).ok()) continue;
    RunnerResult result;
    (void)scheme_bench.runner->Run(&result);
    measured[p] = result.latency->Average();
    printf("  %-12s avg = %7.0f us\n", points[p].label, measured[p]);
  }
  printf("\nCheck: L(sync-full) - L(no-index) = %7.0f us vs Eq.1 %7.0f us\n",
         measured[2] - measured[0], eq1);
  printf("       L(sync-insert) - L(no-index) = %6.0f us vs Eq.2 %6.0f us\n",
         measured[1] - measured[0], index_put);
  return 0;
}
