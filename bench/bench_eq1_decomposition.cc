// Equations 1 and 2 (Section 4): the latency decomposition of the
// synchronous schemes —
//
//   L(sync-full)   = L(PI) + L(RB) + L(DI)     (Eq. 1)
//   L(sync-insert) = L(PI)                      (Eq. 2)
//
// and the premise behind the whole design: in LSM, L(RB) (a disk-bound
// base read) dwarfs L(PI)/L(DI) (log-structured writes). This bench
// measures each primitive on the loaded cluster and checks the additive
// relation L(sync-full) - L(base put) ≈ L(PI) + L(RB) + L(DI).
//
// The end-to-end section also measures sync-full with the write-through
// base-row cache off vs on: the cache serves the RB term from memory
// (base_cache.hit in the metrics dump), so the cached run's update
// latency drops toward sync-insert's.

#include <chrono>

#include "bench_common.h"
#include "core/index_codec.h"

namespace diffindex::bench {
namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double AvgMicros(int n, Fn fn) {
  const auto start = Clock::now();
  for (int i = 0; i < n; i++) fn(i);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 Clock::now() - start)
                 .count()) /
         n;
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  MetricsJsonWriter metrics_out(args.metrics_json);
  PrintHeader("Equations 1-2: latency decomposition of the sync schemes",
              "Tan et al., EDBT 2014, Section 4, Equations 1 and 2");

  EnvOptions env_options;
  env_options.num_items = 12000;
  env_options.scheme = IndexScheme::kSyncFull;
  env_options.with_title_index = false;  // measure primitives by hand
  // Primitive L(RB) must be the cold disk-bound read the paper assumes.
  env_options.base_row_cache_bytes = 0;
  ApplySmoke(&env_options);
  const uint64_t kItems = env_options.num_items;

  RunnerOptions runner_options;
  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto client = env.cluster->NewClient();
  const int kN = static_cast<int>(SmokeN(200, 40));
  Random rng(7);

  // L(base put): put into the (unindexed) base table.
  const double base_put = AvgMicros(kN, [&](int i) {
    (void)client->PutColumn("item", env.items->RowKey(rng.Uniform(kItems)),
                            ItemTable::kTitleColumn,
                            "probe" + std::to_string(i));
  });

  // L(PI): a put into a small key-only "index" table.
  (void)env.cluster->master()->CreateTable("probe_index");
  (void)client->RefreshLayout();
  const double index_put = AvgMicros(kN, [&](int i) {
    (void)client->PutColumn("probe_index",
                            EncodeIndexRow("v" + std::to_string(i), "row"),
                            "", "");
  });

  // L(RB): disk-bound read of a random base row (cold cache).
  const double base_read = AvgMicros(kN, [&](int i) {
    std::string value;
    (void)client->GetCell("item",
                          env.items->RowKey((i * 997 + 13) % kItems),
                          ItemTable::kTitleColumn, kMaxTimestamp, &value);
  });

  // L(DI): delete from the index table (a put of a tombstone).
  const double index_delete = AvgMicros(kN, [&](int i) {
    (void)client->Put("probe_index",
                      EncodeIndexRow("v" + std::to_string(i), "row"),
                      {Cell{"", "", true}});
  });

  printf("L(base put) = %7.0f us\n", base_put);
  printf("L(PI)       = %7.0f us   (index put)\n", index_put);
  printf("L(RB)       = %7.0f us   (base read: disk-bound)\n", base_read);
  printf("L(DI)       = %7.0f us   (index delete)\n", index_delete);
  const double eq1 = index_put + base_read + index_delete;
  printf("Eq.1 L(sync-full index work) = L(PI)+L(RB)+L(DI) = %7.0f us\n",
         eq1);
  printf("Eq.2 L(sync-insert index work) = L(PI)           = %7.0f us\n",
         index_put);
  printf("ratio RB / PI = %.1fx  (LSM read/write asymmetry, Section 2.1)\n",
         base_read / index_put);

  // Cross-check against the end-to-end schemes on identical clusters. The
  // two sync-full points differ only in the base-row cache: off pays the
  // Eq.1 disk-bound RB on every update, on serves RB from the
  // write-through cache (base_cache.hit > 0 in the metrics snapshot).
  struct SchemePoint {
    const char* label;
    IndexScheme scheme;
    bool with_index;
    size_t base_row_cache_bytes;
  } points[] = {
      {"no-index", IndexScheme::kSyncFull, false, 0},
      {"sync-insert", IndexScheme::kSyncInsert, true, 0},
      {"sync-full/cache=off", IndexScheme::kSyncFull, true, 0},
      {"sync-full/cache=on", IndexScheme::kSyncFull, true, 4 << 20},
  };
  constexpr int kPoints = 4;
  printf("\nEnd-to-end single-threaded update latencies:\n");
  double measured[kPoints] = {0, 0, 0, 0};
  for (int p = 0; p < kPoints; p++) {
    EnvOptions scheme_env;
    scheme_env.num_items = 8000;
    scheme_env.scheme = points[p].scheme;
    scheme_env.with_title_index = points[p].with_index;
    scheme_env.base_row_cache_bytes = points[p].base_row_cache_bytes;
    RunnerOptions scheme_run;
    scheme_run.op = points[p].with_index ? WorkloadOp::kUpdateTitle
                                         : WorkloadOp::kBasePutNoIndex;
    scheme_run.threads = 1;
    scheme_run.total_operations = 300;
    // Skewed updates (same for every point): re-updated hot rows are what
    // the write-through cache serves the RB from.
    scheme_run.distribution = KeyDistribution::kZipfian;
    BenchEnv scheme_bench;
    if (!MakeLoadedEnv(scheme_env, scheme_run, &scheme_bench).ok()) continue;
    RunnerResult result;
    (void)scheme_bench.runner->Run(&result);
    measured[p] = result.latency->Average();
    const uint64_t cache_hits =
        scheme_bench.cluster->metrics()->GetCounter("base_cache.hit")
            ->value();
    printf("  %-19s avg = %7.0f us  (base_cache.hit=%llu)\n",
           points[p].label, measured[p],
           static_cast<unsigned long long>(cache_hits));
    metrics_out.AddPoint(points[p].label, scheme_bench.cluster.get());
  }
  printf("\nCheck: L(sync-full) - L(no-index) = %7.0f us vs Eq.1 %7.0f us\n",
         measured[2] - measured[0], eq1);
  printf("       L(sync-insert) - L(no-index) = %6.0f us vs Eq.2 %6.0f us\n",
         measured[1] - measured[0], index_put);
  printf("       base-row cache saves %6.0f us per sync-full update\n",
         measured[2] - measured[3]);
  return metrics_out.Write() ? 0 : 1;
}
