// Table 2: I/O cost of Diff-Index schemes — measured operation counts per
// index update and per index read, checked against the paper's analytic
// table:
//
//   scheme       action   BasePut  BaseRead  IndexPut  IndexRead
//   no-index     update     1         0         0          0
//   sync-full    update     1         1        1+1         0
//                read       0         0         0          1
//   sync-insert  update     1         0         1          0
//                read       0         K         K          1
//   async-simple update     1        [1]      [1+1]        0
//                read       0         0         0          1
//
// ("[ ]" = asynchronous/background; K = rows returned by the index read.)

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunScheme(const char* label, bool with_index, IndexScheme scheme) {
  const uint64_t kOps = SmokeN(400, 120);
  EnvOptions env_options;
  env_options.with_title_index = with_index;
  env_options.scheme = scheme;
  env_options.num_items = 4000;
  env_options.latency_scale = 0;  // counting ops, not time

  RunnerOptions update_options;
  update_options.op = with_index ? WorkloadOp::kUpdateTitle
                                 : WorkloadOp::kBasePutNoIndex;
  update_options.threads = 4;
  update_options.total_operations = kOps;
  update_options.seed = 41;

  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, update_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  env.cluster->stats()->Reset();

  RunnerResult update_result;
  (void)env.runner->Run(&update_result);
  WaitQuiescent(env.cluster.get());
  OpStats::Snapshot update_stats = env.cluster->stats()->snapshot();

  printf("%-13s update (n=%llu): base_put=%.2f base_read=%.2f "
         "index_put=%.2f async_base_read=[%.2f] async_index_put=[%.2f]\n",
         label, static_cast<unsigned long long>(update_result.operations),
         static_cast<double>(update_stats.base_put) / kOps,
         static_cast<double>(update_stats.base_read) / kOps,
         static_cast<double>(update_stats.index_put) / kOps,
         static_cast<double>(update_stats.async_base_read) / kOps,
         static_cast<double>(update_stats.async_index_put) / kOps);

  if (!with_index) return;

  env.cluster->stats()->Reset();
  RunnerOptions read_options = update_options;
  read_options.op = WorkloadOp::kReadIndexExact;
  read_options.total_operations = kOps;
  RunnerResult read_result;
  (void)env.runner->RunWith(read_options, &read_result);
  OpStats::Snapshot read_stats = env.cluster->stats()->snapshot();

  printf("%-13s read   (n=%llu): base_read=%.2f index_put=%.2f "
         "index_read=%.2f\n",
         label, static_cast<unsigned long long>(read_result.operations),
         static_cast<double>(read_stats.base_read) / kOps,
         static_cast<double>(read_stats.index_put) / kOps,
         static_cast<double>(read_stats.index_read) / kOps);
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Table 2: I/O cost per scheme (measured ops per request)",
              "Tan et al., EDBT 2014, Section 6.1, Table 2");
  RunScheme("no-index", false, IndexScheme::kSyncFull);
  RunScheme("sync-full", true, IndexScheme::kSyncFull);
  RunScheme("sync-insert", true, IndexScheme::kSyncInsert);
  RunScheme("async-simple", true, IndexScheme::kAsyncSimple);
  printf("\nAnalytic expectations: sync-full update = 1 base read +\n");
  printf("1(+1) index puts; sync-insert update = 1 index put only, its\n");
  printf("read pays K base reads (+K repair deletes when entries are\n");
  printf("stale); async does the full work in the background columns.\n");
  return 0;
}
