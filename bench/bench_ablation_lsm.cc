// Ablations of the LSM design choices that shape the read/write asymmetry
// Diff-Index exploits:
//
//   * bloom filters — without them a point read pays one disk block per
//     on-disk store, with them only stores that may contain the key
//     (Section 2.1's "a read may include multiple random I/O");
//   * block cache size — the paper's reads are disk-bound because the
//     working set exceeds the cache; a large cache collapses L(RB) and
//     with it sync-full's penalty;
//   * compaction — consolidating multi-version stores shortens reads.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

double MeasureBaseReadMicros(Cluster* cluster, ItemTable* items,
                             uint64_t num_items, bool warm) {
  auto client = cluster->NewClient();
  const int kReads = static_cast<int>(SmokeN(300, 50));
  const int passes = warm ? 2 : 1;
  double last_pass_avg = 0;
  for (int pass = 0; pass < passes; pass++) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReads; i++) {
      std::string value;
      (void)client->GetCell("item",
                            items->RowKey((i * 1009 + 17) % num_items),
                            ItemTable::kTitleColumn, kMaxTimestamp, &value);
    }
    last_pass_avg =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        kReads;
  }
  return last_pass_avg;
}

void RunPoint(const char* label, int bloom_bits, size_t cache_bytes,
              bool compact, int flushes, bool warm = false) {
  const uint64_t kItems = SmokeN(8000, 400);
  ClusterOptions cluster_options;
  cluster_options.num_servers = 2;
  cluster_options.regions_per_table = 4;
  cluster_options.latency.scale = 1.0;
  cluster_options.server.block_cache_bytes = cache_bytes;
  cluster_options.server.lsm.bloom_bits_per_key = bloom_bits;
  cluster_options.server.lsm.compaction_trigger = 1000;  // manual control
  ApplySmoke(&cluster_options);

  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(cluster_options, &cluster).ok()) return;
  ItemTableOptions item_options;
  item_options.num_items = kItems;
  item_options.create_title_index = false;
  item_options.create_price_index = false;
  ItemTable items(cluster.get(), item_options);
  if (!items.Create().ok()) return;

  RunnerOptions load_options;
  WorkloadRunner runner(cluster.get(), &items, load_options);
  if (!runner.LoadItems(8).ok()) return;
  auto client = cluster->NewClient();

  // Build `flushes` separate disk stores per region: interleave partial
  // FULL-ROW overwrites with flushes so each store is sizeable and reads
  // must consider several stores (the multi-version read of Figure 2b).
  Random rng(5);
  for (int round = 0; round < flushes; round++) {
    for (uint64_t i = 0; i < kItems / 8; i++) {
      const uint64_t id = rng.Uniform(kItems);
      (void)client->Put("item", items.RowKey(id),
                        items.MakeRow(id, round + 1, &rng));
    }
    (void)client->FlushTable("item");
  }
  if (compact) (void)client->CompactTable("item");

  const double read_avg = MeasureBaseReadMicros(cluster.get(), &items,
                                                kItems, warm);
  printf("%-34s avg base read = %7.0f us\n", label, read_avg);
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  (void)ParseBenchArgs(argc, argv);
  PrintHeader("Ablation: what makes LSM reads slow (and less slow)",
              "Tan et al., EDBT 2014, Section 2.1 premises");

  printf("-- bloom filters (6 on-disk stores per region) --\n");
  RunPoint("bloom=10bits cache=256K", 10, 256 << 10, false, 6);
  RunPoint("bloom=off    cache=256K", 0, 256 << 10, false, 6);

  printf("-- block cache size (6 stores, bloom on) --\n");
  RunPoint("cache=64K  (disk-bound)", 10, 64 << 10, false, 6);
  RunPoint("cache=256K", 10, 256 << 10, false, 6);
  RunPoint("cache=64M warm (fits in cache)", 10, 64 << 20, false, 6, true);

  printf("-- major compaction (bloom on, cache=256K) --\n");
  RunPoint("6 stores, no compaction", 10, 256 << 10, false, 6);
  RunPoint("6 stores, then major compaction", 10, 256 << 10, true, 6);

  printf("\nExpected shape: disabling bloom filters or shrinking the cache\n");
  printf("inflates the base read; compaction consolidates versions and\n");
  printf("shortens it. These are exactly the knobs that set L(RB), the\n");
  printf("term that separates sync-full from sync-insert (Eq. 1 vs 2).\n");
  return 0;
}
