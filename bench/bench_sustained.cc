// ROADMAP item 4: sustained-load SLO harness. Every other bench measures
// a short burst; this one preloads a large item table (1M rows in the
// full configuration) and then holds a fixed offered rate of a mixed
// YCSB-style read/write/scan workload against each of the four schemes,
// reporting a *windowed* latency time-series (p50/p99/p999 per window,
// obs/slo.h) instead of one whole-run histogram — flush stalls and AUQ
// backpressure events show up as spikes in the series rather than being
// averaged away (Luo & Carey, arXiv 1808.08896, catalog exactly these
// write-stall pathologies).
//
// The run also exercises the three production behaviors sustained load
// exposes: the AUQ overflow policy (kBlock here: the queued backlog must
// stay <= max_depth for the whole run), flush-stall admission control
// (bounded delay then kResourceExhausted; counters `admission.*`), and
// compaction pacing through the same admission signal.
//
// Injected latency costs are off (scale 0): at millions of operations the
// simulated sleeps would dominate wall-clock without changing the
// relative picture; this bench measures the real pipeline under load.

#include <chrono>
#include <thread>

#include "bench_common.h"
#include "core/observers.h"
#include "obs/slo.h"

namespace diffindex::bench {
namespace {

struct SustainedPoint {
  std::string label;
  double target_tps = 0;
  RunnerResult result;
  uint64_t max_auq_depth_seen = 0;
  uint64_t auq_backlog_bound = 0;  // max_depth knob (queued backlog cap)
  uint64_t auq_depth_bound = 0;    // + in-flight allowance
  bool depth_bound_held = true;
  std::string metrics_json;
};

// Samples the per-server AUQ backlog while the workload runs.
class DepthSampler {
 public:
  explicit DepthSampler(Cluster* cluster) : cluster_(cluster) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~DepthSampler() { Stop(); }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  uint64_t max_depth() const { return max_depth_.load(); }
  uint64_t max_backlog() const { return max_backlog_.load(); }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      for (NodeId id : cluster_->server_ids()) {
        IndexManager* manager = cluster_->index_manager(id);
        if (manager == nullptr) continue;
        const uint64_t depth = manager->auq()->depth();
        const uint64_t backlog = manager->auq()->queued_depth();
        if (depth > max_depth_.load()) max_depth_.store(depth);
        if (backlog > max_backlog_.load()) max_backlog_.store(backlog);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  Cluster* const cluster_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> max_depth_{0};
  std::atomic<uint64_t> max_backlog_{0};
  std::thread thread_;
};

bool RunPoint(IndexScheme scheme, SustainedPoint* out) {
  const uint64_t num_items = SmokeN(1000000, 400);
  const size_t auq_max_depth = 512;

  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  cluster_options.regions_per_table = 8;
  cluster_options.latency.scale = 0;  // real pipeline cost, see header
  // Sized for the sustained regime: memtables flush every ~4 MB of edits
  // and compaction debt is allowed to build before pacing kicks in.
  cluster_options.server.lsm.memtable_flush_bytes = 4 << 20;
  cluster_options.server.lsm.compaction_trigger = 8;
  cluster_options.server.base_row_cache_bytes = 8 << 20;
  // Admission control armed with production-shaped knobs: only a genuine
  // multi-hundred-ms stall (or runaway L0 debt) sheds load.
  cluster_options.server.admission_stall_micros = 200000;
  cluster_options.server.admission_max_delay_micros = 50000;
  cluster_options.server.admission_l0_slack = 6;
  // Bounded AUQ with the kBlock policy: backpressure, never loss.
  cluster_options.auq.max_depth = auq_max_depth;
  cluster_options.auq.overflow_policy = AuqOverflowPolicy::kBlock;
  cluster_options.auq.drain_batch_size = 16;
  cluster_options.auq.staleness_sample_every = 100;

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(cluster_options, &cluster);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return false;
  }

  ItemTableOptions item_options;
  item_options.num_items = num_items;
  // Slimmer filler than the default 8x100B rows: the sustained run cares
  // about op counts and flush cadence, not raw row bytes.
  item_options.filler_columns = 2;
  item_options.filler_bytes = 50;
  item_options.title_scheme = scheme;
  item_options.price_scheme = scheme;
  item_options.create_title_index = true;
  item_options.create_price_index = true;
  auto items = std::make_unique<ItemTable>(cluster.get(), item_options);
  if (!items->Create().ok()) return false;

  RunnerOptions runner_options;
  // Update-heavy YCSB-style blend: the paper's central claim is about
  // differentiated *maintenance* cost, so writes dominate, with enough
  // reads/scans in the mix to observe staleness-facing paths under load.
  runner_options.mix = {
      {WorkloadOp::kUpdateTitle, 0.45},
      {WorkloadOp::kUpdateFullRow, 0.15},
      {WorkloadOp::kReadIndexExact, 0.20},
      {WorkloadOp::kRangeIndexPrice, 0.10},
      {WorkloadOp::kScanIndexRange, 0.10},
  };
  runner_options.threads = 8;
  runner_options.distribution = KeyDistribution::kZipfian;
  runner_options.total_operations = 0;  // duration-bounded
  runner_options.max_duration_ms = 12000;
  runner_options.target_tps = 2000;
  runner_options.slo_window_micros = SmokeN(1000000, 100000);
  runner_options.slo_p99_target_micros = 50000;
  runner_options.seed = 91;
  ApplySmoke(&runner_options);
  if (g_smoke) runner_options.max_duration_ms = 500;
  runner_options.total_operations = 0;

  auto runner = std::make_unique<WorkloadRunner>(cluster.get(), items.get(),
                                                 runner_options);
  const int load_threads = g_smoke ? 4 : 8;
  if (!runner->LoadItems(load_threads).ok()) return false;
  {
    auto client = cluster->NewClient();
    if (!client->FlushTable(item_options.table).ok()) return false;
    if (!client->CompactTable(item_options.table).ok()) return false;
  }
  WaitQuiescent(cluster.get());

  DepthSampler sampler(cluster.get());
  out->label = SchemeLabel(scheme);
  out->target_tps = runner_options.target_tps;
  if (!runner->Run(&out->result).ok()) return false;
  WaitQuiescent(cluster.get());
  sampler.Stop();

  out->max_auq_depth_seen = sampler.max_depth();
  out->auq_backlog_bound = auq_max_depth;
  out->auq_depth_bound =
      auq_max_depth + static_cast<uint64_t>(
                          cluster_options.auq.worker_threads *
                          cluster_options.auq.drain_batch_size);
  out->depth_bound_held =
      sampler.max_backlog() <= out->auq_backlog_bound &&
      sampler.max_depth() <= out->auq_depth_bound;
  out->metrics_json = cluster->metrics()->ToJson();

  printf("%-14s target=%5.0f tps=%7.0f ops=%8llu errors=%llu "
         "max_auq_depth=%llu (bound %llu) %s\n",
         out->label.c_str(), out->target_tps, out->result.tps,
         static_cast<unsigned long long>(out->result.operations),
         static_cast<unsigned long long>(out->result.errors),
         static_cast<unsigned long long>(out->max_auq_depth_seen),
         static_cast<unsigned long long>(out->auq_depth_bound),
         out->depth_bound_held ? "OK" : "DEPTH BOUND VIOLATED");
  for (const obs::SloWindow& window : out->result.windows) {
    printf("  [%6.1fs..%6.1fs] ops=%6llu p50=%7lluus p99=%7lluus "
           "p999=%7lluus max=%7lluus errors=%llu\n",
           static_cast<double>(window.start_micros) / 1e6,
           static_cast<double>(window.end_micros) / 1e6,
           static_cast<unsigned long long>(window.operations),
           static_cast<unsigned long long>(window.p50_micros),
           static_cast<unsigned long long>(window.p99_micros),
           static_cast<unsigned long long>(window.p999_micros),
           static_cast<unsigned long long>(window.max_micros),
           static_cast<unsigned long long>(window.errors));
  }
  return out->depth_bound_held;
}

std::string PointJson(const SustainedPoint& point) {
  std::string out = "{\"label\":\"" + obs::JsonEscape(point.label) + "\"";
  out += ",\"target_tps\":" + std::to_string(point.target_tps);
  out += ",\"tps\":" + std::to_string(point.result.tps);
  out += ",\"operations\":" + std::to_string(point.result.operations);
  out += ",\"errors\":" + std::to_string(point.result.errors);
  out += ",\"max_auq_depth\":" + std::to_string(point.max_auq_depth_seen);
  out += ",\"auq_backlog_bound\":" + std::to_string(point.auq_backlog_bound);
  out += ",\"auq_depth_bound\":" + std::to_string(point.auq_depth_bound);
  out += std::string(",\"depth_bound_held\":") +
         (point.depth_bound_held ? "true" : "false");
  out += ",\"windows\":[";
  for (size_t i = 0; i < point.result.windows.size(); i++) {
    const obs::SloWindow& w = point.result.windows[i];
    if (i > 0) out += ",";
    out += "{\"start_micros\":" + std::to_string(w.start_micros);
    out += ",\"end_micros\":" + std::to_string(w.end_micros);
    out += ",\"operations\":" + std::to_string(w.operations);
    out += ",\"errors\":" + std::to_string(w.errors);
    out += ",\"p50_micros\":" + std::to_string(w.p50_micros);
    out += ",\"p99_micros\":" + std::to_string(w.p99_micros);
    out += ",\"p999_micros\":" + std::to_string(w.p999_micros);
    out += ",\"max_micros\":" + std::to_string(w.max_micros) + "}";
  }
  out += "],\"metrics\":" + point.metrics_json + "}";
  return out;
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Sustained-load SLO harness: windowed latency under a fixed "
              "offered rate",
              "ROADMAP item 4; write-stall taxonomy of arXiv 1808.08896");
  printf("mix: 45%% update-title, 15%% update-row, 20%% read-index, "
         "10%% range, 10%% scan; zipfian keys; AUQ kBlock max_depth=512\n\n");

  const IndexScheme schemes[] = {
      IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
      IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession};
  std::vector<SustainedPoint> points;
  bool ok = true;
  for (IndexScheme scheme : schemes) {
    SustainedPoint point;
    ok = RunPoint(scheme, &point) && ok;
    points.push_back(std::move(point));
  }

  // Expected shape: every scheme holds the offered rate (tps ~= target in
  // the full configuration); sync-full carries the highest per-window
  // p99, the async schemes shift that cost into AUQ depth — which must
  // still respect the kBlock bound.
  const std::string path =
      args.metrics_json.empty() ? "BENCH_sustained.json" : args.metrics_json;
  std::string json = "{\"points\":[";
  for (size_t i = 0; i < points.size(); i++) {
    if (i > 0) json += ",";
    json += PointJson(points[i]);
  }
  json += "]}\n";
  FILE* f = fopen(path.c_str(), "w");
  const bool wrote =
      f != nullptr && fwrite(json.data(), 1, json.size(), f) == json.size();
  if (f != nullptr) fclose(f);
  printf("%s %s\n", wrote ? "wrote" : "FAILED to write", path.c_str());
  return ok && wrote ? 0 : 1;
}
