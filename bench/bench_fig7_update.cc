// Figure 7: index update performance — average update latency vs.
// throughput for no-index, sync-insert, sync-full and async-simple, sweep
// over client thread counts.
//
// Expected shape (paper): sync-insert ≈ 2x a base put (one extra index
// put); sync-full up to ~5x (it adds the disk-bound base read RB and the
// index delete); async tracks no-index at low load and degrades toward
// sync-insert as the AUQ contends for resources at high load; async's
// peak throughput exceeds sync-full's.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunSeries(const char* label, bool with_index, IndexScheme scheme,
               MetricsJsonWriter* metrics_out) {
  const std::vector<int> kThreadSweep =
      g_smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  for (int threads : kThreadSweep) {
    EnvOptions env_options;
    env_options.with_title_index = with_index;
    env_options.scheme = scheme;
    env_options.num_items = 12000;

    RunnerOptions runner_options;
    runner_options.op = with_index ? WorkloadOp::kUpdateTitle
                                   : WorkloadOp::kBasePutNoIndex;
    runner_options.threads = threads;
    runner_options.total_operations = 600ull * threads;
    runner_options.seed = 7 + threads;

    BenchEnv env;
    Status s = MakeLoadedEnv(env_options, runner_options, &env);
    if (!s.ok()) {
      printf("setup failed: %s\n", s.ToString().c_str());
      return;
    }
    RunnerResult result;
    s = env.runner->Run(&result);
    if (!s.ok()) {
      printf("run failed: %s\n", s.ToString().c_str());
      return;
    }
    PrintSeriesRow(label, threads, result);
    if (scheme == IndexScheme::kAsyncSimple) {
      WaitQuiescent(env.cluster.get());
    }
    metrics_out->AddPoint(std::string(label) + "/threads=" +
                              std::to_string(threads),
                          env.cluster.get());
  }
  printf("\n");
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  MetricsJsonWriter metrics_out(args.metrics_json);
  PrintHeader("Figure 7: update latency vs throughput per scheme",
              "Tan et al., EDBT 2014, Section 8.2, Figure 7");
  RunSeries("no-index", /*with_index=*/false, IndexScheme::kSyncFull,
            &metrics_out);
  RunSeries("sync-insert", true, IndexScheme::kSyncInsert, &metrics_out);
  RunSeries("sync-full", true, IndexScheme::kSyncFull, &metrics_out);
  RunSeries("async-simple", true, IndexScheme::kAsyncSimple, &metrics_out);
  printf("Expected shape: insert ~2x no-index latency; full up to ~5x;\n");
  printf("async tracks no-index at low load and rises under saturation.\n");
  return metrics_out.Write() ? 0 : 1;
}
