// Shared setup for the experiment reproductions (Section 8): builds a
// cluster with the paper's cost regime — injected network/WAL/disk costs,
// a small block cache so base reads are disk-bound — loads the extended
// YCSB item table, and pushes the base data to disk stores.
//
// Scaled down from the paper's 8-server/40M-row testbed to laptop size;
// the *relative* behavior of the schemes is the target ("rather than the
// absolute numbers, the relative performance of different schemes are
// more interesting", Section 8.1).

#ifndef DIFFINDEX_BENCH_BENCH_COMMON_H_
#define DIFFINDEX_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"
#include "workload/item_table.h"
#include "workload/runner.h"

namespace diffindex::bench {

// Smoke mode (--smoke): shrink every bench to a seconds-long sanity pass
// so the binaries double as ctest cases. Numbers from a smoke run are
// meaningless; the point is that every code path still executes. Set once
// in main (via ParseBenchArgs) before building any environment.
inline bool g_smoke = false;

// Clamp a bench-local constant (iteration/probe counts) in smoke mode.
inline uint64_t SmokeN(uint64_t full, uint64_t smoke_cap) {
  return g_smoke ? std::min(full, smoke_cap) : full;
}

struct EnvOptions {
  int num_servers = 4;
  int regions_per_table = 8;
  uint64_t num_items = 20000;
  double latency_scale = 1.0;
  size_t block_cache_bytes = 256 << 10;  // small: base reads miss (disk-bound)
  // Write-through base-row cache on the servers (0 disables); serves the
  // sync-full read-back and sync-insert read-repair base reads.
  size_t base_row_cache_bytes = 4 << 20;
  bool with_title_index = true;
  bool with_price_index = false;
  IndexScheme scheme = IndexScheme::kSyncFull;
  int load_threads = 8;
  // Flush + major-compact after load so reads hit disk stores.
  bool settle_to_disk = true;
};

// The ApplySmoke overloads are no-ops unless --smoke was given, so every
// option-construction site can call them unconditionally.
inline void ApplySmoke(EnvOptions* options) {
  if (!g_smoke) return;
  options->num_items = std::min<uint64_t>(options->num_items, 400);
  options->latency_scale = 0;  // injected costs off: wall-clock only
  options->load_threads = std::min(options->load_threads, 4);
}

inline void ApplySmoke(ClusterOptions* options) {
  if (!g_smoke) return;
  options->latency.scale = 0;
}

inline void ApplySmoke(RunnerOptions* options) {
  if (!g_smoke) return;
  options->threads = std::min(options->threads, 4);
  if (options->total_operations > 0) {
    options->total_operations =
        std::min<uint64_t>(options->total_operations, 120);
  }
  if (options->max_duration_ms > 0) {
    options->max_duration_ms =
        std::min<uint64_t>(options->max_duration_ms, 500);
  }
  options->target_tps = 0;  // pacing would stretch the run, not shrink it
}

struct BenchEnv {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ItemTable> items;
  std::unique_ptr<WorkloadRunner> runner;  // holds item versions
};

inline Status MakeLoadedEnv(const EnvOptions& base_env_options,
                            const RunnerOptions& base_runner_options,
                            BenchEnv* env) {
  EnvOptions env_options = base_env_options;
  RunnerOptions runner_options = base_runner_options;
  ApplySmoke(&env_options);
  ApplySmoke(&runner_options);
  ClusterOptions cluster_options;
  cluster_options.num_servers = env_options.num_servers;
  cluster_options.regions_per_table = env_options.regions_per_table;
  cluster_options.latency.scale = env_options.latency_scale;
  cluster_options.server.block_cache_bytes = env_options.block_cache_bytes;
  cluster_options.server.base_row_cache_bytes =
      env_options.base_row_cache_bytes;
  // Dense staleness sampling (Figure 11's probe uses 0.1% at 40M rows;
  // our runs are 1000x smaller).
  cluster_options.auq.staleness_sample_every = 20;
  DIFFINDEX_RETURN_NOT_OK(
      Cluster::Create(cluster_options, &env->cluster));

  ItemTableOptions item_options;
  item_options.num_items = env_options.num_items;
  item_options.title_scheme = env_options.scheme;
  item_options.price_scheme = env_options.scheme;
  item_options.create_title_index = env_options.with_title_index;
  item_options.create_price_index = env_options.with_price_index;
  env->items =
      std::make_unique<ItemTable>(env->cluster.get(), item_options);
  DIFFINDEX_RETURN_NOT_OK(env->items->Create());

  env->runner = std::make_unique<WorkloadRunner>(
      env->cluster.get(), env->items.get(), runner_options);
  DIFFINDEX_RETURN_NOT_OK(env->runner->LoadItems(env_options.load_threads));

  if (env_options.settle_to_disk) {
    auto client = env->cluster->NewClient();
    DIFFINDEX_RETURN_NOT_OK(client->FlushTable(item_options.table));
    DIFFINDEX_RETURN_NOT_OK(client->CompactTable(item_options.table));
  }
  return Status::OK();
}

inline const char* SchemeLabel(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kSyncFull:
      return "sync-full";
    case IndexScheme::kSyncInsert:
      return "sync-insert";
    case IndexScheme::kAsyncSimple:
      return "async-simple";
    case IndexScheme::kAsyncSession:
      return "async-session";
  }
  return "?";
}

inline void PrintHeader(const char* title, const char* citation) {
  printf("==============================================================\n");
  printf("%s\n", title);
  printf("  reproduces: %s\n", citation);
  printf("==============================================================\n");
}

inline void PrintSeriesRow(const char* scheme, int threads,
                           const RunnerResult& result) {
  printf("%-14s threads=%-3d tps=%8.0f  avg=%8.0fus  p50=%7lluus  "
         "p95=%7lluus  p99=%7lluus  errors=%llu\n",
         scheme, threads, result.tps, result.latency->Average(),
         static_cast<unsigned long long>(result.latency->Percentile(50)),
         static_cast<unsigned long long>(result.latency->Percentile(95)),
         static_cast<unsigned long long>(result.latency->Percentile(99)),
         static_cast<unsigned long long>(result.errors));
}

// Common bench flags. `--metrics-json <path>` (or `--metrics-json=<path>`)
// dumps a machine-readable registry snapshot per measured point;
// `--smoke` switches to the tiny ctest configuration.
struct BenchArgs {
  std::string metrics_json;
  bool smoke = false;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  const std::string flag = "--metrics-json";
  for (int i = 1; i < argc; i++) {
    const std::string a = argv[i];
    if (a == flag && i + 1 < argc) {
      args.metrics_json = argv[++i];
    } else if (a.rfind(flag + "=", 0) == 0) {
      args.metrics_json = a.substr(flag.size() + 1);
    } else if (a == "--smoke") {
      args.smoke = true;
    }
  }
  g_smoke = args.smoke;
  if (args.smoke) printf("[smoke configuration: tiny run, numbers invalid]\n");
  return args;
}

// Accumulates one labeled registry snapshot per measured point and writes
// them as {"points":[{"label":...,"metrics":{...}}, ...]}. The benches
// build a fresh cluster (hence a fresh registry) per point, so each
// snapshot covers exactly that point's run.
class MetricsJsonWriter {
 public:
  explicit MetricsJsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void AddPoint(const std::string& label, Cluster* cluster) {
    if (!enabled()) return;
    points_.push_back("{\"label\":\"" + obs::JsonEscape(label) +
                      "\",\"metrics\":" +
                      cluster->metrics()->ToJson() + "}");
  }

  bool Write() const {
    if (!enabled()) return true;
    std::string out = "{\"points\":[";
    for (size_t i = 0; i < points_.size(); i++) {
      if (i > 0) out += ",";
      out += points_[i];
    }
    out += "]}\n";
    FILE* f = fopen(path_.c_str(), "w");
    const bool ok = f != nullptr &&
                    fwrite(out.data(), 1, out.size(), f) == out.size();
    if (f != nullptr) fclose(f);
    if (ok) {
      printf("metrics: wrote %s\n", path_.c_str());
    } else {
      fprintf(stderr, "metrics: FAILED to write %s\n", path_.c_str());
    }
    return ok;
  }

 private:
  const std::string path_;
  std::vector<std::string> points_;
};

// Waits until every server's AUQ is empty.
inline void WaitQuiescent(Cluster* cluster) {
  for (;;) {
    bool all_empty = true;
    for (NodeId id : cluster->server_ids()) {
      IndexManager* manager = cluster->index_manager(id);
      if (manager != nullptr && manager->QueueDepth() > 0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace diffindex::bench

#endif  // DIFFINDEX_BENCH_BENCH_COMMON_H_
