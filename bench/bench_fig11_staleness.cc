// Figure 11: index staleness under async-simple — the distribution of the
// time-lag T2 - T1 between a base entry persisting (T1 = its timestamp)
// and its index updates completing in the AUQ (T2), sampled per task,
// under increasing transaction rates.
//
// Expected shape: at modest load most entries are indexed within a few
// milliseconds (paper: <100 ms); as offered load approaches saturation
// the AUQ backs up and the tail explodes by orders of magnitude.

#include "bench_common.h"
#include "obs/staleness_probe.h"

namespace diffindex::bench {
namespace {

void RunPoint(double target_tps, int threads,
              MetricsJsonWriter* metrics_out) {
  EnvOptions env_options;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.num_items = 12000;

  RunnerOptions runner_options;
  runner_options.op = WorkloadOp::kUpdateTitle;
  runner_options.threads = threads;
  runner_options.target_tps = target_tps;
  runner_options.total_operations = 0;
  runner_options.max_duration_ms = 4000;
  runner_options.seed = 37 + threads;

  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  // End-to-end staleness observer: runs alongside the workload, writing
  // sentinel rows and timing until the index shows them.
  auto probe_client = env.cluster->NewDiffIndexClient();
  obs::StalenessProbeOptions probe_options;
  probe_options.table = env.items->options().table;
  probe_options.index_name = ItemTable::kTitleIndex;
  probe_options.column = ItemTable::kTitleColumn;
  probe_options.period_ms = 50;
  obs::StalenessProbe probe(probe_client.get(), env.cluster->metrics(),
                            probe_options);
  (void)probe.Start();

  RunnerResult result;
  s = env.runner->Run(&result);
  if (!s.ok()) {
    printf("run failed: %s\n", s.ToString().c_str());
    return;
  }
  probe.Stop();
  WaitQuiescent(env.cluster.get());

  Histogram staleness;
  env.cluster->AggregateStaleness(&staleness);
  printf("target=%6.0ftps achieved=%6.0ftps  staleness: p50=%8.2fms  "
         "p95=%9.2fms  p99=%9.2fms  max=%9.2fms  (n=%llu)\n",
         target_tps, result.tps,
         static_cast<double>(staleness.Percentile(50)) / 1000.0,
         static_cast<double>(staleness.Percentile(95)) / 1000.0,
         static_cast<double>(staleness.Percentile(99)) / 1000.0,
         static_cast<double>(staleness.Max()) / 1000.0,
         static_cast<unsigned long long>(staleness.Count()));

  char label[64];
  snprintf(label, sizeof(label), "target_tps=%.0f/threads=%d", target_tps,
           threads);
  metrics_out->AddPoint(label, env.cluster.get());
}

}  // namespace
}  // namespace diffindex::bench

int main(int argc, char** argv) {
  using namespace diffindex;
  using namespace diffindex::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  MetricsJsonWriter metrics_out(args.metrics_json);
  PrintHeader("Figure 11: async index staleness (T2 - T1) vs load",
              "Tan et al., EDBT 2014, Section 8.2, Figure 11");
  // Paper sweep: 600 -> 4000 TPS on their testbed; scaled to ours. The
  // final point offers unthrottled load (saturation).
  RunPoint(2000, 8, &metrics_out);
  RunPoint(8000, 12, &metrics_out);
  RunPoint(16000, 16, &metrics_out);
  RunPoint(0, 24, &metrics_out);  // unthrottled: saturation
  printf("\nExpected shape: staleness stays in the low-millisecond range\n");
  printf("until the system nears saturation, then grows by orders of\n");
  printf("magnitude as the background AUQ contends for resources.\n");
  return metrics_out.Write() ? 0 : 1;
}
