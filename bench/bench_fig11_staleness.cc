// Figure 11: index staleness under async-simple — the distribution of the
// time-lag T2 - T1 between a base entry persisting (T1 = its timestamp)
// and its index updates completing in the AUQ (T2), sampled per task,
// under increasing transaction rates.
//
// Expected shape: at modest load most entries are indexed within a few
// milliseconds (paper: <100 ms); as offered load approaches saturation
// the AUQ backs up and the tail explodes by orders of magnitude.

#include "bench_common.h"

namespace diffindex::bench {
namespace {

void RunPoint(double target_tps, int threads) {
  EnvOptions env_options;
  env_options.scheme = IndexScheme::kAsyncSimple;
  env_options.num_items = 12000;

  RunnerOptions runner_options;
  runner_options.op = WorkloadOp::kUpdateTitle;
  runner_options.threads = threads;
  runner_options.target_tps = target_tps;
  runner_options.total_operations = 0;
  runner_options.max_duration_ms = 4000;
  runner_options.seed = 37 + threads;

  BenchEnv env;
  Status s = MakeLoadedEnv(env_options, runner_options, &env);
  if (!s.ok()) {
    printf("setup failed: %s\n", s.ToString().c_str());
    return;
  }
  RunnerResult result;
  s = env.runner->Run(&result);
  if (!s.ok()) {
    printf("run failed: %s\n", s.ToString().c_str());
    return;
  }
  WaitQuiescent(env.cluster.get());

  Histogram staleness;
  env.cluster->AggregateStaleness(&staleness);
  printf("target=%6.0ftps achieved=%6.0ftps  staleness: p50=%8.2fms  "
         "p95=%9.2fms  p99=%9.2fms  max=%9.2fms  (n=%llu)\n",
         target_tps, result.tps,
         static_cast<double>(staleness.Percentile(50)) / 1000.0,
         static_cast<double>(staleness.Percentile(95)) / 1000.0,
         static_cast<double>(staleness.Percentile(99)) / 1000.0,
         static_cast<double>(staleness.Max()) / 1000.0,
         static_cast<unsigned long long>(staleness.Count()));
}

}  // namespace
}  // namespace diffindex::bench

int main() {
  using namespace diffindex;
  using namespace diffindex::bench;
  PrintHeader("Figure 11: async index staleness (T2 - T1) vs load",
              "Tan et al., EDBT 2014, Section 8.2, Figure 11");
  // Paper sweep: 600 -> 4000 TPS on their testbed; scaled to ours. The
  // final point offers unthrottled load (saturation).
  RunPoint(2000, 8);
  RunPoint(8000, 12);
  RunPoint(16000, 16);
  RunPoint(0, 24);  // unthrottled: saturation
  printf("\nExpected shape: staleness stays in the low-millisecond range\n");
  printf("until the system nears saturation, then grows by orders of\n");
  printf("magnitude as the background AUQ contends for resources.\n");
  return 0;
}
