
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/buffered_writer_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/buffered_writer_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/buffered_writer_test.cc.o.d"
  "/root/repo/tests/cluster/cluster_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/cluster_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/cluster_test.cc.o.d"
  "/root/repo/tests/cluster/master_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/master_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/master_test.cc.o.d"
  "/root/repo/tests/cluster/move_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/move_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/move_test.cc.o.d"
  "/root/repo/tests/cluster/region_server_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/region_server_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/region_server_test.cc.o.d"
  "/root/repo/tests/cluster/scanner_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/scanner_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/scanner_test.cc.o.d"
  "/root/repo/tests/cluster/split_test.cc" "tests/CMakeFiles/diffindex_tests.dir/cluster/split_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/cluster/split_test.cc.o.d"
  "/root/repo/tests/core/advisor_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/advisor_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/advisor_test.cc.o.d"
  "/root/repo/tests/core/auq_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/auq_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/auq_test.cc.o.d"
  "/root/repo/tests/core/dense_column_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/dense_column_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/dense_column_test.cc.o.d"
  "/root/repo/tests/core/failure_injection_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/failure_injection_test.cc.o.d"
  "/root/repo/tests/core/index_codec_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/index_codec_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/index_codec_test.cc.o.d"
  "/root/repo/tests/core/local_index_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/local_index_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/local_index_test.cc.o.d"
  "/root/repo/tests/core/query_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/query_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/query_test.cc.o.d"
  "/root/repo/tests/core/schemes_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/schemes_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/schemes_test.cc.o.d"
  "/root/repo/tests/core/session_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/session_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/session_test.cc.o.d"
  "/root/repo/tests/core/verify_test.cc" "tests/CMakeFiles/diffindex_tests.dir/core/verify_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/core/verify_test.cc.o.d"
  "/root/repo/tests/lsm/block_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/block_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/block_test.cc.o.d"
  "/root/repo/tests/lsm/compaction_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/compaction_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/compaction_test.cc.o.d"
  "/root/repo/tests/lsm/lsm_tree_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/lsm_tree_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/lsm_tree_test.cc.o.d"
  "/root/repo/tests/lsm/memtable_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/memtable_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/memtable_test.cc.o.d"
  "/root/repo/tests/lsm/merging_iterator_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/merging_iterator_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/merging_iterator_test.cc.o.d"
  "/root/repo/tests/lsm/record_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/record_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/record_test.cc.o.d"
  "/root/repo/tests/lsm/sstable_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/sstable_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/sstable_test.cc.o.d"
  "/root/repo/tests/lsm/wal_test.cc" "tests/CMakeFiles/diffindex_tests.dir/lsm/wal_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/lsm/wal_test.cc.o.d"
  "/root/repo/tests/net/message_test.cc" "tests/CMakeFiles/diffindex_tests.dir/net/message_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/net/message_test.cc.o.d"
  "/root/repo/tests/util/coding_test.cc" "tests/CMakeFiles/diffindex_tests.dir/util/coding_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/util/coding_test.cc.o.d"
  "/root/repo/tests/util/env_test.cc" "tests/CMakeFiles/diffindex_tests.dir/util/env_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/util/env_test.cc.o.d"
  "/root/repo/tests/util/util_test.cc" "tests/CMakeFiles/diffindex_tests.dir/util/util_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/util/util_test.cc.o.d"
  "/root/repo/tests/workload/workload_test.cc" "tests/CMakeFiles/diffindex_tests.dir/workload/workload_test.cc.o" "gcc" "tests/CMakeFiles/diffindex_tests.dir/workload/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diffindex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
