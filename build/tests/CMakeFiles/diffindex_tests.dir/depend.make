# Empty dependencies file for diffindex_tests.
# This may be replaced when dependencies are built.
