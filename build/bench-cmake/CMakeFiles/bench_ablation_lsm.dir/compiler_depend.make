# Empty compiler generated dependencies file for bench_ablation_lsm.
# This may be replaced when dependencies are built.
