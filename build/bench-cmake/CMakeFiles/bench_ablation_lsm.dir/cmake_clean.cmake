file(REMOVE_RECURSE
  "../bench/bench_ablation_lsm"
  "../bench/bench_ablation_lsm.pdb"
  "CMakeFiles/bench_ablation_lsm.dir/bench_ablation_lsm.cc.o"
  "CMakeFiles/bench_ablation_lsm.dir/bench_ablation_lsm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
