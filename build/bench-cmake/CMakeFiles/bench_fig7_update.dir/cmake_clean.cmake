file(REMOVE_RECURSE
  "../bench/bench_fig7_update"
  "../bench/bench_fig7_update.pdb"
  "CMakeFiles/bench_fig7_update.dir/bench_fig7_update.cc.o"
  "CMakeFiles/bench_fig7_update.dir/bench_fig7_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
