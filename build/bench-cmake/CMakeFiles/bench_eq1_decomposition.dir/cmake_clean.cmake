file(REMOVE_RECURSE
  "../bench/bench_eq1_decomposition"
  "../bench/bench_eq1_decomposition.pdb"
  "CMakeFiles/bench_eq1_decomposition.dir/bench_eq1_decomposition.cc.o"
  "CMakeFiles/bench_eq1_decomposition.dir/bench_eq1_decomposition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
