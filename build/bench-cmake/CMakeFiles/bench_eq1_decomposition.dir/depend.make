# Empty dependencies file for bench_eq1_decomposition.
# This may be replaced when dependencies are built.
