# Empty dependencies file for bench_ablation_auq.
# This may be replaced when dependencies are built.
