file(REMOVE_RECURSE
  "../bench/bench_ablation_auq"
  "../bench/bench_ablation_auq.pdb"
  "CMakeFiles/bench_ablation_auq.dir/bench_ablation_auq.cc.o"
  "CMakeFiles/bench_ablation_auq.dir/bench_ablation_auq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_auq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
