# Empty compiler generated dependencies file for bench_client_buffer.
# This may be replaced when dependencies are built.
