file(REMOVE_RECURSE
  "../bench/bench_client_buffer"
  "../bench/bench_client_buffer.pdb"
  "CMakeFiles/bench_client_buffer.dir/bench_client_buffer.cc.o"
  "CMakeFiles/bench_client_buffer.dir/bench_client_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
