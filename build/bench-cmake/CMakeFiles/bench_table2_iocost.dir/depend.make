# Empty dependencies file for bench_table2_iocost.
# This may be replaced when dependencies are built.
