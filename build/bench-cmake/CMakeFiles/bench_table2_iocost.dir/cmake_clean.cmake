file(REMOVE_RECURSE
  "../bench/bench_table2_iocost"
  "../bench/bench_table2_iocost.pdb"
  "CMakeFiles/bench_table2_iocost.dir/bench_table2_iocost.cc.o"
  "CMakeFiles/bench_table2_iocost.dir/bench_table2_iocost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_iocost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
