file(REMOVE_RECURSE
  "../bench/bench_flush_drain"
  "../bench/bench_flush_drain.pdb"
  "CMakeFiles/bench_flush_drain.dir/bench_flush_drain.cc.o"
  "CMakeFiles/bench_flush_drain.dir/bench_flush_drain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flush_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
