# Empty compiler generated dependencies file for bench_flush_drain.
# This may be replaced when dependencies are built.
