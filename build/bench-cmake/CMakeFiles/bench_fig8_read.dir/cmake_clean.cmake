file(REMOVE_RECURSE
  "../bench/bench_fig8_read"
  "../bench/bench_fig8_read.pdb"
  "CMakeFiles/bench_fig8_read.dir/bench_fig8_read.cc.o"
  "CMakeFiles/bench_fig8_read.dir/bench_fig8_read.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
