# Empty dependencies file for bench_fig8_read.
# This may be replaced when dependencies are built.
