file(REMOVE_RECURSE
  "../bench/bench_scan_vs_index"
  "../bench/bench_scan_vs_index.pdb"
  "CMakeFiles/bench_scan_vs_index.dir/bench_scan_vs_index.cc.o"
  "CMakeFiles/bench_scan_vs_index.dir/bench_scan_vs_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_vs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
