# Empty dependencies file for bench_fig11_staleness.
# This may be replaced when dependencies are built.
