file(REMOVE_RECURSE
  "../bench/bench_fig11_staleness"
  "../bench/bench_fig11_staleness.pdb"
  "CMakeFiles/bench_fig11_staleness.dir/bench_fig11_staleness.cc.o"
  "CMakeFiles/bench_fig11_staleness.dir/bench_fig11_staleness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
