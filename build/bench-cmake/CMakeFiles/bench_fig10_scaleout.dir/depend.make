# Empty dependencies file for bench_fig10_scaleout.
# This may be replaced when dependencies are built.
