file(REMOVE_RECURSE
  "../bench/bench_fig10_scaleout"
  "../bench/bench_fig10_scaleout.pdb"
  "CMakeFiles/bench_fig10_scaleout.dir/bench_fig10_scaleout.cc.o"
  "CMakeFiles/bench_fig10_scaleout.dir/bench_fig10_scaleout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
