# Empty compiler generated dependencies file for diffindex.
# This may be replaced when dependencies are built.
