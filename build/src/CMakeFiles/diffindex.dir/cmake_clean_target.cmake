file(REMOVE_RECURSE
  "libdiffindex.a"
)
