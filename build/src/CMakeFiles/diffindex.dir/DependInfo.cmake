
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/catalog.cc" "src/CMakeFiles/diffindex.dir/cluster/catalog.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/catalog.cc.o.d"
  "/root/repo/src/cluster/client.cc" "src/CMakeFiles/diffindex.dir/cluster/client.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/client.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/diffindex.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/master.cc" "src/CMakeFiles/diffindex.dir/cluster/master.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/master.cc.o.d"
  "/root/repo/src/cluster/region.cc" "src/CMakeFiles/diffindex.dir/cluster/region.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/region.cc.o.d"
  "/root/repo/src/cluster/region_server.cc" "src/CMakeFiles/diffindex.dir/cluster/region_server.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/cluster/region_server.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/diffindex.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/auq.cc" "src/CMakeFiles/diffindex.dir/core/auq.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/auq.cc.o.d"
  "/root/repo/src/core/backfill.cc" "src/CMakeFiles/diffindex.dir/core/backfill.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/backfill.cc.o.d"
  "/root/repo/src/core/dense_column.cc" "src/CMakeFiles/diffindex.dir/core/dense_column.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/dense_column.cc.o.d"
  "/root/repo/src/core/diff_index_client.cc" "src/CMakeFiles/diffindex.dir/core/diff_index_client.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/diff_index_client.cc.o.d"
  "/root/repo/src/core/index_codec.cc" "src/CMakeFiles/diffindex.dir/core/index_codec.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/index_codec.cc.o.d"
  "/root/repo/src/core/index_read.cc" "src/CMakeFiles/diffindex.dir/core/index_read.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/index_read.cc.o.d"
  "/root/repo/src/core/observers.cc" "src/CMakeFiles/diffindex.dir/core/observers.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/observers.cc.o.d"
  "/root/repo/src/core/op_stats.cc" "src/CMakeFiles/diffindex.dir/core/op_stats.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/op_stats.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/diffindex.dir/core/query.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/query.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/diffindex.dir/core/session.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/core/session.cc.o.d"
  "/root/repo/src/lsm/block.cc" "src/CMakeFiles/diffindex.dir/lsm/block.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/block.cc.o.d"
  "/root/repo/src/lsm/compaction.cc" "src/CMakeFiles/diffindex.dir/lsm/compaction.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/compaction.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/CMakeFiles/diffindex.dir/lsm/lsm_tree.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/diffindex.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/merging_iterator.cc" "src/CMakeFiles/diffindex.dir/lsm/merging_iterator.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/merging_iterator.cc.o.d"
  "/root/repo/src/lsm/record.cc" "src/CMakeFiles/diffindex.dir/lsm/record.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/record.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/CMakeFiles/diffindex.dir/lsm/sstable.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/sstable.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/CMakeFiles/diffindex.dir/lsm/wal.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/lsm/wal.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/diffindex.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/diffindex.dir/net/message.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/net/message.cc.o.d"
  "/root/repo/src/util/bloom.cc" "src/CMakeFiles/diffindex.dir/util/bloom.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/bloom.cc.o.d"
  "/root/repo/src/util/cache.cc" "src/CMakeFiles/diffindex.dir/util/cache.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/cache.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/diffindex.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/coding.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/diffindex.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/diffindex.dir/util/env.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/env.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/diffindex.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/latency_model.cc" "src/CMakeFiles/diffindex.dir/util/latency_model.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/latency_model.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/diffindex.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/diffindex.dir/util/status.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/diffindex.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/timestamp_oracle.cc" "src/CMakeFiles/diffindex.dir/util/timestamp_oracle.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/timestamp_oracle.cc.o.d"
  "/root/repo/src/util/zipfian.cc" "src/CMakeFiles/diffindex.dir/util/zipfian.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/util/zipfian.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/diffindex.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/item_table.cc" "src/CMakeFiles/diffindex.dir/workload/item_table.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/workload/item_table.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/diffindex.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/diffindex.dir/workload/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
