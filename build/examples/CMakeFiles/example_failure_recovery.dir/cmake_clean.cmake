file(REMOVE_RECURSE
  "CMakeFiles/example_failure_recovery.dir/failure_recovery.cpp.o"
  "CMakeFiles/example_failure_recovery.dir/failure_recovery.cpp.o.d"
  "example_failure_recovery"
  "example_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
