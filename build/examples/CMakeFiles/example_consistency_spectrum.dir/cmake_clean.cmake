file(REMOVE_RECURSE
  "CMakeFiles/example_consistency_spectrum.dir/consistency_spectrum.cpp.o"
  "CMakeFiles/example_consistency_spectrum.dir/consistency_spectrum.cpp.o.d"
  "example_consistency_spectrum"
  "example_consistency_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_consistency_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
