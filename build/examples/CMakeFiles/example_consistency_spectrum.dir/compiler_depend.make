# Empty compiler generated dependencies file for example_consistency_spectrum.
# This may be replaced when dependencies are built.
