file(REMOVE_RECURSE
  "CMakeFiles/example_query_planner.dir/query_planner.cpp.o"
  "CMakeFiles/example_query_planner.dir/query_planner.cpp.o.d"
  "example_query_planner"
  "example_query_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_query_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
