# Empty dependencies file for example_query_planner.
# This may be replaced when dependencies are built.
