# Empty compiler generated dependencies file for example_social_review.
# This may be replaced when dependencies are built.
