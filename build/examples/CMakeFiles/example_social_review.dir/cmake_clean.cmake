file(REMOVE_RECURSE
  "CMakeFiles/example_social_review.dir/social_review.cpp.o"
  "CMakeFiles/example_social_review.dir/social_review.cpp.o.d"
  "example_social_review"
  "example_social_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
