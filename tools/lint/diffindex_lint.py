#!/usr/bin/env python3
"""Diff-Index invariant linter.

Textual rules over src/ that encode repo invariants neither the compiler
nor clang's Thread Safety Analysis can see (documented in DESIGN.md
section 10):

  failpoint-names  every failpoint consulted in src/ is documented in the
                   DESIGN.md failpoint catalog table.
  metric-names     every instrument name created in src/ matches a row of
                   the DESIGN.md metric names table.
  raw-mutex        no raw std synchronization primitives outside
                   util/mutex.h (they are invisible to TSA) without a
                   NOLINT(diffindex-raw-mutex) waiver (the model
                   checker's own scheduler needs raw primitives: the
                   instrumented wrappers call back into it).
  naked-new        no naked `new` without a NOLINT(diffindex-naked-new)
                   waiver.
  lock-order       the ACQUIRED_BEFORE/ACQUIRED_AFTER annotations form a
                   cycle-free global acquisition order, and every nested
                   scoped-lock acquisition of two annotated locks follows
                   a declared path of that order (waive deliberate
                   exceptions with NOLINT(diffindex-lock-order)).
  index-ts         the Section 4.3 timestamp rule: PutIndexEntry takes the
                   base edit's `<x>.ts` verbatim, DeleteIndexEntry takes
                   `<x>.ts - kDelta` verbatim.
  lsm-layering     src/lsm/ never includes cluster/ or core/ headers.
  ignore-error     every .IgnoreError() carries an adjacent rationale
                   comment saying why dropping the Status is safe.
  catalog-sync     the reverse of failpoint-names/metric-names: every
                   DESIGN.md failpoint catalog row is still consulted
                   somewhere, and every metric table row still matches
                   an instrument the code creates — retired names must
                   leave the catalogs. Tree mode only (skipped when
                   explicit files are given).

Exit status: 0 clean, 1 violations found, 2 usage/config error.

Usage:
  tools/lint/diffindex_lint.py [--root DIR] [--compile-commands PATH]
                               [--rules r1,r2,...] [files...]

With explicit `files`, only those files are scanned (fixture tests use
this); otherwise the source list comes from compile_commands.json when
present, else a walk of <root>/src.
"""

import argparse
import json
import os
import re
import sys

ALL_RULES = (
    "failpoint-names",
    "metric-names",
    "raw-mutex",
    "naked-new",
    "index-ts",
    "lsm-layering",
    "lock-order",
    "ignore-error",
    "catalog-sync",
)

SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")


def strip_comments_and_strings(text, keep_strings=False):
    """Blanks out comments (and optionally string literals), preserving
    line structure so reported line numbers stay true."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j
        elif c == '"':
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                j += 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append('"' + " " * max(0, j - i - 2) + '"')
            i = j
        elif c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                j += 1
            j = min(j + 1, n)
            out.append("'" + " " * max(0, j - i - 2) + "'")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def balanced_args(text, open_paren_pos):
    """Returns the argument text between the parens starting at
    open_paren_pos, or None if unbalanced."""
    depth = 0
    for j in range(open_paren_pos, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_pos + 1 : j]
    return None


def split_top_level_args(argtext):
    args, depth, start = [], 0, 0
    for j, c in enumerate(argtext):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(argtext[start:j])
            start = j + 1
    args.append(argtext[start:])
    return [a.strip() for a in args]


# ---------------------------------------------------------------------------
# DESIGN.md parsing


def parse_design_failpoints(design_text):
    """Backticked names from the first column of the failpoint catalog
    table (DESIGN.md section 7)."""
    names = set()
    in_section = False
    for line in design_text.splitlines():
        if line.startswith("### Failpoint catalog"):
            in_section = True
            continue
        if in_section and line.startswith(("### ", "## ")):
            break
        if in_section:
            m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
            if m:
                names.add(m.group(1))
    return names


def parse_design_metrics(design_text):
    """Rows of the metric names table plus the span-stage list (DESIGN.md
    section 6). Returns (metric_rows, span_stage_patterns): the rows as
    (raw name, compiled regex) pairs — catalog-sync needs the raw names —
    and the span stages as compiled regexes."""
    names = []
    in_section = False
    for line in design_text.splitlines():
        if line.startswith("**Metric names (authoritative).**"):
            in_section = True
            continue
        if in_section and line.startswith(("## ", "**Tracing.**")):
            break
        if in_section:
            m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
            if m and m.group(1) != "Name":
                names.append(m.group(1))

    stage_names = []
    m = re.search(r"Span stages [^:]*:\s*((?:`[^`]+`[,.\s]*)+)", design_text)
    if m:
        stage_names = re.findall(r"`([^`]+)`", m.group(1))
    return [(n, name_to_regex(n)) for n in names], [
        name_to_regex(n) for n in stage_names
    ]


def name_to_regex(table_name):
    """Converts a table name like `rpc.<type>.calls` or
    `span.<stage>[.<scheme>]` into a compiled regex."""
    out = []
    i, n = 0, len(table_name)
    while i < n:
        c = table_name[i]
        if table_name.startswith("[.<", i):
            j = table_name.index("]", i)
            out.append(r"(\.[A-Za-z0-9_.\-]+)?")
            i = j + 1
        elif c == "<":
            j = table_name.index(">", i)
            out.append(r"[A-Za-z0-9_.\-]+")
            i = j + 1
        else:
            out.append(re.escape(c))
            i += 1
    return re.compile("^" + "".join(out) + "$")


# A stand-in for a dynamic (non-literal) name fragment; matches the
# wildcard character class above and nothing a literal row would.
DYN = "zzdynzz"


# ---------------------------------------------------------------------------
# Rules


def rule_failpoint_names(path, text, ctx, report):
    clean = strip_comments_and_strings(text, keep_strings=True)
    for m in re.finditer(
        r"(?:DIFFINDEX_FAILPOINT|MaybeFail|Fires|IsArmed)\s*\(\s*\"([^\"]+)\"",
        clean,
    ):
        name = m.group(1)
        if name not in ctx["failpoints"]:
            report(
                path,
                line_of(clean, m.start()),
                "failpoint-names",
                "failpoint '%s' is not documented in the DESIGN.md "
                "failpoint catalog" % name,
            )


def collect_instrument_name(argtext):
    """Reconstructs the (possibly partially dynamic) instrument name from
    the first argument of a Get{Counter,Gauge,Histogram} call. Returns
    None when no literal fragment is present (nothing to check)."""
    literals = re.findall(r"\"([^\"]*)\"", argtext)
    if not literals:
        return None
    # Fragments are concatenated with '+'; anything non-literal between
    # them becomes a dynamic segment.
    pieces = re.split(r"\+", argtext)
    name = []
    for piece in pieces:
        lm = re.search(r"\"([^\"]*)\"", piece)
        if lm:
            name.append(lm.group(1))
        else:
            name.append(DYN)
    return "".join(name)


def rule_metric_names(path, text, ctx, report):
    clean = strip_comments_and_strings(text, keep_strings=True)
    if os.path.normpath(path).endswith(os.path.join("obs", "metrics.h")):
        return  # the registry's own declarations
    for m in re.finditer(r"\b(GetCounter|GetGauge|GetHistogram)\s*\(", clean):
        argtext = balanced_args(clean, m.end() - 1)
        if argtext is None:
            continue
        first = split_top_level_args(argtext)[0]
        name = collect_instrument_name(first)
        if name is None:
            continue  # fully dynamic (e.g. the span recorder)
        if not any(rx.match(name) for rx in ctx["metrics"]):
            report(
                path,
                line_of(clean, m.start()),
                "metric-names",
                "metric '%s' has no row in the DESIGN.md metric names "
                "table" % name.replace(DYN, "<...>"),
            )
    for m in re.finditer(r"\bSpanTimer\s+\w+\s*\(", clean):
        argtext = balanced_args(clean, m.end() - 1)
        if argtext is None:
            continue
        args = split_top_level_args(argtext)
        if len(args) < 3:
            continue
        stage = collect_instrument_name(args[2])
        if stage is None:
            continue
        if not any(rx.match(stage) for rx in ctx["span_stages"]):
            report(
                path,
                line_of(clean, m.start()),
                "metric-names",
                "span stage '%s' is not in the DESIGN.md span-stage list"
                % stage.replace(DYN, "<...>"),
            )


RAW_SYNC = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)


NOLINT_RAW_MUTEX = "NOLINT(diffindex-raw-mutex)"
# File-scope waiver for the model checker's scheduler: the annotated
# wrappers call back into it, so it must be built from raw primitives
# throughout.
NOLINTFILE_RAW_MUTEX = "NOLINTFILE(diffindex-raw-mutex)"


def rule_raw_mutex(path, text, ctx, report):
    norm = os.path.normpath(path)
    if norm.endswith(os.path.join("util", "mutex.h")):
        return  # the wrapper itself
    if NOLINTFILE_RAW_MUTEX in text:
        return
    lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    for m in RAW_SYNC.finditer(clean):
        line = line_of(clean, m.start())
        here = lines[line - 1] if line - 1 < len(lines) else ""
        above = lines[line - 2] if line >= 2 else ""
        if NOLINT_RAW_MUTEX in here or NOLINT_RAW_MUTEX in above:
            continue  # e.g. check/scheduler: the wrappers call back into it
        report(
            path,
            line,
            "raw-mutex",
            "raw std::%s is invisible to thread-safety analysis; use the "
            "annotated wrappers in util/mutex.h or waive with // %s"
            % (m.group(1), NOLINT_RAW_MUTEX),
        )


# `new Foo` but not placement new (`new (mem) Foo`), which is how the
# arena-backed skiplist constructs nodes.
NAKED_NEW = re.compile(r"\bnew\s+[A-Za-z_]")
NOLINT_NEW = "NOLINT(diffindex-naked-new)"


def rule_naked_new(path, text, ctx, report):
    lines = text.splitlines()
    clean_lines = strip_comments_and_strings(text).splitlines()
    for idx, clean_line in enumerate(clean_lines):
        if not NAKED_NEW.search(clean_line):
            continue
        here = lines[idx] if idx < len(lines) else ""
        above = lines[idx - 1] if idx > 0 else ""
        if NOLINT_NEW in here or NOLINT_NEW in above:
            continue
        report(
            path,
            idx + 1,
            "naked-new",
            "naked new; wrap in a smart pointer factory or waive with "
            "// " + NOLINT_NEW,
        )


TS_ARG_PUT = re.compile(r"^([A-Za-z_]\w*(\.|->))?ts$")
TS_ARG_DELETE = re.compile(r"^([A-Za-z_]\w*(\.|->))?(ts|old_ts)\s*-\s*kDelta$")


def rule_index_ts(path, text, ctx, report):
    clean = strip_comments_and_strings(text, keep_strings=True)
    for m in re.finditer(
            r"\b((?:Stage)?(?:Put|Delete)IndexEntry)\s*\(", clean):
        # Skip declarations/definitions: an identifier or '::' directly
        # before the name means this is not a plain call... a definition
        # looks like `Status IndexManager::PutIndexEntry(`.
        prefix = clean[max(0, m.start() - 2) : m.start()]
        if prefix.endswith("::"):
            continue
        argtext = balanced_args(clean, m.end() - 1)
        if argtext is None:
            continue
        args = split_top_level_args(argtext)
        if len(args) < 3:
            continue
        ts_arg = re.sub(r"\s+", " ", args[2]).strip()
        # A parameter declaration ("Timestamp ts") rather than a call.
        if re.match(r"^(const\s+)?[A-Za-z_][\w:<>]*[&*\s]+[A-Za-z_]\w*$",
                    ts_arg):
            continue
        func = m.group(1)
        if func.endswith("PutIndexEntry"):
            ok = TS_ARG_PUT.match(ts_arg)
            want = "the base edit's `<x>.ts` verbatim"
        else:
            ok = TS_ARG_DELETE.match(ts_arg)
            want = "`<x>.ts - kDelta` (or `old_ts - kDelta`) verbatim"
        if not ok:
            report(
                path,
                line_of(clean, m.start()),
                "index-ts",
                "%s timestamp argument is '%s'; Section 4.3 requires %s "
                "(index entries at the base edit's ts, old-entry deletes "
                "at ts - delta)" % (func, ts_arg, want),
            )


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(cluster|core)/', re.M)


def rule_lsm_layering(path, text, ctx, report):
    parts = os.path.normpath(path).split(os.sep)
    if "lsm" not in parts:
        return
    # Only src/lsm/ files (fixtures emulate the path with a 'lsm' dir).
    clean = strip_comments_and_strings(text, keep_strings=True)
    for m in INCLUDE_RE.finditer(clean):
        report(
            path,
            line_of(clean, m.start()),
            "lsm-layering",
            "src/lsm/ must not include %s/ headers; the storage engine "
            "stays below the distribution and index layers" % m.group(1),
        )


# ---------------------------------------------------------------------------
# lock-order: static deadlock analysis over the ACQUIRED_BEFORE /
# ACQUIRED_AFTER annotations (util/thread_annotations.h). Two checks:
#
#   1. The declared acquisition graph (edges "A is acquired before B")
#      must be acyclic — a cycle is a declared deadlock.
#   2. Every OBSERVED nested acquisition — a scoped lock guard
#      constructed while another guard is still in scope, both naming
#      annotated locks — must follow a declared path of the graph.
#      Nestings where either lock is un-annotated are ignored (they are
#      invisible to the runtime validator too: util/lock_order.h ranks).
#      Deliberate exceptions (e.g. two flush gates held SHARED on
#      distinct regions) carry a NOLINT(diffindex-lock-order) waiver.
#
# Lock names are canonicalized the same way everywhere: strip `&`,
# argument parens, member-access prefixes (`a->`, `a.`) and the trailing
# `_`, so `&wal_sync_mu_`, `region->flush_gate()` and the annotation
# token `flush_gate_` all resolve to `wal_sync_mu` / `flush_gate`.

LOCK_DECL_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)+)"
)
LOCK_ANN_RE = re.compile(r"ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")
LOCK_GUARD_RE = re.compile(
    r"\b(?:MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*\("
)
NOLINT_LOCK_ORDER = "NOLINT(diffindex-lock-order)"


def canonical_lock_name(expr):
    e = expr.strip().lstrip("&*")
    e = re.sub(r"\(\s*\)", "", e)  # accessor call: flush_gate() -> flush_gate
    for sep in ("->", "."):
        if sep in e:
            e = e.rsplit(sep, 1)[-1]
    return e.strip().rstrip("_")


def collect_lock_order_decls(path, text, graph):
    """Adds this file's declared edges to graph: {before: {after: (path,
    line)}}."""
    clean = strip_comments_and_strings(text)
    for m in LOCK_DECL_RE.finditer(clean):
        name = canonical_lock_name(m.group(1))
        for am in LOCK_ANN_RE.finditer(m.group(2)):
            kind = am.group(1)
            for arg in am.group(2).split(","):
                other = canonical_lock_name(arg)
                if not other:
                    continue
                before, after = (
                    (name, other) if kind == "BEFORE" else (other, name)
                )
                line = line_of(clean, m.start())
                graph.setdefault(before, {}).setdefault(after, (path, line))


def lock_order_reachable(graph):
    """Transitive closure: {node: set(reachable nodes)}."""
    reach = {}

    def visit(node):
        if node in reach:
            return reach[node]
        reach[node] = set()  # cycle guard; filled below
        acc = set()
        for nxt in graph.get(node, {}):
            acc.add(nxt)
            acc |= visit(nxt)
        reach[node] = acc
        return acc

    for node in list(graph):
        visit(node)
    return reach


def find_lock_order_cycle(graph):
    """Returns one declared cycle as a node list, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in graph.get(node, {}):
            if color.get(nxt, WHITE) == GRAY:
                return stack[stack.index(nxt) :] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def rule_lock_order(path, text, ctx, report):
    graph = ctx["lock_graph"]
    annotated = ctx["lock_annotated"]
    reach = ctx["lock_reach"]

    # Check 1 (cycles) is reported once, against the file that declared
    # the closing edge — main() stores it in ctx after the prepass.
    cycle = ctx.get("lock_cycle")
    if cycle:
        closing = graph.get(cycle[-2], {}).get(cycle[-1])
        if closing and os.path.normpath(closing[0]) == os.path.normpath(path):
            report(
                path,
                closing[1],
                "lock-order",
                "declared lock-order cycle: %s" % " -> ".join(cycle),
            )

    # Check 2: observed nested guard acquisitions in this file.
    lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    guards = []
    for m in LOCK_GUARD_RE.finditer(clean):
        argtext = balanced_args(clean, m.end() - 1)
        if argtext is None:
            continue
        name = canonical_lock_name(split_top_level_args(argtext)[0])
        guards.append((m.start(), name, line_of(clean, m.start())))

    gi, depth = 0, 0
    held = []  # (depth_at_acquisition, name)
    for i, ch in enumerate(clean):
        while gi < len(guards) and guards[gi][0] == i:
            _, name, line = guards[gi]
            gi += 1
            here = lines[line - 1] if line - 1 < len(lines) else ""
            above = lines[line - 2] if line >= 2 else ""
            waived = NOLINT_LOCK_ORDER in here or NOLINT_LOCK_ORDER in above
            for _, held_name in held:
                if held_name not in annotated or name not in annotated:
                    continue  # unranked lock: invisible to the validator
                if name in reach.get(held_name, set()):
                    continue  # follows a declared path
                if waived:
                    continue
                report(
                    path,
                    line,
                    "lock-order",
                    "nested acquisition %s -> %s does not follow the "
                    "declared ACQUIRED_BEFORE order; annotate the edge or "
                    "waive with // %s" % (held_name, name, NOLINT_LOCK_ORDER),
                )
            held.append((depth, name))
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            while held and held[-1][0] > depth:
                held.pop()


def _line_has_comment(raw_line, nostr_line):
    """True when raw_line carries a real // comment with some substance.
    nostr_line is the same line with comments blanked but strings kept,
    so a "//" inside a string literal does not count."""
    i = raw_line.find("//")
    while i >= 0:
        if nostr_line[i:i + 2].strip() == "":
            return raw_line[i + 2:].strip(" /") != ""
        i = raw_line.find("//", i + 1)
    return False


def rule_ignore_error(path, text, ctx, report):
    """Every .IgnoreError() call must sit next to a written rationale:
    a // comment somewhere on the statement, or a comment line directly
    above the statement's first line. util/status.h documents the
    contract; this rule enforces it."""
    if path.replace("\\", "/").endswith("util/status.h"):
        return  # the definition site, not a use
    clean = strip_comments_and_strings(text)
    nostr = strip_comments_and_strings(text, keep_strings=True)
    raw_lines = text.split("\n")
    nostr_lines = nostr.split("\n")
    for m in re.finditer(r"\.\s*IgnoreError\s*\(\s*\)", clean):
        # The statement begins after the previous top-level ; or {.
        # Balanced brackets are skipped so initializer braces and call
        # arguments inside the statement are not mistaken for its start.
        depth = 0
        i = m.start() - 1
        while i >= 0:
            c = clean[i]
            if c in ")]}":
                depth += 1
            elif c in "([{":
                if depth == 0:
                    break
                depth -= 1
            elif c == ";" and depth == 0:
                break
            i -= 1
        stmt_start = i + 1
        while stmt_start < m.start() and clean[stmt_start].isspace():
            stmt_start += 1
        first = line_of(clean, stmt_start)
        last = line_of(clean, m.start())
        if any(_line_has_comment(raw_lines[i], nostr_lines[i])
               for i in range(first - 1, last + 1) if i < len(raw_lines)):
            continue
        prev = first - 2  # 0-based index of the line above the statement
        if prev >= 0 and raw_lines[prev].lstrip().startswith("//") \
                and raw_lines[prev].lstrip().strip(" /") != "":
            continue
        report(
            path,
            last,
            "ignore-error",
            ".IgnoreError() without an adjacent rationale comment; say "
            "why dropping this Status is safe (see util/status.h)",
        )


def check_catalog_sync(design_path, design, texts, ctx, report):
    """Tree-mode half of the catalog invariants (rule `catalog-sync`).
    The per-file rules prove every name used in code appears in the
    DESIGN.md catalogs; this direction proves every catalog row still
    corresponds to code, so retired failpoints and renamed metrics
    cannot linger as documentation. Wildcard metric rows (`<...>`) are
    only checked for prefix liveness: some instrument creation must
    match the row pattern, with dynamic fragments treated as wildcards.
    Runs only in tree mode — a single-file scan proves nothing about
    absence."""
    all_clean = "\n".join(
        strip_comments_and_strings(t, keep_strings=True)
        for t in texts.values()
    )

    def design_line(name):
        m = re.search(r"^\|\s*`%s`" % re.escape(name), design, re.M)
        return line_of(design, m.start()) if m else 1

    consulted = set(
        re.findall(
            r"(?:DIFFINDEX_FAILPOINT|MaybeFail|Fires|IsArmed)"
            r"\s*\(\s*\"([^\"]+)\"",
            all_clean,
        )
    )
    for name in sorted(ctx["failpoints"]):
        if name not in consulted:
            report(
                design_path,
                design_line(name),
                "catalog-sync",
                "failpoint catalog row '%s' is consulted nowhere in the "
                "scanned tree; retire the row or restore the consult"
                % name,
            )

    created = set()
    for m in re.finditer(r"Get(?:Counter|Gauge|Histogram)\s*\(", all_clean):
        argtext = balanced_args(all_clean, m.end() - 1)
        if argtext is None:
            continue
        name = collect_instrument_name(split_top_level_args(argtext)[0])
        if name is not None:
            created.add(name)
    # Span instruments are created by the recorder as "span." + stage;
    # the literal stage names live at the SpanTimer call sites.
    for m in re.finditer(r"\bSpanTimer\s+\w+\s*\(", all_clean):
        argtext = balanced_args(all_clean, m.end() - 1)
        if argtext is None:
            continue
        span_args = split_top_level_args(argtext)
        if len(span_args) < 3:
            continue
        stage = collect_instrument_name(span_args[2])
        if stage is not None:
            created.add("span." + stage)
    created_res = [
        re.compile(
            "^" + ".*".join(re.escape(p) for p in name.split(DYN)) + "$")
        for name in created
    ]
    for row, row_re in ctx["metric_rows"]:
        if any(row_re.match(name) for name in created)  \
                or any(r.match(row) for r in created_res):
            continue
        report(
            design_path,
            design_line(row),
            "catalog-sync",
            "metric table row '%s' matches no instrument created in the "
            "scanned tree; retire the row or restore the instrument"
            % row,
        )


RULE_FUNCS = {
    "failpoint-names": rule_failpoint_names,
    "metric-names": rule_metric_names,
    "raw-mutex": rule_raw_mutex,
    "naked-new": rule_naked_new,
    "index-ts": rule_index_ts,
    "lsm-layering": rule_lsm_layering,
    "lock-order": rule_lock_order,
    "ignore-error": rule_ignore_error,
    "catalog-sync": None,  # whole-tree rule; dispatched from main()
}


# ---------------------------------------------------------------------------


def gather_files(root, compile_commands):
    src_root = os.path.join(root, "src")
    files = set()
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands) as f:
            for entry in json.load(f):
                path = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"])
                )
                if path.startswith(os.path.abspath(src_root) + os.sep):
                    files.add(path)
        # compile_commands only lists TUs; headers still need scanning.
    for dirpath, _, filenames in os.walk(src_root):
        for name in filenames:
            if name.endswith(SOURCE_EXTS):
                files.add(os.path.normpath(os.path.join(dirpath, name)))
    return sorted(files)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root")
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--design", default=None, help="path to DESIGN.md")
    parser.add_argument(
        "--rules", default=",".join(ALL_RULES), help="comma-separated subset"
    )
    parser.add_argument("files", nargs="*")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    design_path = args.design or os.path.join(root, "DESIGN.md")
    if not os.path.exists(design_path):
        print("diffindex_lint: DESIGN.md not found at %s" % design_path)
        return 2

    with open(design_path) as f:
        design = f.read()
    metric_rows, span_stages = parse_design_metrics(design)
    ctx = {
        "failpoints": parse_design_failpoints(design),
        "metrics": [rx for _, rx in metric_rows],
        "metric_rows": metric_rows,
        "span_stages": span_stages,
    }
    if not ctx["failpoints"]:
        print("diffindex_lint: no failpoint catalog parsed from DESIGN.md")
        return 2
    if not ctx["metrics"]:
        print("diffindex_lint: no metric names table parsed from DESIGN.md")
        return 2

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    for r in rules:
        if r not in RULE_FUNCS:
            print("diffindex_lint: unknown rule '%s'" % r)
            return 2

    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    else:
        cc = args.compile_commands or os.path.join(
            root, "build", "compile_commands.json"
        )
        files = gather_files(root, cc)
    if not files:
        print("diffindex_lint: no source files found")
        return 2

    # lock-order needs a cross-file prepass: the acquisition graph is the
    # union of every scanned file's ACQUIRED_* annotations.
    if "lock-order" in rules:
        graph = {}
        for path in files:
            with open(path, encoding="utf-8", errors="replace") as f:
                collect_lock_order_decls(path, f.read(), graph)
        annotated = set(graph)
        for afters in graph.values():
            annotated |= set(afters)
        ctx["lock_graph"] = graph
        ctx["lock_annotated"] = annotated
        ctx["lock_reach"] = lock_order_reachable(graph)
        ctx["lock_cycle"] = find_lock_order_cycle(graph)

    violations = []

    def report(path, line, rule, message):
        violations.append(
            "%s:%d: [%s] %s" % (os.path.relpath(path, root), line, rule, message)
        )

    texts = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        texts[path] = text
        for r in rules:
            if RULE_FUNCS[r] is not None:
                RULE_FUNCS[r](path, text, ctx, report)

    # Absence can only be proven against the whole tree, so the catalog
    # back-check skips fixture-style single-file invocations.
    if "catalog-sync" in rules and not args.files:
        check_catalog_sync(design_path, design, texts, ctx, report)

    for v in violations:
        print(v)
    if violations:
        print(
            "diffindex_lint: %d violation(s) in %d file(s) scanned"
            % (len(violations), len(files))
        )
        return 1
    print("diffindex_lint: clean (%d files scanned)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
