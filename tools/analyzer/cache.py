"""Incremental analysis cache (`--cache-dir`).

The analyzer's per-file work splits into two cacheable units:

  model   `extract_file_model` output — pure over the file's own text,
          so it is keyed by the file content hash alone.
  events  the `build_events` output (event list, yield flag, direct
          callees per function) — consumes cross-file registries (lock
          ranks, member types, definition signatures for receiver
          typing), so entries are keyed additionally by the Program's
          `registry_digest()`; a cached event list built under a
          different digest is stale even for a byte-identical file.

One JSON blob per source file, named by the content hash, holding the
model plus the event lists for the most recent registry digest. The
interprocedural phases (context propagation, rules) always run live —
they are whole-program and cheap. Cache statistics go to stderr only,
so a warm run's report is byte-identical to a cold run's.
"""

import hashlib
import json
import os

from dataflow import Event, HeldLock

# Bump whenever the per-file model dict, the event format, or the
# classification that feeds them changes shape or semantics.
SCHEMA_VERSION = 2


def content_key(sf):
    h = hashlib.sha256()
    h.update(("diffindex-analyzer-v%d\n" % SCHEMA_VERSION).encode())
    h.update(sf.raw.encode("utf-8", "replace") if isinstance(sf.raw, str)
             else sf.raw)
    return h.hexdigest()


def _blob_path(cache_dir, key):
    return os.path.join(cache_dir, key[:2], key + ".json")


def load(cache_dir, key):
    try:
        with open(_blob_path(cache_dir, key)) as f:
            blob = json.load(f)
    except (OSError, ValueError):
        return None
    if blob.get("schema") != SCHEMA_VERSION:
        return None
    return blob


def store(cache_dir, key, blob):
    """Atomic publish — fittingly, tmp + rename (fsync skipped: a torn
    cache entry is re-derived, not trusted)."""
    path = _blob_path(cache_dir, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as f:
        json.dump(blob, f, separators=(",", ":"))
    os.replace(tmp, path)


# -- event (de)serialization ----------------------------------------------


def _ser_event(ev):
    data = dict(ev.data)
    if "lock" in data:
        data["lock"] = list(data["lock"])
    return [ev.kind, ev.pos, ev.line, [list(h) for h in ev.held], data]


def _deser_event(row):
    kind, pos, line, held, data = row
    if "lock" in data:
        data["lock"] = HeldLock(*data["lock"])
    return Event(kind, pos, line, tuple(HeldLock(*h) for h in held), data)


def capture_events(fn):
    return {
        "events": [_ser_event(ev) for ev in fn.events],
        "has_yield": fn.has_yield,
        "direct_callees": sorted(fn.direct_callees),
    }


def restore_events(fn, row):
    fn.events = [_deser_event(r) for r in row["events"]]
    fn.has_yield = bool(row["has_yield"])
    fn.direct_callees = set(row["direct_callees"])
