"""Program model: symbol table, call graph, and lock/field registries.

Built purely from text (no clang frontend is available in the build
image), with the same tokenizer discipline as tools/lint: comments and
strings are blanked first, so every position maps back to a true line.

The extraction is a scope-tracking scanner rather than a grammar: it
walks brace structure, classifies the text segment that precedes each
`{` (namespace / class / function signature / control block), and
records function definitions with their enclosing class. That is enough
to build, for this codebase's consistent style:

  * a function table keyed by qualified name, with body extents,
    return type, and REQUIRES/REQUIRES_SHARED entry locks;
  * a name-resolved call graph (virtual calls resolve by simple name to
    every definition, a sound over-approximation for the rules here);
  * the ranked-lock registry: every Mutex/SharedMutex constructed with
    a LockRank, attributed to its enclosing class;
  * the GUARDED_BY field registry per class.

Known limits are documented in DESIGN.md section 15 (templates are
scanned as text, overload sets collapse to one node, lambdas belong to
their enclosing function).
"""

import os
import re

from source import line_of

# Segment heads that open a scope but are not function definitions.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "try",
    "return", "new", "delete", "throw", "case", "default", "sizeof",
    "alignof", "decltype", "static_assert", "co_await", "co_return",
}

# Annotation/assertion macros whose trailing `(...)` must not be read as
# a function signature (member brace-init directly follows some of
# them: `SharedMutex g_ ACQUIRED_BEFORE(m_){LockRank::kX, "g_"};`).
MACRO_NAMES = {
    "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "RETURN_CAPABILITY",
    "CAPABILITY", "SCOPED_CAPABILITY", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED",
    "NO_THREAD_SAFETY_ANALYSIS", "ASSERT_CAPABILITY",
    "DIFFINDEX_FAILPOINT", "DIFFINDEX_RETURN_NOT_OK", "CHECK_YIELD",
    "CHECK_YIELD_RES", "CHECK_POINT_VAL", "NOLINT",
}

GTEST_MACROS = {"TEST", "TEST_F", "TEST_P", "TYPED_TEST", "INSTANTIATE_TEST_SUITE_P"}

# Call-site names that are never interesting callees.
CALL_BLACKLIST = CONTROL_KEYWORDS | MACRO_NAMES | GTEST_MACROS | {
    "EXPECT_TRUE", "EXPECT_FALSE", "EXPECT_EQ", "EXPECT_NE", "EXPECT_LT",
    "EXPECT_LE", "EXPECT_GT", "EXPECT_GE", "EXPECT_OK", "ASSERT_TRUE",
    "ASSERT_FALSE", "ASSERT_EQ", "ASSERT_NE", "ASSERT_OK", "FAIL",
    "ADD_FAILURE", "SCOPED_TRACE", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "defined", "assert", "move",
    "make_unique", "make_shared", "make_pair", "get", "size", "begin",
    "end", "empty", "push_back", "emplace_back", "insert", "erase",
    "find", "count", "clear", "reserve", "resize", "front", "back",
    "max", "min", "swap", "load", "store", "fetch_add", "fetch_sub",
    "c_str", "data", "append", "substr", "reset", "release", "at",
    "emplace", "pop_back", "pop_front", "push_front", "str", "value",
    "has_value", "ok", "ToString", "code", "exchange", "compare",
}


def canonical_lock_name(expr):
    """`&wal_sync_mu_`, `region->flush_gate()`, `flush_gate_` all
    resolve to `wal_sync_mu` / `flush_gate` (same canonicalization as
    the lint's lock-order rule)."""
    e = expr.strip().lstrip("&*")
    e = re.sub(r"\(\s*\)", "", e)
    for sep in ("->", "."):
        if sep in e:
            e = e.rsplit(sep, 1)[-1]
    return e.strip().rstrip("_")


def parse_lock_ranks(root):
    """LockRank enumerator -> numeric rank, from util/lock_order.h."""
    path = os.path.join(root, "src", "util", "lock_order.h")
    ranks = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for m in re.finditer(r"\bk(\w+)\s*=\s*(\d+)", text):
            ranks["k" + m.group(1)] = int(m.group(2))
    return ranks


class Function:
    def __init__(self, name, qualname, cls, sf, sig_line, body_start,
                 body_end, return_type, requires, args_text=""):
        self.name = name            # simple name (last component)
        self.qualname = qualname    # Class::name or ns-qualified
        self.cls = cls              # enclosing/owning class or ""
        self.sf = sf                # SourceFile
        self.sig_line = sig_line
        self.body_start = body_start  # offset of '{' in sf.clean
        self.body_end = body_end      # offset past matching '}'
        self.return_type = return_type
        self.requires = requires    # [(raw lock expression, shared)]
        self.args_text = args_text  # parameter list text
        self.var_types = {}         # param/local name -> class type
        # Filled by the event scan (dataflow.py):
        self.events = []
        self.has_yield = False
        self.direct_callees = set()

    @property
    def body(self):
        return self.sf.clean[self.body_start:self.body_end]

    def __repr__(self):
        return "<fn %s %s:%d>" % (self.qualname, self.sf.rel, self.sig_line)


class LockDecl:
    def __init__(self, name, cls, rank_token, rank, is_shared, sf, line):
        self.name = name            # canonical (trailing _ stripped)
        self.cls = cls
        self.rank_token = rank_token
        self.rank = rank
        self.is_shared = is_shared
        self.sf = sf
        self.line = line


class GuardedField:
    def __init__(self, name, cls, guard, sf, line):
        self.name = name            # field name as written (with _)
        self.cls = cls
        self.guard = guard          # canonical lock name
        self.sf = sf
        self.line = line


SIG_TAIL_RE = re.compile(
    r"(?:\s*(?:const|noexcept|final|override|mutable|->\s*[\w:<>]+"
    r"|(?:REQUIRES|REQUIRES_SHARED|EXCLUDES|ACQUIRE|ACQUIRE_SHARED"
    r"|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|RETURN_CAPABILITY"
    r"|NO_THREAD_SAFETY_ANALYSIS)\s*(?:\([^()]*\))?))*\s*$"
)

NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:~\s*)?[A-Za-z_]\w*|operator\s*[^\s\w]{1,3})\s*$"
)

REQUIRES_RE = re.compile(r"\b(REQUIRES|REQUIRES_SHARED)\s*\(([^()]*)\)")

# Variable-declaration shapes used to type call receivers. Class types
# in this codebase are CamelCase; requiring a leading capital keeps
# `a * b` arithmetic and builtin-typed declarations out of the map.
SMART_PTR_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unique_ptr|shared_ptr|weak_ptr)\s*<\s*"
    r"(?:const\s+)?([A-Za-z_][\w:]*)\s*>\s*(?:[*&]\s*)?([A-Za-z_]\w*)")
PTR_REF_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Z]\w*)\s*[*&]+\s*(?:const\s+)?([A-Za-z_]\w*)")
VALUE_MEMBER_RE = re.compile(
    r"\b([A-Z]\w*)\s+(\w+_)\s*(?:GUARDED_BY\s*\([^)]*\)\s*)?[;={]")

LOCK_DECL_RE = re.compile(
    r"\b(Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*)"
    r"\{\s*LockRank::(k\w+)"
)

LOCK_ANN_RE = re.compile(r"ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")

GUARDED_FIELD_RE = re.compile(r"\b([A-Za-z_]\w*)\s+GUARDED_BY\(([^)]*)\)")


def _strip_ctor_init_list(seg):
    """Removes a trailing constructor initializer list so the signature's
    closing paren is the segment's last ')'. Heuristic: a top-level
    ` : name(...)...` after a balanced `(...)` group."""
    # Find the last top-level ':' that is not part of '::'.
    depth = 0
    for i, c in enumerate(seg):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(seg) and seg[i + 1] == ":":
                continue
            if i > 0 and seg[i - 1] == ":":
                continue
            head = seg[:i].rstrip()
            if head.endswith(")"):
                return head
    return seg


def _match_open_paren(seg, close_idx):
    depth = 0
    for i in range(close_idx, -1, -1):
        if seg[i] == ")":
            depth += 1
        elif seg[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


class Program:
    """The whole-program model over a set of SourceFiles."""

    def __init__(self, root, files):
        self.root = root
        self.files = files
        self.rank_values = parse_lock_ranks(root)
        self.functions = []                 # all definitions
        self.defs_by_name = {}              # simple name -> [Function]
        self.lock_decls = []                # [LockDecl]
        self.locks_by_class = {}            # (cls, canonical) -> LockDecl
        self.locks_global = {}              # canonical -> LockDecl | None(ambiguous)
        self.guarded_by_class = {}          # cls -> {field name -> GuardedField}
        self.declared_edges = {}            # before -> {after: (rel, line)}
        self.member_types = {}              # (cls, member name) -> class type
        self.subclasses = {}                # base -> {derived}
        self.decl_requires = {}             # (cls, method) -> {(raw, shared)}
        for sf in files:
            self._scan_file(sf)
        for fn in self.functions:
            self.defs_by_name.setdefault(fn.name, []).append(fn)
            for req in self.decl_requires.get((fn.cls, fn.name), ()):
                if req not in fn.requires:
                    fn.requires.append(req)
            self._type_variables(fn)
        self._descendants_cache = {}

    @staticmethod
    def _type_name(t):
        return t.rsplit("::", 1)[-1]

    def _type_variables(self, fn):
        """Types call receivers from parameter and local declarations
        (pointer/reference and smart-pointer shapes only)."""
        for text in (fn.args_text, fn.body):
            for m in SMART_PTR_DECL_RE.finditer(text):
                fn.var_types.setdefault(m.group(2), self._type_name(m.group(1)))
            for m in PTR_REF_DECL_RE.finditer(text):
                fn.var_types.setdefault(m.group(2), self._type_name(m.group(1)))

    def descendants(self, cls):
        cached = self._descendants_cache.get(cls)
        if cached is not None:
            return cached
        out, frontier = set(), [cls]
        while frontier:
            for d in self.subclasses.get(frontier.pop(), ()):
                if d not in out:
                    out.add(d)
                    frontier.append(d)
        self._descendants_cache[cls] = out
        return out

    # -- registries -------------------------------------------------------

    def rank_of(self, lock_name, cls):
        """Resolves a canonical lock name to its LockDecl. Bare member
        names resolve only within the enclosing class (Client::mu_ must
        not inherit AsyncUpdateQueue::mu_'s rank); accessor/receiver
        expressions fall back to the global registry when unambiguous."""
        decl = self.locks_by_class.get((cls, lock_name))
        if decl is not None:
            return decl
        decl = self.locks_global.get(lock_name)
        if decl is not None and decl.cls == cls:
            return decl
        return decl  # may be None or cross-class (receiver expressions)

    # -- scanning ---------------------------------------------------------

    def _scan_file(self, sf):
        clean = sf.clean
        # Scope stack entries: (kind, name) with kind in
        # {namespace, class, function, block, enum}.
        stack = []
        seg_start = 0
        i, n = 0, len(clean)
        current_fn_stack = []
        while i < n:
            c = clean[i]
            if c == ";":
                # Class-scope declarations carry lock/field registrations.
                seg_start = i + 1
            elif c == "{":
                seg = clean[seg_start:i]
                # A brace directly after '=', ',' or '(' is an
                # initializer (`extra = {}`, `f({...})`), not a scope:
                # keep accumulating the current segment through it.
                if seg.rstrip()[-1:] in ("=", ",", "("):
                    stack.append(("init", ""))
                    i += 1
                    continue
                kind, name = self._classify_segment(seg)
                if kind == "function" and not current_fn_stack:
                    fn = self._make_function(sf, seg, seg_start, i, stack)
                    if fn is not None:
                        self.functions.append(fn)
                        current_fn_stack.append((len(stack), fn))
                        stack.append(("function", fn.name))
                    else:
                        stack.append(("block", ""))
                elif kind in ("namespace", "class", "enum"):
                    stack.append((kind, name))
                else:
                    stack.append(("block", ""))
                seg_start = i + 1
            elif c == "}":
                if stack:
                    kind, name = stack.pop()
                    if kind == "init":
                        i += 1
                        continue  # still inside the pending segment
                    if kind == "function" and current_fn_stack and \
                            current_fn_stack[-1][0] == len(stack):
                        _, fn = current_fn_stack.pop()
                        fn.body_end = i + 1
                seg_start = i + 1
            i += 1
        # Registries scan flat text with class attribution via a second
        # pass: attribute each lock/field decl to the class whose body
        # contains it.
        self._register_decls_with_classes(sf)

    def _register_decls_with_classes(self, sf):
        clean = sf.clean
        class_spans = self._class_spans(clean)

        def owner(pos):
            best = ""
            best_len = None
            for (start, end, name) in class_spans:
                if start <= pos < end and (best_len is None or
                                           end - start < best_len):
                    best, best_len = name, end - start
            return best

        # Locks.
        for m in LOCK_DECL_RE.finditer(clean):
            kind, raw_name, anns, rank_token = m.groups()
            rank = self.rank_values.get(rank_token)
            if rank is None or rank == 0:
                continue
            cls = owner(m.start())
            decl = LockDecl(canonical_lock_name(raw_name), cls, rank_token,
                            rank, kind == "SharedMutex", sf,
                            line_of(clean, m.start()))
            self.lock_decls.append(decl)
            self.locks_by_class[(cls, decl.name)] = decl
            if decl.name in self.locks_global:
                existing = self.locks_global[decl.name]
                if existing is not None and existing.rank != decl.rank:
                    self.locks_global[decl.name] = None  # ambiguous name
            else:
                self.locks_global[decl.name] = decl
            for am in LOCK_ANN_RE.finditer(anns):
                kind2 = am.group(1)
                for arg in am.group(2).split(","):
                    other = canonical_lock_name(arg)
                    if not other:
                        continue
                    before, after = ((decl.name, other) if kind2 == "BEFORE"
                                     else (other, decl.name))
                    self.declared_edges.setdefault(before, {}).setdefault(
                        after, (sf.rel, line_of(clean, m.start())))
        # Guarded fields.
        for m in GUARDED_FIELD_RE.finditer(clean):
            cls = owner(m.start())
            fields = self.guarded_by_class.setdefault(cls, {})
            name, guard = m.group(1), canonical_lock_name(m.group(2))
            fields[name] = GuardedField(name, cls, guard, sf,
                                        line_of(clean, m.start()))
        # Member variable types (for receiver-based call resolution).
        for (start, end, cls) in class_spans:
            body = clean[start:end]
            for rex in (SMART_PTR_DECL_RE, PTR_REF_DECL_RE, VALUE_MEMBER_RE):
                for m in rex.finditer(body):
                    self.member_types.setdefault(
                        (cls, m.group(2)), self._type_name(m.group(1)))
        # Declaration-site REQUIRES: annotations live on the header
        # prototype (`void FooLocked() REQUIRES(mu_);`), not the
        # definition; fold them into the matching Function by
        # (class, method) after all files are scanned.
        for m in REQUIRES_RE.finditer(clean):
            cls = owner(m.start())
            head = clean[max(0, m.start() - 400):m.start()].rstrip()
            while True:
                q = re.search(r"(?:\bconst|\bnoexcept|\boverride|\bfinal"
                              r"|\bREQUIRES(?:_SHARED)?\s*\([^()]*\))\s*$",
                              head)
                if q is None:
                    break
                head = head[:q.start()].rstrip()
            if not head.endswith(")"):
                continue
            open_idx = _match_open_paren(head, len(head) - 1)
            if open_idx <= 0:
                continue
            nm = NAME_BEFORE_PAREN_RE.search(head[:open_idx])
            if nm is None:
                continue
            method = re.sub(r"\s+", "", nm.group(1)).rsplit("::", 1)[-1]
            if method in CONTROL_KEYWORDS or method in MACRO_NAMES:
                continue
            shared = m.group(1) == "REQUIRES_SHARED"
            reqs = self.decl_requires.setdefault((cls, method), set())
            for arg in m.group(2).split(","):
                a = arg.strip()
                if a:
                    reqs.add((a, shared))

    def _class_spans(self, clean):
        """[(start, end, name)] body spans of class/struct definitions.
        Also records base classes into the subclass map."""
        spans = []
        for m in re.finditer(r"\b(?:class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(:[^;{()]*)?\{", clean):
            name = m.group(1)
            bases = m.group(2) or ""
            for bm in re.finditer(r"[A-Za-z_][\w:]*", bases):
                base = bm.group(0)
                if base in ("public", "protected", "private", "virtual",
                            "final", "std"):
                    continue
                base = self._type_name(base)
                if base != name:
                    self.subclasses.setdefault(base, set()).add(name)
            start = m.end() - 1
            depth = 0
            for j in range(start, len(clean)):
                if clean[j] == "{":
                    depth += 1
                elif clean[j] == "}":
                    depth -= 1
                    if depth == 0:
                        spans.append((start, j + 1, name))
                        break
        return spans

    def _classify_segment(self, seg):
        s = seg.strip()
        if not s:
            return "block", ""
        m = re.search(r"\bnamespace\s*([A-Za-z_]\w*)?\s*$", s)
        if m:
            return "namespace", m.group(1) or ""
        if re.search(r"\benum\b", s):
            return "enum", ""
        m = re.search(r"\b(?:class|struct|union)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?$", s)
        if m:
            return "class", m.group(1)
        # Lambda introducer directly before the brace: `[..](..) {` or
        # `[..] {` — not a named function.
        if re.search(r"\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:REQUIRES(?:_SHARED)?\s*\([^()]*\)\s*)?(?:->\s*[\w:<>]+\s*)?$", s):
            return "block", ""
        stripped = _strip_ctor_init_list(s)
        tail = SIG_TAIL_RE.search(stripped)
        head = stripped[:tail.start()] if tail else stripped
        if not head.rstrip().endswith(")"):
            return "block", ""
        close = head.rstrip()
        open_idx = _match_open_paren(close, len(close) - 1)
        if open_idx <= 0:
            return "block", ""
        nm = NAME_BEFORE_PAREN_RE.search(close[:open_idx])
        if nm is None:
            return "block", ""
        name = re.sub(r"\s+", "", nm.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in CONTROL_KEYWORDS or simple in MACRO_NAMES:
            return "block", ""
        if simple in GTEST_MACROS:
            return "function", name
        return "function", name

    def _make_function(self, sf, seg, seg_start, brace_pos, stack):
        s = seg.strip()
        stripped = _strip_ctor_init_list(s)
        tail = SIG_TAIL_RE.search(stripped)
        head = stripped[:tail.start()] if tail else stripped
        tail_text = stripped[tail.start():] if tail else ""
        head = head.rstrip()
        if not head.endswith(")"):
            return None
        open_idx = _match_open_paren(head, len(head) - 1)
        if open_idx <= 0:
            return None
        nm = NAME_BEFORE_PAREN_RE.search(head[:open_idx])
        if nm is None:
            return None
        name = re.sub(r"\s+", "", nm.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in CONTROL_KEYWORDS or simple in MACRO_NAMES:
            return None
        args_text = head[open_idx + 1:-1]
        if simple in GTEST_MACROS:
            parts = [a.strip() for a in args_text.split(",")]
            qual = ".".join(p for p in parts if p)
            fn_name = qual or simple
            # TEST_F/TEST_P bodies run as methods of the fixture class:
            # attributing them to it resolves fixture-helper calls.
            cls = parts[0] if parts and simple in (
                "TEST_F", "TEST_P", "TYPED_TEST") else ""
            qualname = simple + ":" + qual
            return_type = "void"
            requires = []
        else:
            # Enclosing class from the scope stack (innermost class).
            cls = ""
            for kind, scope_name in reversed(stack):
                if kind == "class":
                    cls = scope_name
                    break
            if "::" in name:
                qual_cls = name.rsplit("::", 2)[-2]
                cls = qual_cls
                qualname = name
            else:
                qualname = (cls + "::" + name) if cls else name
            fn_name = simple
            ret_head = head[:nm.start()].strip()
            ret_tokens = [t for t in re.split(r"[\s&*]+", ret_head)
                          if t and t not in ("static", "inline", "virtual",
                                             "explicit", "constexpr",
                                             "friend", "mutable", "const")]
            return_type = ret_tokens[-1] if ret_tokens else ""
            requires = []
            for rm in REQUIRES_RE.finditer(tail_text):
                shared = rm.group(1) == "REQUIRES_SHARED"
                for arg in rm.group(2).split(","):
                    a = arg.strip()
                    if a:
                        requires.append((a, shared))
        sig_line = line_of(sf.clean, seg_start + len(seg) - len(seg.lstrip()))
        return Function(fn_name, qualname, cls, sf, sig_line, brace_pos,
                        len(sf.clean), return_type, requires, args_text)

    # -- call resolution --------------------------------------------------

    def resolve_call(self, callee, receiver, fn):
        """Candidate definitions for a call site.

        Plain/this calls prefer the caller's own class. Receiver calls
        resolve through the receiver's declared type when a member,
        parameter, or local declaration reveals it (including scanned
        subclasses, so an interface call reaches every implementation).
        A multi-class name with an untypable receiver resolves to
        nothing — the caller counts those sites so the imprecision is
        reported, never silently absorbed as false edges."""
        cands = self.defs_by_name.get(callee, [])
        if not cands:
            return []
        if receiver in (None, "", "this"):
            own = [f for f in cands if f.cls == fn.cls]
            if own:
                return own
        else:
            t = fn.var_types.get(receiver) or \
                self.member_types.get((fn.cls, receiver))
            if t is not None:
                family = {t} | self.descendants(t)
                return [f for f in cands if f.cls in family]
        classes = {f.cls for f in cands}
        if len(classes) == 1:
            return cands
        return []
