"""Program model: symbol table, call graph, and lock/field registries.

Built purely from text (no clang frontend is available in the build
image), with the same tokenizer discipline as tools/lint: comments and
strings are blanked first, so every position maps back to a true line.

The extraction is a scope-tracking scanner rather than a grammar: it
walks brace structure, classifies the text segment that precedes each
`{` (namespace / class / function signature / control block), and
records function definitions with their enclosing class. That is enough
to build, for this codebase's consistent style:

  * a function table keyed by qualified name, with body extents,
    return type, and REQUIRES/REQUIRES_SHARED entry locks;
  * a name-resolved call graph (virtual calls resolve by simple name to
    every definition, a sound over-approximation for the rules here);
  * the ranked-lock registry: every Mutex/SharedMutex constructed with
    a LockRank, attributed to its enclosing class;
  * the GUARDED_BY field registry per class.

Known limits are documented in DESIGN.md section 15 (templates are
scanned as text, overload sets collapse to one node, lambdas belong to
their enclosing function).
"""

import os
import re

from source import line_of

# Segment heads that open a scope but are not function definitions.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "try",
    "return", "new", "delete", "throw", "case", "default", "sizeof",
    "alignof", "decltype", "static_assert", "co_await", "co_return",
}

# Annotation/assertion macros whose trailing `(...)` must not be read as
# a function signature (member brace-init directly follows some of
# them: `SharedMutex g_ ACQUIRED_BEFORE(m_){LockRank::kX, "g_"};`).
MACRO_NAMES = {
    "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "RETURN_CAPABILITY",
    "CAPABILITY", "SCOPED_CAPABILITY", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED",
    "NO_THREAD_SAFETY_ANALYSIS", "ASSERT_CAPABILITY",
    "DIFFINDEX_FAILPOINT", "DIFFINDEX_RETURN_NOT_OK", "CHECK_YIELD",
    "CHECK_YIELD_RES", "CHECK_POINT_VAL", "NOLINT",
}

GTEST_MACROS = {"TEST", "TEST_F", "TEST_P", "TYPED_TEST", "INSTANTIATE_TEST_SUITE_P"}

# Call-site names that are never interesting callees.
CALL_BLACKLIST = CONTROL_KEYWORDS | MACRO_NAMES | GTEST_MACROS | {
    "EXPECT_TRUE", "EXPECT_FALSE", "EXPECT_EQ", "EXPECT_NE", "EXPECT_LT",
    "EXPECT_LE", "EXPECT_GT", "EXPECT_GE", "EXPECT_OK", "ASSERT_TRUE",
    "ASSERT_FALSE", "ASSERT_EQ", "ASSERT_NE", "ASSERT_OK", "FAIL",
    "ADD_FAILURE", "SCOPED_TRACE", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "defined", "assert", "move",
    "make_unique", "make_shared", "make_pair", "get", "size", "begin",
    "end", "empty", "push_back", "emplace_back", "insert", "erase",
    "find", "count", "clear", "reserve", "resize", "front", "back",
    "max", "min", "swap", "load", "store", "fetch_add", "fetch_sub",
    "c_str", "data", "append", "substr", "reset", "release", "at",
    "emplace", "pop_back", "pop_front", "push_front", "str", "value",
    "has_value", "ok", "ToString", "code", "exchange", "compare",
}


def canonical_lock_name(expr):
    """`&wal_sync_mu_`, `region->flush_gate()`, `flush_gate_` all
    resolve to `wal_sync_mu` / `flush_gate` (same canonicalization as
    the lint's lock-order rule)."""
    e = expr.strip().lstrip("&*")
    e = re.sub(r"\(\s*\)", "", e)
    for sep in ("->", "."):
        if sep in e:
            e = e.rsplit(sep, 1)[-1]
    return e.strip().rstrip("_")


def parse_lock_ranks(root):
    """LockRank enumerator -> numeric rank, from util/lock_order.h."""
    path = os.path.join(root, "src", "util", "lock_order.h")
    ranks = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for m in re.finditer(r"\bk(\w+)\s*=\s*(\d+)", text):
            ranks["k" + m.group(1)] = int(m.group(2))
    return ranks


class Function:
    def __init__(self, name, qualname, cls, sf, sig_line, body_start,
                 body_end, return_type, requires, args_text=""):
        self.name = name            # simple name (last component)
        self.qualname = qualname    # Class::name or ns-qualified
        self.cls = cls              # enclosing/owning class or ""
        self.sf = sf                # SourceFile
        self.sig_line = sig_line
        self.body_start = body_start  # offset of '{' in sf.clean
        self.body_end = body_end      # offset past matching '}'
        self.return_type = return_type
        self.requires = requires    # [(raw lock expression, shared)]
        self.args_text = args_text  # parameter list text
        self.var_types = {}         # param/local name -> class type
        # Filled by the event scan (dataflow.py):
        self.events = []
        self.has_yield = False
        self.direct_callees = set()

    @property
    def body(self):
        return self.sf.clean[self.body_start:self.body_end]

    def __repr__(self):
        return "<fn %s %s:%d>" % (self.qualname, self.sf.rel, self.sig_line)


class LockDecl:
    def __init__(self, name, cls, rank_token, rank, is_shared, sf, line):
        self.name = name            # canonical (trailing _ stripped)
        self.cls = cls
        self.rank_token = rank_token
        self.rank = rank
        self.is_shared = is_shared
        self.sf = sf
        self.line = line


class GuardedField:
    def __init__(self, name, cls, guard, sf, line):
        self.name = name            # field name as written (with _)
        self.cls = cls
        self.guard = guard          # canonical lock name
        self.sf = sf
        self.line = line


SIG_TAIL_RE = re.compile(
    r"(?:\s*(?:const|noexcept|final|override|mutable|->\s*[\w:<>]+"
    r"|(?:REQUIRES|REQUIRES_SHARED|EXCLUDES|ACQUIRE|ACQUIRE_SHARED"
    r"|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|RETURN_CAPABILITY"
    r"|NO_THREAD_SAFETY_ANALYSIS)\s*(?:\([^()]*\))?))*\s*$"
)

NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:~\s*)?[A-Za-z_]\w*|operator\s*[^\s\w]{1,3})\s*$"
)

REQUIRES_RE = re.compile(r"\b(REQUIRES|REQUIRES_SHARED)\s*\(([^()]*)\)")

# Variable-declaration shapes used to type call receivers. Class types
# in this codebase are CamelCase; requiring a leading capital keeps
# `a * b` arithmetic and builtin-typed declarations out of the map.
SMART_PTR_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unique_ptr|shared_ptr|weak_ptr)\s*<\s*"
    r"(?:const\s+)?([A-Za-z_][\w:]*)\s*>\s*(?:[*&]\s*)?([A-Za-z_]\w*)")
PTR_REF_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Z]\w*)\s*[*&]+\s*(?:const\s+)?([A-Za-z_]\w*)")
VALUE_MEMBER_RE = re.compile(
    r"\b([A-Z]\w*)\s+(\w+_)\s*(?:GUARDED_BY\s*\([^)]*\)\s*)?[;={]")


# Value declarations (`WalEdit edit;`, `Iterator iter(&table_);`,
# `SstBuilder builder(path, opts);`): CamelCase type, lower-case
# variable — the case split keeps class/struct heads and macro shouting
# out of the variable table.
VALUE_DECL_RE = re.compile(
    r"\b([A-Z]\w*)\s+([a-z]\w*)\s*(?:[;={]|\()")
# Template parameters: `T value` in a template body says nothing about
# the receiver's class.
VALUE_DECL_SKIP = frozenset({"T", "K", "V"})


def _bare_class(t):
    """Reduces a scanned return-type string to the bare class name a
    receiver can be typed with: `std::unique_ptr<RecordIterator>` ->
    RecordIterator, `lsm::LsmTree*` -> LsmTree."""
    if not t:
        return None
    m = re.search(r"(?:unique_ptr|shared_ptr|weak_ptr)\s*<\s*"
                  r"(?:const\s+)?([A-Za-z_][\w:]*)", t)
    if m:
        t = m.group(1)
    parts = t.replace("*", " ").replace("&", " ").split()
    if not parts:
        return None
    return parts[-1].rsplit("::", 1)[-1]

LOCK_DECL_RE = re.compile(
    r"\b(Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*)"
    r"\{\s*LockRank::(k\w+)"
)

LOCK_ANN_RE = re.compile(r"ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")

GUARDED_FIELD_RE = re.compile(r"\b([A-Za-z_]\w*)\s+GUARDED_BY\(([^)]*)\)")


def _strip_ctor_init_list(seg):
    """Removes a trailing constructor initializer list so the signature's
    closing paren is the segment's last ')'. Heuristic: a top-level
    ` : name(...)...` after a balanced `(...)` group."""
    # Find the last top-level ':' that is not part of '::'.
    depth = 0
    for i, c in enumerate(seg):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(seg) and seg[i + 1] == ":":
                continue
            if i > 0 and seg[i - 1] == ":":
                continue
            head = seg[:i].rstrip()
            if head.endswith(")"):
                return head
    return seg


def _match_open_paren(seg, close_idx):
    depth = 0
    for i in range(close_idx, -1, -1):
        if seg[i] == ")":
            depth += 1
        elif seg[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


class Program:
    """The whole-program model over a set of SourceFiles.

    Construction is two-phase so the incremental cache can skip the
    expensive phase per unchanged file: `extract_file_model` produces a
    pure, JSON-serializable per-file model (functions, lock/field
    registries, type facts — everything derivable from that file's text
    alone), and the Program merges the per-file models into the
    whole-program registries. `file_models` may be supplied (mixing
    cached and freshly extracted entries, one per SourceFile); when
    omitted every file is extracted in-process."""

    def __init__(self, root, files, file_models=None):
        self.root = root
        self.files = files
        self.rank_values = parse_lock_ranks(root)
        self.functions = []                 # all definitions
        self.defs_by_name = {}              # simple name -> [Function]
        self.lock_decls = []                # [LockDecl]
        self.locks_by_class = {}            # (cls, canonical) -> LockDecl
        self.locks_global = {}              # canonical -> LockDecl | None(ambiguous)
        self.guarded_by_class = {}          # cls -> {field name -> GuardedField}
        self.declared_edges = {}            # before -> {after: (rel, line)}
        self.member_types = {}              # (cls, member name) -> class type
        self.subclasses = {}                # base -> {derived}
        self.decl_requires = {}             # (cls, method) -> {(raw, shared)}
        if file_models is None:
            file_models = [extract_file_model(sf) for sf in files]
        self.file_models = file_models
        self.functions_by_file = {}         # rel -> [Function], file order
        for sf, fm in zip(files, file_models):
            self._merge_file_model(sf, fm)
        for fn in self.functions:
            self.defs_by_name.setdefault(fn.name, []).append(fn)
            for req in self.decl_requires.get((fn.cls, fn.name), ()):
                if req not in fn.requires:
                    fn.requires.append(req)
        self.known_classes = {fn.cls for fn in self.functions if fn.cls}
        for base, derived in self.subclasses.items():
            self.known_classes.add(base)
            self.known_classes.update(derived)
        self._descendants_cache = {}

    @staticmethod
    def _type_name(t):
        return t.rsplit("::", 1)[-1]

    def _merge_file_model(self, sf, fm):
        fns = []
        for d in fm["functions"]:
            fn = Function(d["name"], d["qualname"], d["cls"], sf,
                          d["sig_line"], d["body_start"], d["body_end"],
                          d["return_type"],
                          [(raw, bool(sh)) for raw, sh in d["requires"]],
                          d["args_text"])
            fn.var_types = dict(d["var_types"])
            fns.append(fn)
            self.functions.append(fn)
        self.functions_by_file[sf.rel] = fns
        for name, cls, rank_token, shared, line, anns in fm["locks"]:
            rank = self.rank_values.get(rank_token)
            if rank is None or rank == 0:
                continue
            decl = LockDecl(name, cls, rank_token, rank, bool(shared), sf,
                            line)
            self.lock_decls.append(decl)
            self.locks_by_class[(cls, decl.name)] = decl
            if decl.name in self.locks_global:
                existing = self.locks_global[decl.name]
                if existing is not None and existing.rank != decl.rank:
                    self.locks_global[decl.name] = None  # ambiguous name
            else:
                self.locks_global[decl.name] = decl
            for kind2, other in anns:
                before, after = ((decl.name, other) if kind2 == "BEFORE"
                                 else (other, decl.name))
                self.declared_edges.setdefault(before, {}).setdefault(
                    after, (sf.rel, line))
        for name, cls, guard, line in fm["guarded"]:
            fields = self.guarded_by_class.setdefault(cls, {})
            fields[name] = GuardedField(name, cls, guard, sf, line)
        for cls, member, t in fm["member_types"]:
            self.member_types.setdefault((cls, member), t)
        for base, derived in fm["subclasses"]:
            self.subclasses.setdefault(base, set()).add(derived)
        for cls, method, raw, shared in fm["decl_requires"]:
            self.decl_requires.setdefault((cls, method), set()).add(
                (raw, bool(shared)))

    def registry_digest(self):
        """Digest of every cross-file fact the per-file event scan
        consumes (lock ranks, guarded-field guards, receiver/member
        types, the subclass closure, and definition signatures used for
        call resolution and return-type inference). An event cache entry
        built under a different digest is stale even if its own file is
        byte-identical."""
        import hashlib
        import json as _json
        facts = {
            "ranks": sorted(self.rank_values.items()),
            "locks": sorted((cls, d.name, d.rank, d.is_shared)
                            for (cls, _), d in self.locks_by_class.items()),
            "ambiguous": sorted(n for n, d in self.locks_global.items()
                                if d is None),
            "guarded": sorted((cls, f.name, f.guard)
                              for cls, fields in self.guarded_by_class.items()
                              for f in fields.values()),
            "member_types": sorted(
                (cls, m, t) for (cls, m), t in self.member_types.items()),
            "subclasses": sorted((b, d) for b, ds in self.subclasses.items()
                                 for d in ds),
            "defs": sorted({(fn.cls, fn.name, fn.return_type)
                            for fn in self.functions}),
            "requires": sorted((cls, m, raw, sh)
                               for (cls, m), reqs in self.decl_requires.items()
                               for raw, sh in reqs),
        }
        return hashlib.sha256(
            _json.dumps(facts, sort_keys=True).encode()).hexdigest()

    def descendants(self, cls):
        cached = self._descendants_cache.get(cls)
        if cached is not None:
            return cached
        out, frontier = set(), [cls]
        while frontier:
            for d in self.subclasses.get(frontier.pop(), ()):
                if d not in out:
                    out.add(d)
                    frontier.append(d)
        self._descendants_cache[cls] = out
        return out

    # -- registries -------------------------------------------------------

    def rank_of(self, lock_name, cls):
        """Resolves a canonical lock name to its LockDecl. Bare member
        names resolve only within the enclosing class (Client::mu_ must
        not inherit AsyncUpdateQueue::mu_'s rank); accessor/receiver
        expressions fall back to the global registry when unambiguous."""
        decl = self.locks_by_class.get((cls, lock_name))
        if decl is not None:
            return decl
        decl = self.locks_global.get(lock_name)
        if decl is not None and decl.cls == cls:
            return decl
        return decl  # may be None or cross-class (receiver expressions)

    # -- call resolution --------------------------------------------------

    def method_return_type(self, cls, name):
        """The return class of method `name` on class `cls` (or any of
        its scanned subclasses), when every matching definition agrees;
        None when unknown or ambiguous. With cls=None the name must
        resolve to one return type program-wide. Smart-pointer wrappers
        (`std::unique_ptr<RecordIterator>`) unwrap to the pointee so the
        result is a bare class name usable for receiver typing."""
        cands = self.defs_by_name.get(name, [])
        if cls:
            family = {cls} | self.descendants(cls)
            cands = [f for f in cands if f.cls in family]
        typed = {f.return_type for f in cands if f.return_type}
        typed.discard("void")
        if len(typed) == 1:
            return _bare_class(next(iter(typed)))
        return None

    def _identifier_type(self, fn, name):
        t = fn.var_types.get(name) or self.member_types.get((fn.cls, name))
        if t is None:
            t = self._auto_init_type(fn, name)
        return t

    def _auto_init_type(self, fn, name, _depth=0):
        """Types `auto x = Method(...)` / `auto x = recv->Method(...)`
        locals through the initializing call's return type."""
        m = re.search(r"\bauto\s*[*&]?\s+" + re.escape(name) + r"\s*=\s*",
                      fn.body)
        if m is None:
            return None
        init = re.match(
            r"(?:([A-Za-z_]\w*)\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(",
            fn.body[m.end():])
        if init is None:
            return None
        recv, method = init.group(1), init.group(2)
        if recv is None:
            cls = fn.cls or None  # implicit this (or a free function)
        elif _depth > 4:
            return None
        else:
            cls = self._identifier_type(fn, recv) if recv != "this" \
                else fn.cls
        rt = self.method_return_type(cls, method)
        if rt is None and cls is None:
            rt = self.method_return_type(None, method)
        return rt

    def chain_receiver_type(self, fn, body, name_start, _depth=0):
        """Types the receiver of a call whose callee name starts at
        `name_start`, covering the shapes the regex capture alone can't:
        accessor chains ending in a call (`region->tree()->Flush(...)`
        resolves through Region::tree's return type to LsmTree) and
        member paths (`options_.env->RemoveFile(...)` resolves through
        the options_ member's declared type). Returns a class name or
        None."""
        i = name_start - 1
        while i >= 0 and body[i].isspace():
            i -= 1
        if i >= 1 and body[i] == ":" and body[i - 1] == ":":
            # Qualified static call (`Writer::Open(...)`). Only a name
            # the scan knows as a class types the call — a namespace
            # qualifier (`lsm::BuildSst(...)`) must not, or the family
            # filter would empty out real candidate sets.
            q = i - 2
            while q >= 0 and body[q].isspace():
                q -= 1
            p = q
            while p >= 0 and (body[p].isalnum() or body[p] == "_"):
                p -= 1
            name = body[p + 1:q + 1]
            return name if name in self.known_classes else None
        if i >= 1 and body[i] == ">" and body[i - 1] == "-":
            i -= 2
        elif i >= 0 and body[i] == ".":
            i -= 1
        else:
            return None
        return self._postfix_expr_type(fn, body, i, _depth)

    def _postfix_expr_type(self, fn, body, end, _depth=0):
        """Type of the postfix expression whose last character is at or
        before `end`: a plain identifier, a member path (`expr.ident`,
        `expr->ident`), or an accessor call (`expr->method()`)."""
        if _depth > 6:
            return None
        i = end
        while i >= 0 and body[i].isspace():
            i -= 1
        if i < 0:
            return None
        if body[i] == ")":
            # Accessor call: type its receiver, then its return type.
            open_idx = _match_open_paren(body[:i + 1], i)
            if open_idx <= 0:
                return None
            j = open_idx - 1
            while j >= 0 and body[j].isspace():
                j -= 1
            end_name = j + 1
            while j >= 0 and (body[j].isalnum() or body[j] == "_"):
                j -= 1
            name = body[j + 1:end_name]
            if not re.match(r"^[A-Za-z_]\w*$", name) \
                    or name in CALL_BLACKLIST:
                return None
            k = j
            while k >= 0 and body[k].isspace():
                k -= 1
            cls = None
            had_sep = True
            if k >= 1 and body[k] == ">" and body[k - 1] == "-":
                cls = self._postfix_expr_type(fn, body, k - 2, _depth + 1)
            elif k >= 0 and body[k] == "." \
                    and not (k >= 1 and body[k - 1].isdigit()):
                cls = self._postfix_expr_type(fn, body, k - 1, _depth + 1)
            else:
                had_sep = False
                cls = fn.cls or None  # implicit this (or a free function)
            if had_sep and cls is None:
                return None
            rt = self.method_return_type(cls, name)
            if rt is None and cls is None:
                rt = self.method_return_type(None, name)
            return rt
        if body[i].isalnum() or body[i] == "_":
            q = i
            while q >= 0 and (body[q].isalnum() or body[q] == "_"):
                q -= 1
            name = body[q + 1:i + 1]
            if not re.match(r"^[A-Za-z_]\w*$", name):
                return None
            k = q
            while k >= 0 and body[k].isspace():
                k -= 1
            if k >= 1 and body[k] == ">" and body[k - 1] == "-":
                pre = self._postfix_expr_type(fn, body, k - 2, _depth + 1)
                return self.member_types.get((pre, name)) if pre else None
            if k >= 0 and body[k] == "." \
                    and not (k >= 1 and body[k - 1].isdigit()):
                pre = self._postfix_expr_type(fn, body, k - 1, _depth + 1)
                return self.member_types.get((pre, name)) if pre else None
            if name == "this":
                return fn.cls
            return self._identifier_type(fn, name)
        return None

    def resolve_call(self, callee, receiver, fn, recv_type=None):
        """Candidate definitions for a call site.

        Plain/this calls prefer the caller's own class. Receiver calls
        resolve through the receiver's declared type when a member,
        parameter, or local declaration reveals it (including scanned
        subclasses, so an interface call reaches every implementation);
        accessor-chained receivers (`region->tree()->Flush`) arrive
        pre-typed via `recv_type` from method return-type inference.
        A multi-class name with an untypable receiver resolves to
        nothing — the caller counts those sites so the imprecision is
        reported, never silently absorbed as false edges."""
        cands = self.defs_by_name.get(callee, [])
        if not cands:
            return []
        if recv_type is not None:
            family = {recv_type} | self.descendants(recv_type)
            return [f for f in cands if f.cls in family]
        if receiver in (None, "", "this"):
            own = [f for f in cands if f.cls == fn.cls]
            if own:
                return own
        else:
            t = self._identifier_type(fn, receiver)
            if t is not None:
                family = {t} | self.descendants(t)
                return [f for f in cands if f.cls in family]
        classes = {f.cls for f in cands}
        if len(classes) == 1:
            return cands
        return []



# -- per-file scanning (pure; the unit the incremental cache stores) ------


def _fn_to_dict(fn):
    return {
        "name": fn.name, "qualname": fn.qualname, "cls": fn.cls,
        "sig_line": fn.sig_line, "body_start": fn.body_start,
        "body_end": fn.body_end, "return_type": fn.return_type,
        "requires": [[raw, sh] for raw, sh in fn.requires],
        "args_text": fn.args_text, "var_types": fn.var_types,
    }


def _type_variables(fn):
    """Types call receivers from parameter and local declarations
    (pointer/reference and smart-pointer shapes only)."""
    for text in (fn.args_text, fn.body):
        for m in SMART_PTR_DECL_RE.finditer(text):
            fn.var_types.setdefault(
                m.group(2), Program._type_name(m.group(1)))
        for m in PTR_REF_DECL_RE.finditer(text):
            fn.var_types.setdefault(
                m.group(2), Program._type_name(m.group(1)))
        for m in VALUE_DECL_RE.finditer(text):
            if m.group(1) not in VALUE_DECL_SKIP:
                fn.var_types.setdefault(m.group(2), m.group(1))


def extract_file_model(sf):
    """Scans one SourceFile into a JSON-serializable model dict. Uses
    only the file's own text — no cross-file state — so the result can
    be cached keyed by the file's content hash alone."""
    fm = {
        "functions": [],      # function dicts (see _fn_to_dict)
        "locks": [],          # [name, cls, rank_token, shared, line, anns]
        "guarded": [],        # [field, cls, guard, line]
        "member_types": [],   # [cls, member, type]
        "subclasses": [],     # [base, derived]
        "decl_requires": [],  # [cls, method, raw, shared]
    }
    for fn in _scan_functions(sf):
        _type_variables(fn)
        fm["functions"].append(_fn_to_dict(fn))
    _register_decls(sf, fm)
    return fm


def _scan_functions(sf):
    clean = sf.clean
    functions = []
    # Scope stack entries: (kind, name) with kind in
    # {namespace, class, function, block, enum}.
    stack = []
    seg_start = 0
    i, n = 0, len(clean)
    current_fn_stack = []
    while i < n:
        c = clean[i]
        if c == ";":
            # Class-scope declarations carry lock/field registrations.
            seg_start = i + 1
        elif c == "{":
            seg = clean[seg_start:i]
            # A brace directly after '=', ',' or '(' is an
            # initializer (`extra = {}`, `f({...})`), not a scope:
            # keep accumulating the current segment through it.
            if seg.rstrip()[-1:] in ("=", ",", "("):
                stack.append(("init", ""))
                i += 1
                continue
            kind, name = _classify_segment(seg)
            if kind == "function" and not current_fn_stack:
                fn = _make_function(sf, seg, seg_start, i, stack)
                if fn is not None:
                    functions.append(fn)
                    current_fn_stack.append((len(stack), fn))
                    stack.append(("function", fn.name))
                else:
                    stack.append(("block", ""))
            elif kind in ("namespace", "class", "enum"):
                stack.append((kind, name))
            else:
                stack.append(("block", ""))
            seg_start = i + 1
        elif c == "}":
            if stack:
                kind, name = stack.pop()
                if kind == "init":
                    i += 1
                    continue  # still inside the pending segment
                if kind == "function" and current_fn_stack and \
                        current_fn_stack[-1][0] == len(stack):
                    _, fn = current_fn_stack.pop()
                    fn.body_end = i + 1
            seg_start = i + 1
        i += 1
    return functions


def _register_decls(sf, fm):
    """Registries scan flat text with class attribution via a second
    pass: attribute each lock/field decl to the class whose body
    contains it."""
    clean = sf.clean
    class_spans = _class_spans(clean, fm)

    def owner(pos):
        best = ""
        best_len = None
        for (start, end, name) in class_spans:
            if start <= pos < end and (best_len is None or
                                       end - start < best_len):
                best, best_len = name, end - start
        return best

    # Locks. Rank tokens stay symbolic here; the Program resolves them
    # against the rank table at merge time (so a cached model survives a
    # lock_order.h renumbering — the registry digest catches the rest).
    for m in LOCK_DECL_RE.finditer(clean):
        kind, raw_name, anns, rank_token = m.groups()
        cls = owner(m.start())
        parsed_anns = []
        for am in LOCK_ANN_RE.finditer(anns):
            for arg in am.group(2).split(","):
                other = canonical_lock_name(arg)
                if other:
                    parsed_anns.append([am.group(1), other])
        fm["locks"].append([canonical_lock_name(raw_name), cls, rank_token,
                            kind == "SharedMutex",
                            line_of(clean, m.start()), parsed_anns])
    # Guarded fields.
    for m in GUARDED_FIELD_RE.finditer(clean):
        cls = owner(m.start())
        fm["guarded"].append([m.group(1), cls,
                              canonical_lock_name(m.group(2)),
                              line_of(clean, m.start())])
    # Member variable types (for receiver-based call resolution).
    seen_members = set()
    for (start, end, cls) in class_spans:
        body = clean[start:end]
        for rex in (SMART_PTR_DECL_RE, PTR_REF_DECL_RE, VALUE_MEMBER_RE):
            for m in rex.finditer(body):
                key = (cls, m.group(2))
                if key not in seen_members:
                    seen_members.add(key)
                    fm["member_types"].append(
                        [cls, m.group(2), Program._type_name(m.group(1))])
    # Declaration-site REQUIRES: annotations live on the header
    # prototype (`void FooLocked() REQUIRES(mu_);`), not the
    # definition; fold them into the matching Function by
    # (class, method) after all files are scanned.
    for m in REQUIRES_RE.finditer(clean):
        cls = owner(m.start())
        head = clean[max(0, m.start() - 400):m.start()].rstrip()
        while True:
            q = re.search(r"(?:\bconst|\bnoexcept|\boverride|\bfinal"
                          r"|\bREQUIRES(?:_SHARED)?\s*\([^()]*\))\s*$",
                          head)
            if q is None:
                break
            head = head[:q.start()].rstrip()
        if not head.endswith(")"):
            continue
        open_idx = _match_open_paren(head, len(head) - 1)
        if open_idx <= 0:
            continue
        nm = NAME_BEFORE_PAREN_RE.search(head[:open_idx])
        if nm is None:
            continue
        method = re.sub(r"\s+", "", nm.group(1)).rsplit("::", 1)[-1]
        if method in CONTROL_KEYWORDS or method in MACRO_NAMES:
            continue
        shared = m.group(1) == "REQUIRES_SHARED"
        for arg in m.group(2).split(","):
            a = arg.strip()
            if a:
                fm["decl_requires"].append([cls, method, a, shared])


def _class_spans(clean, fm):
    """[(start, end, name)] body spans of class/struct definitions.
    Also records base classes into the file model's subclass edges."""
    spans = []
    seen_edges = set()
    for m in re.finditer(r"\b(?:class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(:[^;{()]*)?\{", clean):
        name = m.group(1)
        bases = m.group(2) or ""
        for bm in re.finditer(r"[A-Za-z_][\w:]*", bases):
            base = bm.group(0)
            if base in ("public", "protected", "private", "virtual",
                        "final", "std"):
                continue
            base = Program._type_name(base)
            if base != name and (base, name) not in seen_edges:
                seen_edges.add((base, name))
                fm["subclasses"].append([base, name])
        start = m.end() - 1
        depth = 0
        for j in range(start, len(clean)):
            if clean[j] == "{":
                depth += 1
            elif clean[j] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((start, j + 1, name))
                    break
    return spans


def _classify_segment(seg):
        s = seg.strip()
        if not s:
            return "block", ""
        m = re.search(r"\bnamespace\s*([A-Za-z_]\w*)?\s*$", s)
        if m:
            return "namespace", m.group(1) or ""
        if re.search(r"\benum\b", s):
            return "enum", ""
        m = re.search(r"\b(?:class|struct|union)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?$", s)
        if m:
            return "class", m.group(1)
        # Lambda introducer directly before the brace: `[..](..) {` or
        # `[..] {` — not a named function.
        if re.search(r"\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:REQUIRES(?:_SHARED)?\s*\([^()]*\)\s*)?(?:->\s*[\w:<>]+\s*)?$", s):
            return "block", ""
        stripped = _strip_ctor_init_list(s)
        tail = SIG_TAIL_RE.search(stripped)
        head = stripped[:tail.start()] if tail else stripped
        if not head.rstrip().endswith(")"):
            return "block", ""
        close = head.rstrip()
        open_idx = _match_open_paren(close, len(close) - 1)
        if open_idx <= 0:
            return "block", ""
        nm = NAME_BEFORE_PAREN_RE.search(close[:open_idx])
        if nm is None:
            return "block", ""
        name = re.sub(r"\s+", "", nm.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in CONTROL_KEYWORDS or simple in MACRO_NAMES:
            return "block", ""
        if simple in GTEST_MACROS:
            return "function", name
        return "function", name

def _make_function(sf, seg, seg_start, brace_pos, stack):
        s = seg.strip()
        stripped = _strip_ctor_init_list(s)
        tail = SIG_TAIL_RE.search(stripped)
        head = stripped[:tail.start()] if tail else stripped
        tail_text = stripped[tail.start():] if tail else ""
        head = head.rstrip()
        if not head.endswith(")"):
            return None
        open_idx = _match_open_paren(head, len(head) - 1)
        if open_idx <= 0:
            return None
        nm = NAME_BEFORE_PAREN_RE.search(head[:open_idx])
        if nm is None:
            return None
        name = re.sub(r"\s+", "", nm.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in CONTROL_KEYWORDS or simple in MACRO_NAMES:
            return None
        args_text = head[open_idx + 1:-1]
        if simple in GTEST_MACROS:
            parts = [a.strip() for a in args_text.split(",")]
            qual = ".".join(p for p in parts if p)
            fn_name = qual or simple
            # TEST_F/TEST_P bodies run as methods of the fixture class:
            # attributing them to it resolves fixture-helper calls.
            cls = parts[0] if parts and simple in (
                "TEST_F", "TEST_P", "TYPED_TEST") else ""
            qualname = simple + ":" + qual
            return_type = "void"
            requires = []
        else:
            # Enclosing class from the scope stack (innermost class).
            cls = ""
            for kind, scope_name in reversed(stack):
                if kind == "class":
                    cls = scope_name
                    break
            if "::" in name:
                qual_cls = name.rsplit("::", 2)[-2]
                cls = qual_cls
                qualname = name
            else:
                qualname = (cls + "::" + name) if cls else name
            fn_name = simple
            ret_head = head[:nm.start()].strip()
            ret_tokens = [t for t in re.split(r"[\s&*]+", ret_head)
                          if t and t not in ("static", "inline", "virtual",
                                             "explicit", "constexpr",
                                             "friend", "mutable", "const")]
            return_type = ret_tokens[-1] if ret_tokens else ""
            requires = []
            for rm in REQUIRES_RE.finditer(tail_text):
                shared = rm.group(1) == "REQUIRES_SHARED"
                for arg in rm.group(2).split(","):
                    a = arg.strip()
                    if a:
                        requires.append((a, shared))
        sig_line = line_of(sf.clean, seg_start + len(seg) - len(seg.lstrip()))
        return Function(fn_name, qualname, cls, sf, sig_line, brace_pos,
                        len(sf.clean), return_type, requires, args_text)
