"""Held-lock dataflow over the program model.

Intra-procedural: a linear walk of each function body tracks brace
depth and the stack of scoped lock guards (MutexLock / WriterMutexLock
/ ReaderMutexLock, plus ReaderMutexLock::Release), producing the set of
held locks at every interesting event: lock acquisitions, call sites,
blocking operations, guarded-field writes.

Inter-procedural: a worklist propagates held-lock contexts through the
call graph. A context is a frozenset of HeldLock; when function F calls
G at a site where F holds H (plus F's own entry context C), G is
(re)analyzed under C ∪ H with the call chain recorded, so a report can
show the full acquisition path. Contexts are deduplicated per function;
the explosion bound (MAX_CONTEXTS per function) is reported, never
silently applied.
"""

import re
from collections import namedtuple

from source import line_of
from model import canonical_lock_name, CALL_BLACKLIST
import effects as fx

HeldLock = namedtuple("HeldLock", ["name", "shared", "rank"])

# Event kinds.
ACQUIRE = "acquire"
CALL = "call"
BLOCKING = "blocking"
GUARDED_WRITE = "guarded_write"
STATUS_DROP = "status_drop"
FAILPOINT = "failpoint"
EFFECT = fx.EFFECT

Event = namedtuple(
    "Event",
    ["kind", "pos", "line", "held", "data"],
)

GUARD_RE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\s+(\w+)\s*\(")
GUARD_RELEASE_RE = re.compile(r"\b(\w+)\s*\.\s*Release\s*\(\s*\)")

# Blocking-operation catalog (DESIGN.md section 15). CondVar waits
# temporarily release their own mutex — the first argument is excluded
# from the held set at the wait.
CV_WAIT_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*Wait(?:For)?\s*\(")
JOIN_RE = re.compile(r"(?:\.|->)\s*[jJ]oin\s*\(\s*\)")
SYNC_RE = re.compile(r"(?:\.|->)\s*Sync\s*\(\s*\)")
CALL_SITE_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?\b([A-Za-z_]\w*)\s*\(")
YIELD_RE = re.compile(r"\bCHECK_YIELD(?:_RES)?\s*\(")
FAILPOINT_RE = re.compile(
    r"\b(?:DIFFINDEX_FAILPOINT|MaybeFail|Fires|IsArmed)\s*\(\s*\"([^\"]+)\"")
STATUS_LOCAL_RE = re.compile(r"\bStatus\s+(\w+)\s*=")

MAX_CONTEXTS = 64
MAX_CHAIN = 12


def balanced_args(text, open_paren_pos):
    depth = 0
    for j in range(open_paren_pos, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_pos + 1:j]
    return None


def first_arg(text, open_paren_pos):
    args = balanced_args(text, open_paren_pos)
    if args is None:
        return ""
    depth = 0
    for j, c in enumerate(args):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:j]
    return args


def build_events(program, fn):
    """Populates fn.events with the ordered event list and fn.has_yield /
    fn.direct_callees. Positions are relative to fn.sf.clean."""
    body = fn.body
    base = fn.body_start
    sf = fn.sf
    cls = fn.cls

    def make_held(expr, shared):
        name = canonical_lock_name(expr)
        bare = re.match(r"^[A-Za-z_]\w*$", expr.strip().lstrip("&")) is not None
        decl = program.locks_by_class.get((cls, name))
        if decl is None and not bare:
            decl = program.locks_global.get(name)
        rank = decl.rank if decl is not None else 0
        return HeldLock(name, shared, rank)

    # Pre-scan raw markers.
    markers = []  # (pos_in_body, kind, payload)
    for m in GUARD_RE.finditer(body):
        kind, var = m.group(1), m.group(2)
        expr = first_arg(body, m.end() - 1)
        shared = kind == "ReaderMutexLock"
        markers.append((m.start(), "guard", (var, make_held(expr, shared))))
    for m in GUARD_RELEASE_RE.finditer(body):
        markers.append((m.start(), "guard_release", m.group(1)))
    for m in CV_WAIT_RE.finditer(body):
        receiver = m.group(1)
        released = canonical_lock_name(first_arg(body, m.end() - 1))
        markers.append((m.start(), "cv_wait", (receiver, released)))
    for m in JOIN_RE.finditer(body):
        markers.append((m.start(), "join", None))
    for m in SYNC_RE.finditer(body):
        markers.append((m.start(), "sync", None))
    for m in CALL_SITE_RE.finditer(body):
        receiver, callee = m.group(1), m.group(2)
        if callee in CALL_BLACKLIST or callee in ("Wait", "WaitFor"):
            continue
        # Receiver typing beyond the regex capture: accessor chains
        # (`region->tree()->Flush(...)`) have no identifier for group 1
        # at all, and member paths (`options_.env->RemoveFile(...)`)
        # capture only the last link. chain_receiver_type walks the
        # whole postfix expression; for a plain `Foo(...)` call it
        # returns None immediately (no separator before the name).
        recv_type = program.chain_receiver_type(fn, body, m.start(2))
        markers.append((m.start(), "call",
                        (receiver, callee, recv_type, m.end() - 1)))
    for m in YIELD_RE.finditer(body):
        fn.has_yield = True
    # Guarded-field writes: own-member mutations only (`x_ = ...`,
    # `x_ += ...`, `x_++`, `--x_`, `x_.clear()`-style mutator calls).
    fields = program.guarded_by_class.get(cls, {})
    if fields:
        field_alt = "|".join(re.escape(f) for f in fields)
        write_re = re.compile(
            r"(?<![\w.>])(?:this\s*->\s*)?(" + field_alt + r")\s*"
            r"(=(?!=)|\+=|-=|\|=|&=|\^=|\+\+|--|\.\s*(?:push_back|push_front"
            r"|pop_back|pop_front|emplace|emplace_back|insert|erase|clear"
            r"|assign|resize|reset|swap|Add|Sub|store|fetch_add|fetch_sub)\b)")
        for m in write_re.finditer(body):
            # `x_ = ...` inside a declaration `Type x_ = ...` at class
            # scope can't appear in a function body; no filtering needed.
            markers.append((m.start(), "guarded_write",
                            (m.group(1), fields[m.group(1)])))
    # Status locals (status-flow rule): `Status s = ...;` whose variable
    # is never read afterwards.
    for m in STATUS_LOCAL_RE.finditer(body):
        var = m.group(1)
        rest = body[m.end():]
        # Any later mention of the variable counts as a use.
        if not re.search(r"\b%s\b" % re.escape(var), rest):
            markers.append((m.start(), "status_local", var))
    for m in FAILPOINT_RE.finditer(sf.clean_str[fn.body_start:fn.body_end]):
        markers.append((m.start(), "failpoint", m.group(1)))
    # Durable-effect markers with no call-site shape: success returns
    # from RPC handlers (the ack moment) and dead-letter recordings.
    if fn.return_type == "Status" and fx.HANDLER_NAME_RE.match(fn.name or ""):
        for m in fx.RPC_ACK_RE.finditer(body):
            markers.append((m.start(), "rpc_ack", None))
    for m in fx.DEAD_LETTER_RE.finditer(body):
        markers.append((m.start(), "dead_letter", None))

    markers.sort(key=lambda t: t[0])

    # Linear walk: depth + guard stack -> held set at each marker. The
    # scope stack assigns each `{...}` a stable id so the crash-window
    # rule can ask "is this failpoint in the same innermost scope as
    # that dead-letter record" without re-walking the text.
    events = []
    depth = 0
    held_stack = []  # (depth_at_acquisition, var, HeldLock)
    scope_counter = 0
    scope_stack = [0]
    mi = 0
    # REQUIRES entry locks resolve exactly like guard expressions: a
    # bare member name binds class-only (Client::mu_ must not inherit
    # AsyncUpdateQueue::mu_'s rank), receiver expressions fall back to
    # the global registry.
    entry = tuple(make_held(raw, sh) for raw, sh in fn.requires)

    def held_now():
        return entry + tuple(h for _, _, h in held_stack)

    for i, ch in enumerate(body):
        while mi < len(markers) and markers[mi][0] == i:
            pos, kind, payload = markers[mi]
            mi += 1
            line = line_of(sf.clean, base + pos)
            if kind == "guard":
                var, h = payload
                events.append(Event(ACQUIRE, base + pos, line, held_now(),
                                    {"lock": h}))
                held_stack.append((depth, var, h))
            elif kind == "guard_release":
                var = payload
                for k in range(len(held_stack) - 1, -1, -1):
                    if held_stack[k][1] == var:
                        del held_stack[k]
                        break
            elif kind == "cv_wait":
                receiver, released = payload
                held = tuple(h for h in held_now() if h.name != released)
                events.append(Event(BLOCKING, base + pos, line, held,
                                    {"op": "condvar-wait",
                                     "detail": receiver + ".Wait"}))
            elif kind == "join":
                events.append(Event(BLOCKING, base + pos, line, held_now(),
                                    {"op": "thread-join", "detail": "join"}))
            elif kind == "sync":
                events.append(Event(BLOCKING, base + pos, line, held_now(),
                                    {"op": "fsync", "detail": "Sync"}))
                events.append(Event(EFFECT, base + pos, line, held_now(),
                                    {"effect": "fsync",
                                     "scope": scope_stack[-1]}))
            elif kind == "call":
                receiver, callee, recv_type, paren = payload
                fn.direct_callees.add(callee)
                eff = fx.classify_call(program, fn, callee, receiver,
                                       recv_type, balanced_args(body, paren))
                if eff is not None:
                    events.append(Event(EFFECT, base + pos, line, held_now(),
                                        {"effect": eff,
                                         "scope": scope_stack[-1]}))
                events.append(Event(CALL, base + pos, line, held_now(),
                                    {"receiver": receiver, "callee": callee,
                                     "recv_type": recv_type}))
                if callee == "Call" and receiver and "fabric" in receiver:
                    events.append(Event(BLOCKING, base + pos, line,
                                        held_now(),
                                        {"op": "fabric-rpc",
                                         "detail": receiver + "->Call"}))
            elif kind == "guarded_write":
                fname, field = payload
                events.append(Event(GUARDED_WRITE, base + pos, line,
                                    held_now(),
                                    {"field": fname, "guard": field.guard}))
            elif kind == "status_local":
                events.append(Event(STATUS_DROP, base + pos, line,
                                    held_now(), {"var": payload}))
            elif kind == "failpoint":
                events.append(Event(FAILPOINT, base + pos, line, held_now(),
                                    {"name": payload,
                                     "scope": scope_stack[-1]}))
            elif kind == "rpc_ack":
                events.append(Event(EFFECT, base + pos, line, held_now(),
                                    {"effect": "rpc-ack",
                                     "scope": scope_stack[-1]}))
            elif kind == "dead_letter":
                events.append(Event(EFFECT, base + pos, line, held_now(),
                                    {"effect": "dead-letter-record",
                                     "scope": scope_stack[-1]}))
        if ch == "{":
            depth += 1
            scope_counter += 1
            scope_stack.append(scope_counter)
        elif ch == "}":
            depth -= 1
            if len(scope_stack) > 1:
                scope_stack.pop()
            while held_stack and held_stack[-1][0] > depth:
                held_stack.pop()
    fn.events = events


class Context(namedtuple("Context", ["held", "chain"])):
    """held: frozenset of HeldLock inherited from callers; chain: tuple of
    (caller_qualname, rel_path, line) call sites leading here."""


def propagate(program, notes):
    """Runs the interprocedural worklist. Returns {fn: [Context]}.
    `notes` collects non-silent capacity messages."""
    contexts = {}
    worklist = []
    unresolved = set()
    chain_capped = set()
    for fn in program.functions:
        base = Context(frozenset(), ())
        contexts[fn] = {base.held: base}
        worklist.append((fn, base))
    while worklist:
        fn, ctx = worklist.pop()
        for ev in fn.events:
            if ev.kind != CALL:
                continue
            ranked = frozenset(
                h for h in (ctx.held | set(ev.held)) if h.rank > 0)
            if not ranked:
                continue
            targets = program.resolve_call(
                ev.data["callee"], ev.data["receiver"], fn,
                ev.data.get("recv_type"))
            if not targets and \
                    len(program.defs_by_name.get(ev.data["callee"], ())) > 1:
                unresolved.add((fn.qualname, ev.data["callee"], ev.line))
            for callee in targets:
                if callee is fn:
                    continue
                seen = contexts[callee]
                if ranked in seen:
                    continue
                if len(seen) >= MAX_CONTEXTS:
                    notes.append(
                        "context cap (%d) reached at %s; further caller "
                        "lock contexts not explored" %
                        (MAX_CONTEXTS, callee.qualname))
                    continue
                if len(ctx.chain) >= MAX_CHAIN:
                    chain_capped.add(fn.qualname)
                    continue
                new = Context(ranked, ctx.chain +
                              ((fn.qualname, fn.sf.rel, ev.line),))
                seen[ranked] = new
                worklist.append((callee, new))
    if unresolved:
        notes.append(
            "%d under-lock call site(s) left unresolved (callee name "
            "defined in multiple classes, receiver type unknown)"
            % len(unresolved))
    for q in sorted(chain_capped):
        notes.append("call-chain cap (%d) reached below %s; deeper "
                     "contexts not explored" % (MAX_CHAIN, q))
    return {fn: list(ctxs.values()) for fn, ctxs in contexts.items()}
