"""Report emitters: human-readable text, SARIF-style JSON, and the
deterministic lock-graph dump consumed by the golden snapshot test."""

import json

RULE_DESCRIPTIONS = {
    "lock-order-global":
        "interprocedural acquisition order must follow the rank ladder",
    "blocking-under-lock":
        "blocking operations unreachable while a ranked lock is held",
    "guarded-access":
        "GUARDED_BY fields written only with their guard held",
    "yield-coverage":
        "guarded mutations in model-checked modules carry CHECK_YIELD seams",
    "status-flow":
        "no Status silently dropped through locals or void wrappers",
    "failpoint-reachability":
        "every consulted failpoint is armed by some test",
    "log-before-apply":
        "no memtable apply reachable before the covering WAL append",
    "ack-after-durable":
        "no success return before the fsync covering the last WAL append",
    "rename-after-sync":
        "tmp-built durable files are fsynced before the publishing rename",
    "checkpoint-after-data":
        "checkpoint frame written only after the manifest commit",
    "crash-window-failpoint":
        "every dead-letter crash window carries a named failpoint",
    "waiver-rationale":
        "every ANALYZER_WAIVE carries a written rationale",
}


def text_report(findings, notes, files_scanned):
    lines = []
    active = [f for f in findings if f.waiver is None]
    waived = [f for f in findings if f.waiver is not None]
    for f in sorted(active, key=lambda f: (f.rule, f.rel, f.line)):
        lines.append("%s:%d: [%s] %s" % (f.rel, f.line, f.rule, f.message))
        for q, rel, line in f.chain:
            lines.append("    via %s at %s:%d" % (q, rel, line))
    for note in notes:
        lines.append("note: %s" % note)
    lines.append(
        "diffindex_analyzer: %d finding(s), %d waived, %d file(s) scanned"
        % (len(active), len(waived), files_scanned))
    return "\n".join(lines)


def sarif_report(findings, files_scanned):
    rules_seen = sorted({f.rule for f in findings} | set(RULE_DESCRIPTIONS))
    results = []
    for f in sorted(findings, key=lambda f: (f.rule, f.rel, f.line)):
        result = {
            "ruleId": f.rule,
            "level": "warning" if f.waiver is not None else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel.replace("\\", "/")},
                    "region": {"startLine": f.line},
                }
            }],
        }
        if f.chain:
            result["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [{
                        "location": {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": rel.replace("\\", "/")},
                                "region": {"startLine": line},
                            },
                            "message": {"text": q},
                        }
                    } for q, rel, line in f.chain]
                }]
            }]
        if f.waiver is not None:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": f.waiver.rationale.strip(),
            }]
        results.append(result)
    return {
        "$schema": "https://schemastore.azurewebsites.net/schemas/json/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "diffindex-analyzer",
                    "informationUri": "tools/analyzer/",
                    "rules": [{
                        "id": rid,
                        "shortDescription": {
                            "text": RULE_DESCRIPTIONS.get(rid, rid)},
                    } for rid in rules_seen],
                }
            },
            "properties": {"filesScanned": files_scanned},
            "results": results,
        }],
    }


def lock_graph_dump(program, contexts):
    """Deterministic snapshot of the lock architecture: the rank ladder,
    the declared ACQUIRED_BEFORE edges, and every distinct held->acquired
    nesting the interprocedural walk observed. Any refactor that changes
    acquisition structure changes this text (golden snapshot test)."""
    from dataflow import ACQUIRE

    out = ["# diffindex-analyzer lock graph (golden snapshot)",
           "# regenerate: python3 tools/analyzer --dump-lock-graph", ""]
    out.append("[ladder]")
    seen = set()
    for decl in sorted(program.lock_decls,
                       key=lambda d: (d.rank, d.cls, d.name)):
        key = (decl.cls, decl.name, decl.rank)
        if key in seen:
            continue
        seen.add(key)
        out.append("rank %-3d %s%s (%s)" %
                   (decl.rank, (decl.cls + "::") if decl.cls else "",
                    decl.name, "shared" if decl.is_shared else "exclusive"))
    out.append("")
    out.append("[declared-edges]")
    for before in sorted(program.declared_edges):
        for after in sorted(program.declared_edges[before]):
            out.append("%s -> %s" % (before, after))
    out.append("")
    out.append("[observed-nestings]")
    pairs = {}
    for fn, ctxs in contexts.items():
        for ctx in ctxs:
            for ev in fn.events:
                if ev.kind != ACQUIRE:
                    continue
                lock = ev.data["lock"]
                if lock.rank <= 0:
                    continue
                for held in set(ev.held) | ctx.held:
                    if held.rank <= 0 or held.name == lock.name:
                        continue
                    key = (held.name, held.shared, lock.name, lock.shared)
                    site = "%s:%d" % (fn.sf.rel.replace("\\", "/"), ev.line)
                    if key not in pairs or site < pairs[key]:
                        pairs[key] = site
    for (hname, hshared, aname, ashared) in sorted(pairs):
        out.append("%s%s -> %s%s" %
                   (hname, "[s]" if hshared else "",
                    aname, "[s]" if ashared else ""))
    out.append("")
    return "\n".join(out)


def effect_graph_dump(program, summaries):
    """Deterministic snapshot of the durable-effect structure: every
    classified effect site in src/, then each src/ function's collapsed
    interprocedural effect ordering. Any change to a crash-ordering
    protocol — a new effect site, a reordering, a new path — changes
    this text (golden snapshot test beside the lock graph)."""
    import effects as fx
    from dataflow import EFFECT

    out = ["# diffindex-analyzer effect graph (golden snapshot)",
           "# regenerate: python3 tools/analyzer --dump-effect-graph", ""]
    out.append("[effect-sites]")
    sites = set()
    for fn in program.functions:
        rel = fn.sf.rel.replace("\\", "/")
        if not rel.startswith("src/"):
            continue
        for ev in fn.events:
            if ev.kind == EFFECT:
                sites.add((rel, ev.line, ev.data["effect"], fn.qualname))
    for rel, line, eff, qual in sorted(sites):
        out.append("%s:%d %s (%s)" % (rel, line, eff, qual))
    out.append("")
    out.append("[effect-orderings]")
    rows = []
    for fn in program.functions:
        rel = fn.sf.rel.replace("\\", "/")
        if not rel.startswith("src/"):
            continue
        trace = summaries.get(fn) or []
        if not trace:
            continue
        rows.append("%s: %s" % (fn.qualname,
                                " -> ".join(fx.collapsed_trace(trace))))
    for row in sorted(rows):
        out.append(row)
    out.append("")
    return "\n".join(out)
