"""Durable-effect layer of the whole-program analyzer (DESIGN.md §15).

Crash-ordering protocols — WAL-append before memtable apply, fsync
before client ack, tmp+Sync+rename for durable files, SSTables+manifest
durable before the checkpoint frame, a named failpoint inside every
intentional ack-before-durable window — are enforced dynamically by the
chaos harness, but only on the schedules it happens to run. This module
makes them static: every statement with a durability consequence is
classified into a small effect alphabet, and an interprocedural summary
gives, for each function, the ordered sequence of effects reachable
through ANY call chain from its body (the same linearized-text model the
held-lock dataflow uses: straight-line within a body, callee summaries
inlined at call sites).

The effect alphabet:

  wal-append          WAL record append (`Writer::AddRecord` call sites)
  fsync               durable sync (`->Sync()`, the blocking catalog's op)
  tmp-write           opening a temporary file for a durable artifact
                      (`NewWritableFile` whose path argument names a tmp)
  rename              atomic publish (`RenameFile` call sites)
  memtable-apply      applying an edit to in-memory state the WAL covers
                      (calls resolving to LsmTree::Put/Delete or
                      MemTable::Add — receiver-chain typed, so
                      `region->tree()->Put(...)` classifies)
  checkpoint-write    writing the recovery roll-forward checkpoint frame
                      (`WriteRegionCheckpoint` call sites)
  manifest-write      committing the SSTable set (`WriteManifest` calls;
                      the manifest write is the durability point the
                      flushed SSTs become visible at)
  rpc-ack             success return from an RPC handler (`return
                      Status::OK()` inside a `Handle<Msg>` method — the
                      moment the fabric reports the operation done)
  dead-letter-record  recording a shed/escaped task on the dead-letter
                      list (`dead_letters_.push_back/emplace_back`)

Rules over these sequences live in rules.py (log-before-apply,
ack-after-durable, rename-after-sync, checkpoint-after-data,
crash-window-failpoint)."""

import re
from collections import namedtuple

# Event kind contributed to dataflow's event stream.
EFFECT = "effect"

ALL_EFFECTS = (
    "wal-append",
    "fsync",
    "tmp-write",
    "rename",
    "memtable-apply",
    "checkpoint-write",
    "manifest-write",
    "rpc-ack",
    "dead-letter-record",
)

# Callee names whose call sites carry an effect unconditionally. These
# names are unique to their durable role in this codebase (the fixture
# corpus mirrors them), so no receiver typing is needed.
CALL_NAME_EFFECTS = {
    "AddRecord": "wal-append",
    "RenameFile": "rename",
    "WriteManifest": "manifest-write",
    "WriteRegionCheckpoint": "checkpoint-write",
}

# (class, method) pairs that apply an edit to WAL-covered memory. Calls
# with these simple names classify only when receiver typing resolves
# them here — `counter->Add()` must not read as a memtable apply.
APPLY_SITES = {
    ("LsmTree", "Put"),
    ("LsmTree", "Delete"),
    ("MemTable", "Add"),
}
APPLY_NAMES = {name for _, name in APPLY_SITES}

# RPC handler naming convention: the per-message methods the fabric
# dispatch fans out to. The bare dispatcher (`Handle`) is excluded —
# its returns forward a handler's status, they do not originate an ack.
HANDLER_NAME_RE = re.compile(r"^Handle[A-Z]\w*$")

RPC_ACK_RE = re.compile(r"\breturn\s+Status\s*::\s*OK\s*\(")

DEAD_LETTER_RE = re.compile(
    r"\bdead_letter\w*_\s*\.\s*(?:push_back|emplace_back)\s*\(")

TMP_ARG_RE = re.compile(r"tmp", re.IGNORECASE)


def classify_call(program, fn, callee, receiver, recv_type, arg_text):
    """Effect kind for a call site, or None. `arg_text` is the call's
    balanced argument text (comments/strings blanked, so a tmp path must
    be named by an identifier like `tmp_path`, as the tree's tmp+rename
    writers all do)."""
    eff = CALL_NAME_EFFECTS.get(callee)
    if eff is not None:
        return eff
    if callee == "NewWritableFile":
        return "tmp-write" if TMP_ARG_RE.search(arg_text or "") else None
    if callee in APPLY_NAMES:
        targets = program.resolve_call(callee, receiver, fn, recv_type)
        if targets and all((t.cls, t.name) in APPLY_SITES for t in targets):
            return "memtable-apply"
    return None


# One effect occurrence in a function's flattened interprocedural
# sequence: the raw site (rel:line inside `owner`) plus the call chain
# from the summarized function down to it (empty for own-body effects).
EffectEntry = namedtuple("EffectEntry", ["kind", "rel", "line", "owner",
                                         "chain"])

# Summary caps, reported as notes — never applied silently.
MAX_SUMMARY = 400
MAX_CHAIN = 8


def build_summaries(program, notes):
    """{Function: [EffectEntry]} — each function's ordered effect
    sequence with callee summaries inlined at call sites (memoized;
    recursion contributes nothing on the back edge, matching the
    held-lock walk's treatment of cycles)."""
    from dataflow import CALL  # local import: dataflow imports us first

    memo = {}
    in_progress = set()
    truncated = set()

    def summary(fn):
        cached = memo.get(fn)
        if cached is not None:
            return cached
        if fn in in_progress:
            return []
        in_progress.add(fn)
        out = []
        for ev in fn.events:
            if len(out) >= MAX_SUMMARY:
                truncated.add(fn.qualname)
                break
            if ev.kind == EFFECT:
                out.append(EffectEntry(ev.data["effect"], fn.sf.rel, ev.line,
                                       fn.qualname, ()))
            elif ev.kind == CALL:
                targets = program.resolve_call(
                    ev.data["callee"], ev.data["receiver"], fn,
                    ev.data.get("recv_type"))
                for t in sorted(targets, key=lambda f: (f.qualname, f.sf.rel,
                                                        f.sig_line)):
                    if t is fn:
                        continue
                    for e in summary(t):
                        if len(out) >= MAX_SUMMARY:
                            truncated.add(fn.qualname)
                            break
                        chain = ((fn.qualname, fn.sf.rel, ev.line),) + e.chain
                        out.append(e._replace(chain=chain[:MAX_CHAIN]))
        in_progress.discard(fn)
        memo[fn] = out
        return out

    # Summaries are only consumed for src/ functions (the ordering rules
    # and the effect-graph dump both scope there); computing them for
    # test drivers would just spray truncation notes from mega-mains.
    # The memoized DFS still fills in every callee a src/ root reaches.
    for fn in program.functions:
        if fn.sf.rel.replace("\\", "/").startswith("src/"):
            summary(fn)
    for q in sorted(truncated):
        notes.append("effect-summary cap (%d) reached in %s; later effects "
                     "not tracked on this path" % (MAX_SUMMARY, q))
    return memo


def collapsed_trace(entries, cap=24):
    """Human-readable ordering for the effect-graph dump: consecutive
    duplicate kinds collapse, long tails elide."""
    kinds = []
    for e in entries:
        if not kinds or kinds[-1] != e.kind:
            kinds.append(e.kind)
    if len(kinds) > cap:
        return kinds[:cap] + ["..."]
    return kinds
