"""Command-line driver for the Diff-Index whole-program analyzer.

Usage:
  python3 tools/analyzer [--root DIR] [--rules r1,r2,...]
                         [--json OUT.sarif] [--dump-lock-graph]
                         [--compile-commands PATH] [files...]

With explicit `files` only those are analyzed (the fixture tests use
this; each fixture is a self-contained translation unit). Otherwise the
file set is every source under <root>/src and <root>/tests (fixture
corpora excluded), cross-checked against compile_commands.json when
present so a TU the build knows about is never silently skipped.

Exit status: 0 clean, 1 unwaived findings, 2 usage/config error.
"""

import argparse
import json
import os
import sys

import dataflow
import model
import report
import rules as rules_mod
import source


def default_root():
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def build_program(root, paths, notes, cache_dir=None):
    files = [source.SourceFile(p, root) for p in paths]
    if cache_dir is None:
        program = model.Program(root, files)
        for fn in program.functions:
            dataflow.build_events(program, fn)
    else:
        program = _build_cached(root, files, cache_dir)
    contexts = dataflow.propagate(program, notes)
    return program, contexts


def _build_cached(root, files, cache_dir):
    import cache

    keys = [cache.content_key(sf) for sf in files]
    blobs = [cache.load(cache_dir, k) for k in keys]
    stats = {"model_hits": 0, "event_hits": 0, "stored": 0}
    fms = []
    for sf, blob in zip(files, blobs):
        if blob is not None:
            stats["model_hits"] += 1
            fms.append(blob["model"])
        else:
            fms.append(model.extract_file_model(sf))
    program = model.Program(root, files, fms)
    digest = program.registry_digest()
    for sf, blob, key, fm in zip(files, blobs, keys, fms):
        fns = program.functions_by_file[sf.rel]
        cached = None if blob is None else blob.get("events", {}).get(digest)
        if cached is not None and len(cached) == len(fns):
            stats["event_hits"] += 1
            for fn, row in zip(fns, cached):
                cache.restore_events(fn, row)
        else:
            for fn in fns:
                dataflow.build_events(program, fn)
            stats["stored"] += 1
            cache.store(cache_dir, key, {
                "schema": cache.SCHEMA_VERSION,
                "model": fm,
                # Only the current digest's events are kept: stale
                # registries never come back, so hoarding them just
                # grows the blob.
                "events": {digest: [cache.capture_events(fn)
                                    for fn in fns]},
            })
    # stderr only: a warm run's report must be byte-identical to cold.
    print("diffindex_analyzer: cache %d/%d model hits, %d/%d event hits, "
          "%d stored" % (stats["model_hits"], len(files),
                         stats["event_hits"], len(files), stats["stored"]),
          file=sys.stderr)
    return program


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--rules", default=",".join(rules_mod.ALL_RULES))
    parser.add_argument("--json", default=None,
                        help="write a SARIF-style JSON report here")
    parser.add_argument("--dump-lock-graph", action="store_true",
                        help="print the lock-graph snapshot and exit")
    parser.add_argument("--dump-effect-graph", action="store_true",
                        help="print the durable-effect snapshot and exit")
    parser.add_argument("--cache-dir", default=None,
                        help="incremental cache directory; warm runs "
                             "re-analyze only changed files")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root or default_root())
    selected = [r.strip() for r in args.rules.split(",") if r.strip()]
    for r in selected:
        if r not in rules_mod.ALL_RULES:
            print("diffindex_analyzer: unknown rule '%s'" % r)
            return 2

    if args.files:
        paths = [os.path.abspath(f) for f in args.files]
    else:
        paths = source.gather_files(root)
        cc = args.compile_commands or os.path.join(
            root, "build", "compile_commands.json")
        if os.path.exists(cc):
            known = set(paths)
            with open(cc) as f:
                for entry in json.load(f):
                    p = os.path.normpath(os.path.join(
                        entry.get("directory", ""), entry["file"]))
                    if p.endswith(source.SOURCE_EXTS) and p not in known \
                            and os.path.exists(p) \
                            and not any(part in p for part in
                                        source.EXCLUDED_DIR_PARTS):
                        paths.append(p)
    if not paths:
        print("diffindex_analyzer: no source files found")
        return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print("diffindex_analyzer: missing input: %s" % missing[0])
        return 2

    notes = []
    program, contexts = build_program(root, paths, notes,
                                      cache_dir=args.cache_dir)

    if args.dump_lock_graph:
        sys.stdout.write(report.lock_graph_dump(program, contexts))
        return 0
    if args.dump_effect_graph:
        import effects
        summaries = effects.build_summaries(program, [])
        sys.stdout.write(report.effect_graph_dump(program, summaries))
        return 0

    engine = rules_mod.RuleEngine(program, contexts, notes)
    findings = engine.run(selected)

    if args.json:
        with open(args.json, "w") as f:
            json.dump(report.sarif_report(findings, len(paths)), f, indent=2)
            f.write("\n")
    print(report.text_report(findings, notes, len(paths)))
    return 1 if any(f.waiver is None for f in findings) else 0
