"""Source-file layer of the Diff-Index whole-program analyzer.

Loads each translation unit / header once and derives the views the
rest of the package works on:

  raw        the file exactly as on disk (waiver comments live here)
  clean      comments AND string literals blanked, line structure kept
  clean_str  comments blanked, string literals kept (failpoint names)
  waivers    parsed ANALYZER_WAIVE annotations

Waiver grammar (DESIGN.md section 15): a finding is suppressed by a
comment on the reported line or the line directly above it:

    // ANALYZER_WAIVE(rule-name): written rationale for the exception

The rationale is mandatory — a waiver whose rationale is missing or
trivially short is itself reported (rule `waiver-rationale`) and does
not suppress anything. For interprocedural findings the waiver may sit
at any call site on the reported chain, so a deliberate by-design edge
is waived once, where the design decision lives.
"""

import os
import re

WAIVE_RE = re.compile(r"ANALYZER_WAIVE\(([a-z-]+)\)\s*(?::\s*(.*))?")

# A rationale must be a real sentence, not an empty tag.
MIN_RATIONALE_CHARS = 12


def strip_comments_and_strings(text, keep_strings=False):
    """Blanks out comments (and optionally string literals), preserving
    line structure so reported line numbers stay true. Same algorithm as
    tools/lint/diffindex_lint.py."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j
        elif c == '"':
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                j += 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append('"' + " " * max(0, j - i - 2) + '"')
            i = j
        elif c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                j += 1
            j = min(j + 1, n)
            out.append("'" + " " * max(0, j - i - 2) + "'")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Waiver:
    def __init__(self, rule, rationale, line):
        self.rule = rule
        self.rationale = rationale
        self.line = line

    @property
    def valid(self):
        return len(self.rationale.strip()) >= MIN_RATIONALE_CHARS


class SourceFile:
    def __init__(self, path, root):
        self.path = os.path.normpath(path)
        self.rel = os.path.relpath(self.path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.clean = strip_comments_and_strings(self.raw)
        self.clean_str = strip_comments_and_strings(self.raw, keep_strings=True)
        self.lines = self.raw.splitlines()
        # line -> [Waiver]; a waiver covers its own line and the next one.
        # A waiver inside a multi-line // comment block anchors to the
        # first statement after the block, so rationales may wrap.
        self.waivers = {}
        raw_lines = self.raw.split("\n")
        for m in WAIVE_RE.finditer(self.raw):
            line = line_of(self.raw, m.start())
            w = Waiver(m.group(1), m.group(2) or "", line)
            self.waivers.setdefault(line, []).append(w)
            anchor = line  # 1-based; raw_lines[anchor] is the next line
            while (anchor < len(raw_lines)
                   and raw_lines[anchor].lstrip().startswith("//")):
                anchor += 1
            if anchor != line:
                self.waivers.setdefault(anchor + 1, []).append(w)

    def waiver_for(self, rule, line):
        """Returns a valid Waiver covering `line` for `rule`, or None.
        A waiver comment covers its own line and the line below it (the
        usual comment-above-the-statement placement)."""
        for probe in (line, line - 1):
            for w in self.waivers.get(probe, ()):
                if w.rule == rule and w.valid:
                    return w
        return None

    def invalid_waivers(self):
        out = []
        for waivers in self.waivers.values():
            out.extend(w for w in waivers if not w.valid)
        return out


SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")

# Directories whose files are never analyzed: the lint/analyzer fixture
# corpora seed deliberate violations.
EXCLUDED_DIR_PARTS = (
    os.path.join("tests", "lint", "fixtures"),
    os.path.join("tests", "analyzer", "fixtures"),
)


def gather_files(root, subdirs=("src", "tests")):
    files = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            if any(part in dirpath for part in EXCLUDED_DIR_PARTS):
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.normpath(os.path.join(dirpath, name)))
    return sorted(files)
