"""The analyzer's interprocedural rules (DESIGN.md section 15).

  lock-order-global       no acquisition path, through any call chain,
                          may take a ranked lock while holding one of
                          equal or higher rank (the static twin of the
                          runtime validator in util/lock_order.h; the
                          same-rank shared+shared flush-gate edge is
                          permitted, mirroring the validator's waiver).
  blocking-under-lock     the blocking-operation catalog (CondVar waits,
                          thread joins, fsync, fabric RPC — and anything
                          that reaches one, e.g. drain/flush barriers)
                          must be unreachable while a ranked lock is
                          held, unless waived where the design argues
                          progress (makes the PR 7 failover-deadlock
                          class a compile-time error).
  guarded-access          a GUARDED_BY field may only be written while
                          its guard is held (statically: locally, via a
                          REQUIRES contract, or via a caller on every
                          propagated chain) — the PR 5 ts-inversion
                          shape, where the guarded write ran before the
                          lock, is this rule's seed fixture.
  yield-coverage          in model-checked modules (files carrying
                          CHECK_YIELD seams) every function that writes
                          a GUARDED_BY field must contain a CHECK_YIELD
                          or call a function that does, so new code
                          cannot escape the model checker's schedules.
  status-flow             interprocedural [[nodiscard]]: a Status
                          captured into a local that no later statement
                          reads, or a Status-returning call used as a
                          bare statement inside a void wrapper, is a
                          dropped error the compiler cannot see.
  failpoint-reachability  every failpoint name consulted in src/ must be
                          armed (by literal name) somewhere in tests/ —
                          an unreachable failpoint is dead chaos
                          coverage.

Crash-ordering rules (DESIGN.md section 15) run over the durable-effect
summaries from effects.py — each function's text-linear effect sequence
with callee summaries inlined at call sites:

  log-before-apply        no memtable apply may be reachable before the
                          covering WAL append on a path that logs — a
                          crash in between loses an unlogged edit.
  ack-after-durable       on a handler path that appends to the WAL, the
                          success status may not be returned before an
                          fsync covering the last append (the group-
                          commit leader protocol is the waived case).
  rename-after-sync       a durable file built in a tmp path must be
                          fsynced before the rename publishes it, or a
                          crash can publish a torn file (the PR 7
                          checkpoint discipline, enforced everywhere).
  checkpoint-after-data   the recovery checkpoint frame may only be
                          written after the manifest commit that makes
                          the flushed SSTables durable — a reordering
                          widens replay onto data that may not exist.
  crash-window-failpoint  every intentional ack-before-durable window
                          (a dead-letter record) must have a named
                          failpoint in the same innermost scope before
                          it, so the chaos harness can cut the window.
"""

import re
from collections import namedtuple

import dataflow
import effects as fx
from dataflow import (ACQUIRE, BLOCKING, GUARDED_WRITE, STATUS_DROP,
                      FAILPOINT, EFFECT)
from source import line_of

Finding = namedtuple(
    "Finding",
    ["rule", "rel", "line", "message", "chain", "waiver"])

DURABILITY_RULES = (
    "log-before-apply",
    "ack-after-durable",
    "rename-after-sync",
    "checkpoint-after-data",
    "crash-window-failpoint",
)

ALL_RULES = (
    "lock-order-global",
    "blocking-under-lock",
    "guarded-access",
    "yield-coverage",
    "status-flow",
    "failpoint-reachability",
) + DURABILITY_RULES

# The model checker's scheduler and the annotated-primitive layer block
# by design; the lock-order unit test violates ordering on purpose but
# carries inline waivers instead of a path exclusion, so its intent is
# written next to the code.
def _excluded(fn, rule):
    rel = fn.sf.rel.replace("\\", "/")
    if rel.endswith("util/mutex.h"):
        return True
    if rel.startswith("src/check/") and rule in (
            "blocking-under-lock", "lock-order-global", "guarded-access",
            "yield-coverage"):
        return True
    if rel.startswith("tests/") and rule == "yield-coverage":
        return True
    return False


def _chain_text(chain, fn):
    steps = [("%s (%s:%d)" % (q, rel, line)) for q, rel, line in chain]
    steps.append(fn.qualname)
    return " -> ".join(steps)


class RuleEngine:
    def __init__(self, program, contexts, notes):
        self.program = program
        self.contexts = contexts
        self.notes = notes
        self.findings = []

    def _waiver_at(self, rule, fn, line, chain):
        """A waiver suppresses a finding at the reported line or at any
        call site on its chain (so a by-design edge is waived once,
        where the decision lives)."""
        w = fn.sf.waiver_for(rule, line)
        if w is not None:
            return w
        by_rel = {sf.rel: sf for sf in self.program.files}
        for _, rel, call_line in chain:
            sf = by_rel.get(rel)
            if sf is not None:
                w = sf.waiver_for(rule, call_line)
                if w is not None:
                    return w
        return None

    def _emit(self, rule, fn, line, message, chain=()):
        waiver = self._waiver_at(rule, fn, line, chain)
        self.findings.append(Finding(rule, fn.sf.rel, line, message,
                                     tuple(chain), waiver))

    # -- per-(function, context) checks -----------------------------------

    def run(self, rules):
        rules = set(rules)
        seen = set()
        for fn, ctxs in self.contexts.items():
            for ctx in ctxs:
                self._check_context(fn, ctx, rules, seen)
        if "yield-coverage" in rules:
            self._check_yield_coverage()
        if "failpoint-reachability" in rules:
            self._check_failpoint_reachability()
        if "status-flow" in rules:
            self._check_status_wrappers()
        ordering = rules & set(DURABILITY_RULES) - {"crash-window-failpoint"}
        if ordering:
            self._check_effect_orderings(ordering)
        if "crash-window-failpoint" in rules:
            self._check_crash_windows()
        self._check_waiver_rationales()
        return self.findings

    def _check_context(self, fn, ctx, rules, seen):
        inherited = ctx.held
        for ev in fn.events:
            if ev.kind == ACQUIRE and "lock-order-global" in rules \
                    and not _excluded(fn, "lock-order-global"):
                lock = ev.data["lock"]
                if lock.rank <= 0:
                    continue
                full = set(ev.held) | inherited
                for held in full:
                    if held.rank <= 0:
                        continue
                    bad = held.rank > lock.rank or (
                        held.rank == lock.rank and
                        not (held.shared and lock.shared))
                    if not bad:
                        continue
                    key = ("lock-order-global", fn.sf.rel, ev.line,
                           held.name, lock.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    msg = ("acquires %s%s (rank %d) while holding %s%s "
                           "(rank %d); the declared ladder requires "
                           "strictly increasing ranks" %
                           (lock.name, " [shared]" if lock.shared else "",
                            lock.rank, held.name,
                            " [shared]" if held.shared else "", held.rank))
                    self._emit("lock-order-global", fn, ev.line, msg,
                               self._chain_for(ctx, fn, held))
            elif ev.kind == BLOCKING and "blocking-under-lock" in rules \
                    and not _excluded(fn, "blocking-under-lock"):
                full = set(ev.held) | inherited
                ranked = sorted((h for h in full if h.rank > 0),
                                key=lambda h: h.rank)
                if not ranked:
                    continue
                names = ", ".join("%s (rank %d)" % (h.name, h.rank)
                                  for h in ranked)
                key = ("blocking-under-lock", fn.sf.rel, ev.line,
                       tuple(h.name for h in ranked))
                if key in seen:
                    continue
                seen.add(key)
                msg = ("%s [%s] is reachable while holding ranked lock(s) "
                       "%s; a blocked holder stalls or deadlocks every "
                       "waiter of those locks" %
                       (ev.data["detail"], ev.data["op"], names))
                self._emit("blocking-under-lock", fn, ev.line, msg,
                           self._chain_for(ctx, fn, ranked[0]))
            elif ev.kind == GUARDED_WRITE and "guarded-access" in rules \
                    and not _excluded(fn, "guarded-access") \
                    and not inherited:
                # Checked in the base context only: the guard contract is
                # the function's own (REQUIRES or a local acquisition),
                # not something a lucky caller provides.
                guard = ev.data["guard"]
                if any(h.name == guard for h in ev.held):
                    continue
                key = ("guarded-access", fn.sf.rel, ev.line,
                       ev.data["field"])
                if key in seen:
                    continue
                seen.add(key)
                msg = ("writes '%s_' (GUARDED_BY %s) but %s is not held "
                       "here: not acquired in scope and not demanded via "
                       "REQUIRES — the PR 5 ts-inversion shape" %
                       (ev.data["field"].rstrip("_"), guard, guard))
                self._emit("guarded-access", fn, ev.line, msg)
            elif ev.kind == STATUS_DROP and "status-flow" in rules \
                    and not inherited:
                key = ("status-flow", fn.sf.rel, ev.line, ev.data["var"])
                if key in seen:
                    continue
                seen.add(key)
                msg = ("Status '%s' is assigned but never examined on any "
                       "later statement of %s; the error it may carry is "
                       "silently dropped" % (ev.data["var"], fn.qualname))
                self._emit("status-flow", fn, ev.line, msg)

    def _chain_for(self, ctx, fn, held):
        """The recorded caller chain, when the offending lock came from a
        caller; empty for purely local violations."""
        if any(h == held for h in ctx.held):
            return ctx.chain
        return ctx.chain if ctx.chain else ()

    # -- whole-program checks ---------------------------------------------

    def _check_yield_coverage(self):
        program = self.program
        yield_files = {fn.sf.rel for fn in program.functions if fn.has_yield
                       and fn.sf.rel.replace("\\", "/").startswith("src/")}
        for fn in program.functions:
            if fn.sf.rel not in yield_files or _excluded(fn, "yield-coverage"):
                continue
            writes = [ev for ev in fn.events if ev.kind == GUARDED_WRITE]
            if not writes or fn.has_yield:
                continue
            # Covered by a direct callee's seam?
            covered = False
            for callee in fn.direct_callees:
                for cand in program.defs_by_name.get(callee, ()):
                    if cand.has_yield:
                        covered = True
                        break
                if covered:
                    break
            if covered:
                continue
            ev = writes[0]
            msg = ("%s mutates guarded state ('%s_') in a model-checked "
                   "module but neither it nor a direct callee has a "
                   "CHECK_YIELD seam; the model checker cannot schedule "
                   "around this mutation" %
                   (fn.qualname, ev.data["field"].rstrip("_")))
            self._emit("yield-coverage", fn, ev.line, msg)

    def _check_failpoint_reachability(self):
        program = self.program
        consults = {}  # name -> (fn, line)
        armed = set()
        for sf in program.files:
            rel = sf.rel.replace("\\", "/")
            if rel.startswith("tests/"):
                # Any literal mention in a test (Arm call, chaos table,
                # scenario string) makes the point reachable.
                for m in re.finditer(r"\"([a-z_.]+)\"", sf.clean_str):
                    armed.add(m.group(1))
        for fn in program.functions:
            if not fn.sf.rel.replace("\\", "/").startswith("src/"):
                continue
            for ev in fn.events:
                if ev.kind == FAILPOINT:
                    consults.setdefault(ev.data["name"], (fn, ev.line))
        for name in sorted(consults):
            if name in armed:
                continue
            fn, line = consults[name]
            msg = ("failpoint '%s' is consulted here but never armed by "
                   "name in any test or chaos scenario; its failure mode "
                   "is untested" % name)
            self._emit("failpoint-reachability", fn, line, msg)

    def _check_status_wrappers(self):
        """The interprocedural half of status-flow: a bare-statement call
        to a Status-returning function inside a void-returning wrapper
        (no assignment, no RETURN_NOT_OK, no IgnoreError)."""
        program = self.program
        for fn in program.functions:
            if fn.return_type != "void":
                continue
            body = fn.body
            for m in re.finditer(r"(?:^|[;{}])\s*([A-Za-z_]\w*)\s*\(", body):
                callee = m.group(1)
                if callee == "Status":
                    continue
                # Resolve like a bare call from this function; flag only
                # when every candidate definition returns Status (a
                # mixed or unresolved overload set is not evidence).
                targets = program.resolve_call(callee, None, fn)
                if not targets or \
                        any(t.return_type != "Status" for t in targets):
                    continue
                args = dataflow.balanced_args(body, m.end() - 1)
                if args is None:
                    continue
                close = m.end() - 1 + len(args) + 1  # the ')'
                tail = body[close + 1:].split(";", 1)[0]
                if tail.strip():
                    continue  # chained (.IgnoreError(), .ok(), ...)
                line = line_of(fn.sf.clean, fn.body_start + m.start(1))
                msg = ("void %s drops the Status returned by %s(); "
                       "propagate it or call .IgnoreError() with a "
                       "written rationale" % (fn.qualname, callee))
                self._emit("status-flow", fn, line, msg)

    # -- crash-ordering checks over effect summaries ----------------------

    def _sf_by_rel(self):
        if not hasattr(self, "_sf_map"):
            self._sf_map = {sf.rel: sf for sf in self.program.files}
        return self._sf_map

    def _emit_at(self, rule, rel, line, message, chain):
        """Like _emit, but the finding's site may live in a different
        file than the summarized function (an inlined callee effect);
        waivers attach at the site or at any chain call site."""
        sf = self._sf_by_rel().get(rel)
        waiver = sf.waiver_for(rule, line) if sf is not None else None
        if waiver is None:
            for _, crel, cline in chain:
                csf = self._sf_by_rel().get(crel)
                if csf is not None:
                    waiver = csf.waiver_for(rule, cline)
                    if waiver is not None:
                        break
        self.findings.append(Finding(rule, rel, line, message,
                                     tuple(chain), waiver))

    def _check_effect_orderings(self, rules):
        """Scans every src/ function's flattened effect trace. The same
        site surfaces in every caller's trace too; candidates dedup by
        (rule, site) keeping the shortest chain, so a violation reports
        once, where the ordering decision lives."""
        summaries = fx.build_summaries(self.program, self.notes)
        cands = []  # (rule, rel, line, message, chain)
        for fn in self.program.functions:
            if not fn.sf.rel.replace("\\", "/").startswith("src/"):
                continue
            trace = summaries.get(fn) or []
            if "log-before-apply" in rules:
                self._scan_log_before_apply(fn, trace, cands)
            if "ack-after-durable" in rules:
                self._scan_ack_after_durable(fn, trace, cands)
            if "rename-after-sync" in rules:
                self._scan_rename_after_sync(fn, trace, cands)
            if "checkpoint-after-data" in rules:
                self._scan_checkpoint_after_data(fn, trace, cands)
        best = {}
        order = []
        for rule, rel, line, msg, chain in cands:
            key = (rule, rel, line)
            cur = best.get(key)
            if cur is None:
                order.append(key)
                best[key] = (rule, rel, line, msg, chain)
            elif len(chain) < len(cur[4]):
                best[key] = (rule, rel, line, msg, chain)
        for key in order:
            self._emit_at(*best[key])

    def _scan_log_before_apply(self, fn, trace, cands):
        first_wal = next((i for i, e in enumerate(trace)
                          if e.kind == "wal-append"), None)
        if first_wal is None:
            return
        for e in trace[:first_wal]:
            if e.kind != "memtable-apply":
                continue
            msg = ("memtable apply is reachable before the covering WAL "
                   "append on %s's path; a crash between them loses an "
                   "edit the log never saw" % fn.qualname)
            cands.append(("log-before-apply", e.rel, e.line, msg, e.chain))

    def _scan_ack_after_durable(self, fn, trace, cands):
        for i, e in enumerate(trace):
            if e.kind != "rpc-ack":
                continue
            appends = [j for j in range(i) if trace[j].kind == "wal-append"]
            if not appends:
                continue  # read path or early-out before any write
            last = appends[-1]
            if any(t.kind == "fsync" for t in trace[last + 1:i]):
                continue
            msg = ("%s returns success before any fsync covering the WAL "
                   "append on this path; a crash after the ack loses an "
                   "acknowledged write" % fn.qualname)
            cands.append(("ack-after-durable", e.rel, e.line, msg, e.chain))

    def _scan_rename_after_sync(self, fn, trace, cands):
        for i, e in enumerate(trace):
            if e.kind != "rename":
                continue
            tmps = [j for j in range(i) if trace[j].kind == "tmp-write"]
            if not tmps:
                continue  # rename of something this path didn't build
            if any(t.kind == "fsync" for t in trace[tmps[-1] + 1:i]):
                continue
            msg = ("rename publishes a tmp-built file on %s's path without "
                   "an fsync after the tmp write; a crash can publish a "
                   "torn file (tmp+Sync+rename discipline)" % fn.qualname)
            cands.append(("rename-after-sync", e.rel, e.line, msg, e.chain))

    def _scan_checkpoint_after_data(self, fn, trace, cands):
        for i, e in enumerate(trace):
            if e.kind != "checkpoint-write":
                continue
            if any(t.kind == "manifest-write" for t in trace[:i]):
                continue
            if not any(t.kind == "manifest-write" for t in trace[i + 1:]):
                continue  # no manifest on this path at all: order unprovable
            msg = ("checkpoint frame is written before the manifest commit "
                   "on %s's path; a crash leaves a checkpoint pointing past "
                   "data that was never made durable" % fn.qualname)
            cands.append(("checkpoint-after-data", e.rel, e.line, msg,
                          e.chain))

    def _check_crash_windows(self):
        """A dead-letter record is an intentional ack-before-durable
        window; a named failpoint must sit in the same innermost scope,
        before the record, so the chaos harness can crash inside it.
        Own-body events only — the window and its seam belong together."""
        for fn in self.program.functions:
            if not fn.sf.rel.replace("\\", "/").startswith("src/"):
                continue
            fp_scopes = {}
            for ev in fn.events:
                if ev.kind == FAILPOINT:
                    fp_scopes.setdefault(ev.data.get("scope"),
                                         []).append(ev.pos)
            for ev in fn.events:
                if ev.kind != EFFECT \
                        or ev.data["effect"] != "dead-letter-record":
                    continue
                scope = ev.data.get("scope")
                if any(p < ev.pos for p in fp_scopes.get(scope, ())):
                    continue
                msg = ("dead-letter record in %s has no named failpoint in "
                       "its innermost scope before it; the chaos harness "
                       "cannot crash inside this acked-but-not-durable "
                       "window" % fn.qualname)
                self._emit("crash-window-failpoint", fn, ev.line, msg)

    def _check_waiver_rationales(self):
        for sf in self.program.files:
            for w in sf.invalid_waivers():
                self.findings.append(Finding(
                    "waiver-rationale", sf.rel, w.line,
                    "ANALYZER_WAIVE(%s) has no written rationale; a waiver "
                    "must argue why the exception is safe" % w.rule,
                    (), None))
