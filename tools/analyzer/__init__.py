"""Diff-Index whole-program static analyzer (DESIGN.md section 15).

A self-contained, stdlib-only Python package that extends the
tools/lint tokenizer into a symbol table, name-resolved call graph, and
held-lock dataflow, then runs interprocedural ordering rules over every
translation unit: lock-order-global, blocking-under-lock,
guarded-access, yield-coverage, status-flow, failpoint-reachability.

Run as `python3 tools/analyzer`; see cli.py for flags.
"""
