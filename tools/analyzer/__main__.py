"""Entry point: `python3 tools/analyzer [...]` (the directory is
executable; Python prepends it to sys.path, so the package's modules
import each other by plain name)."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
