#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.h"

namespace diffindex {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

void LogLine(LogLevel level, const std::string& msg) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  MutexLock lock(g_log_mu);
  std::fprintf(stderr, "[%lld] %s %s\n", static_cast<long long>(ms),
               LevelName(level), msg.c_str());
}

}  // namespace internal_logging

}  // namespace diffindex
