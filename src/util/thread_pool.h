// Fixed-size thread pool used for background LSM work (flush, compaction)
// and for the asynchronous processing service (APS) that drains the AUQ.

#ifndef DIFFINDEX_UTIL_THREAD_POOL_H_
#define DIFFINDEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace diffindex {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  // Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t pending() const;

 private:
  void WorkerLoop();

  const std::string name_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_THREAD_POOL_H_
