// Fixed-size thread pool used for background LSM work (flush, compaction)
// and for the asynchronous processing service (APS) that drains the AUQ.

#ifndef DIFFINDEX_UTIL_THREAD_POOL_H_
#define DIFFINDEX_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until the queue is empty and all workers are idle.
  void Wait() EXCLUDES(mu_);

  // Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  size_t pending() const EXCLUDES(mu_);

 private:
  void WorkerLoop();

  const std::string name_;
  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_THREAD_POOL_H_
