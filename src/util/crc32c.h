// CRC32C (Castagnoli) checksum, software table implementation. Used to
// detect torn or corrupted records in the WAL and SSTable blocks.

#ifndef DIFFINDEX_UTIL_CRC32C_H_
#define DIFFINDEX_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace diffindex::crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Masking as in LevelDB: storing the CRC of a string that itself contains
// CRCs is error-prone, so stored checksums are masked.
constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace diffindex::crc32c

#endif  // DIFFINDEX_UTIL_CRC32C_H_
