// Annotated lock primitives: thin wrappers over the std synchronization
// types carrying Clang Thread Safety Analysis attributes
// (util/thread_annotations.h), in the style of LevelDB's port::Mutex /
// port::CondVar and abseil's Mutex.
//
// All of src/ uses these instead of raw std::mutex & friends (enforced by
// the `raw-mutex` rule of tools/lint/diffindex_lint.py) so that the clang
// -Wthread-safety build can see every acquisition:
//
//   Mutex mu_;
//   int depth_ GUARDED_BY(mu_);
//
//   void Add() {
//     MutexLock lock(mu_);
//     depth_++;            // OK: analysis sees the lock
//   }
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex; Wait() is annotated REQUIRES(mu) — the analysis treats the
// lock as held across the wait, which matches the caller's view (the
// temporary release inside wait() is invisible to the invariants the
// caller re-checks through the predicate).

#ifndef DIFFINDEX_UTIL_MUTEX_H_
#define DIFFINDEX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace diffindex {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII exclusive lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader/writer lock (wraps std::shared_mutex). Writers use Lock/Unlock
// (or WriterMutexLock), readers LockShared/UnlockShared (or
// ReaderMutexLock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() {
    if (owned_) mu_.UnlockShared();
  }

  // Early release (absl::ReleasableMutexLock-style), for paths that must
  // drop the gate before slow follow-up work. Call at most once.
  void Release() RELEASE() {
    owned_ = false;
    mu_.UnlockShared();
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
  bool owned_ = true;
};

// Condition variable for Mutex. The caller holds `mu` (usually via
// MutexLock); Wait atomically releases it for the duration of the block
// and reacquires before returning, exactly like
// std::condition_variable::wait on a unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scoped lock
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  // Returns pred()'s value at wake-up (false = timed out with the
  // predicate still unsatisfied).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_MUTEX_H_
