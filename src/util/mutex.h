// Annotated lock primitives: thin wrappers over the std synchronization
// types carrying Clang Thread Safety Analysis attributes
// (util/thread_annotations.h), in the style of LevelDB's port::Mutex /
// port::CondVar and abseil's Mutex.
//
// All of src/ uses these instead of raw std::mutex & friends (enforced by
// the `raw-mutex` rule of tools/lint/diffindex_lint.py) so that the clang
// -Wthread-safety build can see every acquisition:
//
//   Mutex mu_;
//   int depth_ GUARDED_BY(mu_);
//
//   void Add() {
//     MutexLock lock(mu_);
//     depth_++;            // OK: analysis sees the lock
//   }
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex; Wait() is annotated REQUIRES(mu) — the analysis treats the
// lock as held across the wait, which matches the caller's view (the
// temporary release inside wait() is invisible to the invariants the
// caller re-checks through the predicate).
//
// Two further checkers hook in here (both zero-cost when off):
//
//   * Lock-order validation (util/lock_order.h): a Mutex/SharedMutex
//     constructed with a LockRank participates in the declared global
//     acquisition order; every ranked acquisition is checked against the
//     thread's held-lock stack in debug/TSan/DIFFINDEX_CHECK builds.
//   * The concurrency model checker (src/check/, DIFFINDEX_CHECK=ON):
//     a thread registered with the active cooperative Scheduler never
//     blocks the OS thread — a contended Lock or a CondVar wait parks
//     cooperatively and hands the scheduling token over, so the checker
//     fully controls the interleaving.

#ifndef DIFFINDEX_UTIL_MUTEX_H_
#define DIFFINDEX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_order.h"
#include "util/thread_annotations.h"

#ifdef DIFFINDEX_CHECK
#include "check/scheduler.h"
#endif

namespace diffindex {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // A ranked mutex participates in lock-order validation; `name` shows
  // up in violation reports (use the member's declared name).
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      CoopLock(s);
      lock_order::OnAcquire(rank_, this, /*shared=*/false, name_);
      return;
    }
#endif
    mu_.lock();
    lock_order::OnAcquire(rank_, this, /*shared=*/false, name_);
  }

  void Unlock() RELEASE() {
    lock_order::OnRelease(rank_, this);
    mu_.unlock();
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      s->OnMutexRelease(this);
    }
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (mu_.try_lock()) {
      lock_order::OnAcquire(rank_, this, /*shared=*/false, name_);
      return true;
    }
    return false;
  }

 private:
  friend class CondVar;

#ifdef DIFFINDEX_CHECK
  // Cooperative acquire: never blocks the OS thread while holding the
  // scheduling token (the lock holder may itself be parked, so a real
  // block would hang the whole run). Falls back to a real block if the
  // scheduler releases mid-run.
  void CoopLock(check::Scheduler* s) {
    for (;;) {
      if (mu_.try_lock()) return;
      if (!s->BlockOnMutex(this)) {
        mu_.lock();
        return;
      }
    }
  }
#endif

  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "mutex";
};

// RAII exclusive lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader/writer lock (wraps std::shared_mutex). Writers use Lock/Unlock
// (or WriterMutexLock), readers LockShared/UnlockShared (or
// ReaderMutexLock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      for (;;) {
        if (mu_.try_lock()) break;
        if (!s->BlockOnMutex(this)) {
          mu_.lock();
          break;
        }
      }
      lock_order::OnAcquire(rank_, this, /*shared=*/false, name_);
      return;
    }
#endif
    mu_.lock();
    lock_order::OnAcquire(rank_, this, /*shared=*/false, name_);
  }

  void Unlock() RELEASE() {
    lock_order::OnRelease(rank_, this);
    mu_.unlock();
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      s->OnMutexRelease(this);
    }
#endif
  }

  void LockShared() ACQUIRE_SHARED() {
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      for (;;) {
        if (mu_.try_lock_shared()) break;
        if (!s->BlockOnMutex(this)) {
          mu_.lock_shared();
          break;
        }
      }
      lock_order::OnAcquire(rank_, this, /*shared=*/true, name_);
      return;
    }
#endif
    mu_.lock_shared();
    lock_order::OnAcquire(rank_, this, /*shared=*/true, name_);
  }

  void UnlockShared() RELEASE_SHARED() {
    lock_order::OnRelease(rank_, this);
    mu_.unlock_shared();
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      s->OnMutexRelease(this);
    }
#endif
  }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "shared_mutex";
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() {
    if (owned_) mu_.UnlockShared();
  }

  // Early release (absl::ReleasableMutexLock-style), for paths that must
  // drop the gate before slow follow-up work. Call at most once.
  void Release() RELEASE() {
    owned_ = false;
    mu_.UnlockShared();
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
  bool owned_ = true;
};

// Condition variable for Mutex. The caller holds `mu` (usually via
// MutexLock); Wait atomically releases it for the duration of the block
// and reacquires before returning, exactly like
// std::condition_variable::wait on a unique_lock.
//
// Under the model checker the wait is cooperative: the waiter releases
// `mu` (it still holds the scheduling token, so no wakeup can slip in
// between), parks with the Scheduler, and is made runnable again by
// Signal/SignalAll — which wake *all* cooperative waiters, a legal
// over-approximation under spurious-wakeup semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      mu.Unlock();
      s->BlockOnCv(this, /*timed=*/false);
      mu.Lock();
      // A release-mode fall-through is a spurious wakeup; callers loop.
      return;
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scoped lock
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
#ifdef DIFFINDEX_CHECK
    while (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      if (pred()) return;
      mu.Unlock();
      const bool controlled = s->BlockOnCv(this, /*timed=*/false);
      mu.Lock();
      if (!controlled) break;  // released mid-wait: real wait below
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  // Returns pred()'s value at wake-up (false = timed out with the
  // predicate still unsatisfied).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      // Controlled runs have no real clock. A timed waiter parks until
      // either a signal arrives or the run quiesces — quiescence "fires
      // the timeout" (it is the only event left). Either way one wake
      // ends the wait, as if the timeout elapsed.
      if (pred()) return true;
      mu.Unlock();
      const bool controlled = s->BlockOnCv(this, /*timed=*/true);
      mu.Lock();
      if (controlled) return pred();
      // Released mid-wait: fall through to the real timed wait.
    }
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void Signal() {
    cv_.notify_one();
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      s->OnCvNotify(this);
    }
#endif
  }

  void SignalAll() {
    cv_.notify_all();
#ifdef DIFFINDEX_CHECK
    if (check::Scheduler* s = check::Scheduler::CurrentIfControlled()) {
      s->OnCvNotify(this);
    }
#endif
  }

 private:
  std::condition_variable cv_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_MUTEX_H_
