#include "util/cache.h"

namespace diffindex {

LruCache::LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

void LruCache::Insert(const std::string& key,
                      std::shared_ptr<const std::string> value,
                      size_t charge) {
  MutexLock lock(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    usage_ -= it->second->charge;
    lru_.erase(it->second);
    table_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(value), charge});
  table_[key] = lru_.begin();
  usage_ += charge;
  EvictIfNeededLocked();
}

std::shared_ptr<const std::string> LruCache::Lookup(const std::string& key) {
  MutexLock lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Move to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Erase(const std::string& key) {
  MutexLock lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  usage_ -= it->second->charge;
  lru_.erase(it->second);
  table_.erase(it);
}

void LruCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  table_.clear();
  usage_ = 0;
}

size_t LruCache::usage() const {
  MutexLock lock(mu_);
  return usage_;
}

void LruCache::EvictIfNeededLocked() {
  while (usage_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    usage_ -= victim.charge;
    table_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace diffindex
