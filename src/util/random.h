// A small, fast pseudo-random generator (xorshift128+) with convenience
// helpers. Deterministic given a seed, which the tests rely on.

#ifndef DIFFINDEX_UTIL_RANDOM_H_
#define DIFFINDEX_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace diffindex {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed over both words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  std::string RandomBytes(size_t n) {
    std::string out(n, '\0');
    for (size_t i = 0; i < n; i++) {
      out[i] = static_cast<char>('a' + Uniform(26));
    }
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_RANDOM_H_
