// Thread-safe latency histogram with exponential buckets, reporting
// average / percentiles / min / max. Used by the benchmark harness to
// produce the latency-vs-throughput curves of Figures 7-11.

#ifndef DIFFINDEX_UTIL_HISTOGRAM_H_
#define DIFFINDEX_UTIL_HISTOGRAM_H_

#include <atomic>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace diffindex {

class Histogram {
 public:
  Histogram() { Clear(); }

  void Clear();
  void Add(uint64_t value_micros);
  void Merge(const Histogram& other);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Average() const;
  uint64_t Min() const;
  uint64_t Max() const;
  // p in (0, 100], e.g. 50.0, 95.0, 99.0. Linearly interpolates within the
  // bucket containing the percentile, so the estimate is off by at most
  // one bucket width (~30% of the value, the geometric growth factor);
  // without interpolation the result would be a step function jumping
  // between bucket upper bounds. Clamped to [Min(), Max()].
  uint64_t Percentile(double p) const;

  std::string ToString() const;

  // Bucket i covers [BucketLower(i), BucketLower(i+1)). Buckets grow
  // geometrically (~x1.3) from 1us to ~30 minutes; 128 buckets suffice.
  static constexpr int kNumBuckets = 132;
  static const std::array<uint64_t, kNumBuckets + 1>& BucketBounds();

  // Copies the per-bucket counts (size kNumBuckets), for snapshot/delta
  // consumers (obs::MetricsRegistry) that compute percentiles offline.
  void GetBucketCounts(std::vector<uint64_t>* counts) const;

 private:
  static int BucketFor(uint64_t value);

  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
};

// Percentile over externally-held bucket counts (parallel to
// Histogram::BucketBounds), with the same within-bucket linear
// interpolation as Histogram::Percentile. Shared with snapshot/delta
// consumers so live and snapshotted percentiles agree exactly.
// `counts` may be shorter than kNumBuckets (missing tail = zeros).
uint64_t PercentileFromBuckets(const std::vector<uint64_t>& counts,
                               uint64_t total, uint64_t min_value,
                               uint64_t max_value, double p);

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_HISTOGRAM_H_
