// Sharded LRU cache, used as the SSTable block cache. Entries are
// reference-counted so a block stays valid while a reader holds a handle
// even if it is evicted concurrently.

#ifndef DIFFINDEX_UTIL_CACHE_H_
#define DIFFINDEX_UTIL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes);

  // Inserts (copying `value`'s ownership into the cache). charge is the
  // approximate memory footprint. Replaces an existing entry for key.
  void Insert(const std::string& key, std::shared_ptr<const std::string> value,
              size_t charge);

  // Returns nullptr on miss.
  std::shared_ptr<const std::string> Lookup(const std::string& key);

  void Erase(const std::string& key);

  // Drops every entry (capacity and hit/miss counters are untouched).
  void Clear();

  size_t usage() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
    size_t charge;
  };
  using LruList = std::list<Entry>;

  void EvictIfNeededLocked() REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  LruList lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, LruList::iterator> table_ GUARDED_BY(mu_);
  size_t usage_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_CACHE_H_
