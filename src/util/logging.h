// Minimal leveled logger. Off by default at DEBUG; the cluster and
// recovery paths log at INFO/WARN so failure-injection tests can be traced.

#ifndef DIFFINDEX_UTIL_LOGGING_H_
#define DIFFINDEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace diffindex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {
void LogLine(LogLevel level, const std::string& msg);
}  // namespace internal_logging

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      internal_logging::LogLine(level_, stream_.str());
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define DIFFINDEX_LOG_DEBUG \
  ::diffindex::LogMessage(::diffindex::LogLevel::kDebug)
#define DIFFINDEX_LOG_INFO ::diffindex::LogMessage(::diffindex::LogLevel::kInfo)
#define DIFFINDEX_LOG_WARN ::diffindex::LogMessage(::diffindex::LogLevel::kWarn)
#define DIFFINDEX_LOG_ERROR \
  ::diffindex::LogMessage(::diffindex::LogLevel::kError)

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_LOGGING_H_
