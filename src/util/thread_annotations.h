// Clang Thread Safety Analysis annotations (-Wthread-safety), in the
// style of abseil's thread_annotations.h. Under compilers without the
// attributes (GCC) every macro expands to nothing, so the annotations are
// documentation there and a hard gate under the clang CI job, which
// builds with -Wthread-safety -Werror.
//
// Usage (see util/mutex.h for the annotated lock types):
//
//   class Queue {
//    public:
//     void Push(Task t) EXCLUDES(mu_);
//    private:
//     void DrainLocked() REQUIRES(mu_);
//     Mutex mu_;
//     std::deque<Task> tasks_ GUARDED_BY(mu_);
//   };
//
// The lint rule `raw-mutex` (tools/lint/diffindex_lint.py) keeps all of
// src/ on the annotated wrappers so the analysis sees every lock.

#ifndef DIFFINDEX_UTIL_THREAD_ANNOTATIONS_H_
#define DIFFINDEX_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// On a data member: may only be read/written while holding `x`.
#define GUARDED_BY(x) DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On a pointer/smart-pointer member: the pointed-to data is guarded by
// `x` (the pointer itself may be accessed freely).
#define PT_GUARDED_BY(x) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On a function: the caller must hold the listed capabilities
// (exclusively / shared) for the duration of the call.
#define REQUIRES(...) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...)                 \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(     \
      requires_shared_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed capabilities (the
// function acquires them itself; calling with them held would deadlock).
#define EXCLUDES(...) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On a function: acquires / releases the listed capabilities.
#define ACQUIRE(...) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...)                  \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(     \
      acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...)                  \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(     \
      release_shared_capability(__VA_ARGS__))

// On a try-lock function: acquires the capability iff the return value
// equals `b`.
#define TRY_ACQUIRE(...) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// On a function returning a reference to a capability (lock accessors
// like Region::write_mu()).
#define RETURN_CAPABILITY(x) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// On a class: instances are a capability (a lock type).
#define CAPABILITY(x) DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On a class: RAII object that acquires in the constructor and releases
// in the destructor.
#define SCOPED_CAPABILITY DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On a function: asserts the capability is held (runtime-checked
// acquire from the analysis's point of view).
#define ASSERT_CAPABILITY(x) \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Escape hatch: the function intentionally breaks the rules (e.g. a
// destructor that knows it is the only thread left). Every use needs a
// comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  DIFFINDEX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// On a lock member: declares the global acquisition order. A lock
// annotated ACQUIRED_BEFORE(m) must always be taken before `m` when both
// are held; ACQUIRED_AFTER is the mirror image. These deliberately expand
// to NOTHING even under clang: the upstream acquired_before/after
// attributes require the argument to name-resolve in situ, which rules
// out the cross-class references we need (e.g. a Region lock ordered
// against a RegionServer lock). Instead the annotations are consumed
// textually by the `lock-order` rule in tools/lint/diffindex_lint.py,
// which builds the acquisition graph and fails CI on cycles, and they are
// mirrored at runtime by the LockRank checker in util/lock_order.h.
// Arguments are free-form lock names (canonical form: trailing `_`,
// `->`/`()`/`.` stripped by the linter — `write_mu()`, `write_mu_` and
// `write_mu` all name the same lock).
#define ACQUIRED_BEFORE(...)
#define ACQUIRED_AFTER(...)

#endif  // DIFFINDEX_UTIL_THREAD_ANNOTATIONS_H_
