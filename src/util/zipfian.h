// Zipfian and scrambled-zipfian key choosers, following the YCSB
// implementation (Gray et al.'s rejection-free method). Used by the
// workload generator to produce skewed access patterns.

#ifndef DIFFINDEX_UTIL_ZIPFIAN_H_
#define DIFFINDEX_UTIL_ZIPFIAN_H_

#include <cstdint>

#include "util/random.h"

namespace diffindex {

class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  // Items are drawn from [0, num_items). theta in (0, 1): higher is more
  // skewed.
  ZipfianGenerator(uint64_t num_items, double theta, uint64_t seed);
  ZipfianGenerator(uint64_t num_items, uint64_t seed)
      : ZipfianGenerator(num_items, kDefaultTheta, seed) {}

  uint64_t Next();

  uint64_t num_items() const { return num_items_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t num_items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

// Zipfian with the popular items scattered across the keyspace rather than
// clustered at 0 (YCSB "scrambled zipfian").
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_items, uint64_t seed)
      : num_items_(num_items), zipf_(num_items, seed) {}

  uint64_t Next();

 private:
  static uint64_t FnvHash64(uint64_t v);

  uint64_t num_items_;
  ZipfianGenerator zipf_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_ZIPFIAN_H_
