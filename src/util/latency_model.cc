#include "util/latency_model.h"

#include <chrono>
#include <thread>

namespace diffindex {

namespace {
// Cost accrued by the current thread, not yet slept off. One accumulator
// serves all models: a thread drives one request at a time, and Settle()
// drains whatever that request accrued.
thread_local uint64_t t_pending_micros = 0;
}  // namespace

void LatencyModel::Accrue(uint64_t micros) const {
  const auto scaled =
      static_cast<uint64_t>(static_cast<double>(micros) * params_.scale);
  if (scaled == 0) return;
  t_pending_micros += scaled;
  burned_.fetch_add(scaled, std::memory_order_relaxed);
}

void LatencyModel::Settle() const {
  if (t_pending_micros == 0) return;
  const uint64_t pending = t_pending_micros;
  t_pending_micros = 0;
  std::this_thread::sleep_for(std::chrono::microseconds(pending));
}

}  // namespace diffindex
