#include "util/timestamp_oracle.h"

#include <chrono>

namespace diffindex {

Timestamp TimestampOracle::NowMicros() {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Timestamp TimestampOracle::Next() {
  const Timestamp now = NowMicros();
  Timestamp prev = last_.load(std::memory_order_relaxed);
  for (;;) {
    const Timestamp candidate = now > prev ? now : prev + 1;
    if (last_.compare_exchange_weak(prev, candidate,
                                    std::memory_order_relaxed)) {
      return candidate;
    }
    // prev reloaded by compare_exchange_weak; retry.
  }
}

}  // namespace diffindex
