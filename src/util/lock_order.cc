#include "util/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diffindex {
namespace lock_order {
namespace {

std::atomic<ViolationHandler> g_handler{nullptr};

void DefaultHandler(const char* report) {
  std::fprintf(stderr, "%s", report);
  std::abort();
}

}  // namespace

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  return g_handler.exchange(handler);
}

#ifdef DIFFINDEX_LOCK_ORDER_CHECKS

namespace {

struct HeldLock {
  LockRank rank;
  const void* addr;
  bool shared;
  const char* name;
};

// Deliberately a fixed-size stack: the validator must not allocate (it
// runs inside lock acquisition, including under sanitizers) and real
// nesting depth in this codebase is ≤ 5.
constexpr int kMaxHeld = 16;

struct ThreadLockState {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

thread_local ThreadLockState tls_locks;

void ReportViolation(const HeldLock& prior, LockRank rank, bool shared,
                     const char* name) {
  char report[512];
  std::snprintf(report, sizeof(report),
                "lock-order violation: acquiring %s (rank %d%s) while "
                "holding %s (rank %d%s); the declared global order "
                "(ACQUIRED_BEFORE annotations, DESIGN.md §12) requires "
                "strictly increasing ranks\n",
                name, static_cast<int>(rank), shared ? ", shared" : "",
                prior.name, static_cast<int>(prior.rank),
                prior.shared ? ", shared" : "");
  ViolationHandler handler = g_handler.load();
  (handler ? handler : DefaultHandler)(report);
}

}  // namespace

void OnAcquire(LockRank rank, const void* addr, bool shared,
               const char* name) {
  if (rank == LockRank::kUnranked) return;
  ThreadLockState& st = tls_locks;
  for (int i = 0; i < st.depth; ++i) {
    const HeldLock& prior = st.held[i];
    if (static_cast<int>(prior.rank) < static_cast<int>(rank)) continue;
    // Waived edge: same-rank shared acquisitions of *different*
    // instances of a shared-only capability (the cross-region flush-gate
    // case) cannot deadlock against each other.
    if (prior.rank == rank && prior.shared && shared && prior.addr != addr &&
        rank == LockRank::kFlushGate) {
      continue;
    }
    ReportViolation(prior, rank, shared, name);
    return;  // handler may return (tests); record nothing further
  }
  if (st.depth < kMaxHeld) {
    st.held[st.depth++] = HeldLock{rank, addr, shared, name};
  }
}

void OnRelease(LockRank rank, const void* addr) {
  if (rank == LockRank::kUnranked) return;
  ThreadLockState& st = tls_locks;
  // Release order need not be LIFO (ReaderMutexLock::Release); scan from
  // the top for the matching entry and compact.
  for (int i = st.depth - 1; i >= 0; --i) {
    if (st.held[i].addr == addr) {
      for (int j = i; j + 1 < st.depth; ++j) st.held[j] = st.held[j + 1];
      --st.depth;
      return;
    }
  }
}

#endif  // DIFFINDEX_LOCK_ORDER_CHECKS

}  // namespace lock_order
}  // namespace diffindex
