#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace diffindex {

const std::array<uint64_t, Histogram::kNumBuckets + 1>&
Histogram::BucketBounds() {
  static const auto kBounds = [] {
    std::array<uint64_t, kNumBuckets + 1> b{};
    b[0] = 0;
    double v = 1.0;
    for (int i = 1; i <= kNumBuckets; i++) {
      b[i] = static_cast<uint64_t>(v);
      // Ensure strictly increasing bounds even while v rounds to the same
      // integer at the low end.
      if (b[i] <= b[i - 1]) b[i] = b[i - 1] + 1;
      v *= 1.3;
    }
    return b;
  }();
  return kBounds;
}

int Histogram::BucketFor(uint64_t value) {
  const auto& bounds = BucketBounds();
  // upper_bound over bounds[1..kNumBuckets]; bucket i covers
  // [bounds[i], bounds[i+1]).
  auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), value);
  int idx = static_cast<int>(it - bounds.begin()) - 1;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

void Histogram::Clear() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Add(uint64_t value_micros) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_micros, std::memory_order_relaxed);
  uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (value_micros < cur_min &&
         !min_.compare_exchange_weak(cur_min, value_micros,
                                     std::memory_order_relaxed)) {
  }
  uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (value_micros > cur_max &&
         !max_.compare_exchange_weak(cur_max, value_micros,
                                     std::memory_order_relaxed)) {
  }
  buckets_[BucketFor(value_micros)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (other_min < cur_min &&
         !min_.compare_exchange_weak(cur_min, other_min,
                                     std::memory_order_relaxed)) {
  }
  uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (other_max > cur_max &&
         !max_.compare_exchange_weak(cur_max, other_max,
                                     std::memory_order_relaxed)) {
  }
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

double Histogram::Average() const {
  uint64_t c = count_.load(std::memory_order_relaxed);
  if (c == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(c);
}

uint64_t Histogram::Min() const {
  uint64_t c = count_.load(std::memory_order_relaxed);
  return c == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

void Histogram::GetBucketCounts(std::vector<uint64_t>* counts) const {
  counts->resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; i++) {
    (*counts)[i] = buckets_[i].load(std::memory_order_relaxed);
  }
}

uint64_t PercentileFromBuckets(const std::vector<uint64_t>& counts,
                               uint64_t total, uint64_t min_value,
                               uint64_t max_value, double p) {
  if (total == 0) return 0;
  const double threshold = p / 100.0 * static_cast<double>(total);
  const auto& bounds = Histogram::BucketBounds();
  double cumulative = 0;
  const int n = static_cast<int>(
      std::min<size_t>(counts.size(), Histogram::kNumBuckets));
  for (int i = 0; i < n; i++) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= threshold && in_bucket > 0) {
      // Interpolate within [bounds[i], bounds[i+1]) assuming a uniform
      // spread of the bucket's samples.
      const double fraction = (threshold - cumulative) / in_bucket;
      const double lo = static_cast<double>(bounds[i]);
      const double hi = static_cast<double>(bounds[i + 1]);
      const uint64_t value =
          static_cast<uint64_t>(lo + fraction * (hi - lo) + 0.5);
      // Clamp into the observed range so a sparse bucket cannot report a
      // percentile outside [min, max].
      return std::max(min_value, std::min(value, max_value));
    }
    cumulative += in_bucket;
  }
  return max_value;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  std::vector<uint64_t> counts;
  GetBucketCounts(&counts);
  return PercentileFromBuckets(counts, total, Min(), Max(), p);
}

std::string Histogram::ToString() const {
  std::ostringstream oss;
  oss << "count=" << Count() << " avg=" << Average() << "us"
      << " min=" << Min() << "us p50=" << Percentile(50)
      << "us p95=" << Percentile(95) << "us p99=" << Percentile(99)
      << "us max=" << Max() << "us";
  return oss.str();
}

}  // namespace diffindex
