// Simulated hardware cost model.
//
// The paper's experiments ran on a physical 10-machine cluster where reads
// were disk-bound and every index maintenance step paid a network RTT. We
// run the whole cluster in one process, so those costs are injected here.
// Relative magnitudes follow the paper's premise (an LSM read is many
// times a write; an RPC dominates a memory op), which is what reproduces
// the *shape* of Figures 7-11. All knobs are scaled by `scale`; 0 disables
// injection entirely (the test default).
//
// Mechanics: each simulated device operation *accrues* its cost into a
// thread-local pending counter; the cost is materialized as one sleep at
// an RPC boundary (Fabric::Call calls Settle()). One sleep per RPC keeps
// the OS-timer overshoot (tens of microseconds per sleep on this class of
// machine) from swamping the modeled costs, while still charging every
// operation on the thread that issued it.

#ifndef DIFFINDEX_UTIL_LATENCY_MODEL_H_
#define DIFFINDEX_UTIL_LATENCY_MODEL_H_

#include <atomic>
#include <cstdint>

namespace diffindex {

struct LatencyParams {
  // One-way network hop between client<->server or server<->server.
  uint64_t network_hop_micros = 40;
  // Appending one record to the write-ahead log (sequential I/O).
  uint64_t wal_append_micros = 15;
  // Reading one block from a disk store on a block-cache miss (random I/O).
  uint64_t disk_read_micros = 180;
  // Writing out one block during flush/compaction.
  uint64_t disk_write_block_micros = 30;
  // Multiplier applied to all of the above; 0 disables injection entirely.
  double scale = 1.0;
};

class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(const LatencyParams& params) : params_(params) {}

  void set_params(const LatencyParams& params) { params_ = params; }
  const LatencyParams& params() const { return params_; }

  void NetworkHop() const { Accrue(params_.network_hop_micros); }
  void WalAppend() const { Accrue(params_.wal_append_micros); }
  void DiskRead() const { Accrue(params_.disk_read_micros); }
  void DiskWriteBlock() const { Accrue(params_.disk_write_block_micros); }

  // Sleeps off the calling thread's accrued cost. Called at RPC
  // boundaries; a no-op when nothing is pending.
  void Settle() const;

  // Total simulated-time accrued through this model, for reporting.
  uint64_t burned_micros() const {
    return burned_.load(std::memory_order_relaxed);
  }

 private:
  void Accrue(uint64_t micros) const;

  LatencyParams params_;
  mutable std::atomic<uint64_t> burned_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_LATENCY_MODEL_H_
