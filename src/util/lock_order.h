// Runtime lock-order validator: the dynamic mirror of the textual
// ACQUIRED_BEFORE annotations (util/thread_annotations.h) and the static
// `lock-order` lint rule (tools/lint/diffindex_lint.py).
//
// Every Mutex/SharedMutex can be constructed with a LockRank. Ranked
// locks participate in the global acquisition order; unranked locks
// (kUnranked, the default) are invisible to the checker. On each
// acquisition of a ranked lock the validator asserts that every ranked
// lock already held by the thread has a strictly smaller rank, with one
// explicitly waived exception (see below). Violations abort with a
// report of the held-lock stack — or call a test-installed handler.
//
// The validator is active in debug builds (!NDEBUG), under
// DIFFINDEX_CHECK, and under ThreadSanitizer; in release builds every
// call compiles to nothing.
//
// The declared global order (see cluster/region_server.h and the
// ACQUIRED_BEFORE annotations at each lock's declaration):
//
//   flush_gate (Region)            rank 10
//   write_mu   (Region)            rank 20
//   wal_sync_mu_ (RegionServer)    rank 30
//   wal_mu_      (RegionServer)    rank 40
//   regions_mu_  (RegionServer)    rank 50
//   auq mu_      (AsyncUpdateQueue) rank 60
//   catalog_mu_ / cache mutexes    rank 90 (leaves)
//
// Waived edge: two flush gates (rank kFlushGate) may be held together in
// SHARED mode on different instances — the sync-full observer path reads
// a base row on region A while the triggering put still holds region B's
// gate shared. Shared acquisitions of a shared-only capability cannot
// deadlock against each other, so the validator permits same-rank
// shared+shared on distinct instances and the lint carries the matching
// NOLINT(diffindex-lock-order) waiver.

#ifndef DIFFINDEX_UTIL_LOCK_ORDER_H_
#define DIFFINDEX_UTIL_LOCK_ORDER_H_

#include <cstdint>

namespace diffindex {

#if !defined(NDEBUG) || defined(DIFFINDEX_CHECK) || \
    defined(__SANITIZE_THREAD__)
#define DIFFINDEX_LOCK_ORDER_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DIFFINDEX_LOCK_ORDER_CHECKS 1
#endif
#endif

// Ranks are sparse so future locks can slot between existing ones.
// kUnranked locks are ignored entirely by the validator.
enum class LockRank : int {
  kUnranked = 0,
  kFlushGate = 10,   // Region::flush_gate_
  kWriteMu = 20,     // Region::write_mu_
  kWalSyncMu = 30,   // RegionServer::wal_sync_mu_
  kWalMu = 40,       // RegionServer::wal_mu_
  kRegionsMu = 50,   // RegionServer::regions_mu_
  kAuqMu = 60,       // AsyncUpdateQueue::mu_
  kLeaf = 90,        // catalog_mu_, cache internals: never nest further
};

namespace lock_order {

// Handler invoked on an ordering violation. The default prints the held
// stack to stderr and aborts; lock_order_test installs a recorder so the
// violation can be asserted on instead of killing the process. Returns
// the previous handler.
using ViolationHandler = void (*)(const char* report);
ViolationHandler SetViolationHandler(ViolationHandler handler);

#ifdef DIFFINDEX_LOCK_ORDER_CHECKS

// Called by Mutex/SharedMutex (util/mutex.h) around each ranked
// acquisition/release. `addr` identifies the instance (same-rank
// distinct-instance shared acquisitions are the waived case), `shared`
// is true for reader-side acquisitions of a SharedMutex.
void OnAcquire(LockRank rank, const void* addr, bool shared,
               const char* name);
void OnRelease(LockRank rank, const void* addr);

#else

inline void OnAcquire(LockRank, const void*, bool, const char*) {}
inline void OnRelease(LockRank, const void*) {}

#endif  // DIFFINDEX_LOCK_ORDER_CHECKS

}  // namespace lock_order
}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_LOCK_ORDER_H_
