// Bloom filter used in SSTables so that point reads can skip disk stores
// that cannot contain the key — the same mitigation HBase uses for the
// slow-read half of the LSM read/write asymmetry.

#ifndef DIFFINDEX_UTIL_BLOOM_H_
#define DIFFINDEX_UTIL_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace diffindex {

class BloomFilterPolicy {
 public:
  // bits_per_key around 10 gives ~1% false positive rate.
  explicit BloomFilterPolicy(int bits_per_key);

  // Appends a filter summarizing keys[0..n-1] to *dst.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  // May return true for keys not in the filter (false positive) but never
  // false for keys that are.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

// Double-hashing bloom hash, exposed for tests.
uint32_t BloomHash(const Slice& key);

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_BLOOM_H_
