// Binary encoding primitives: little-endian fixed-width integers, LEB128
// varints, and length-prefixed strings. Used by the WAL record format, the
// SSTable block format, and RPC message serialization.

#ifndef DIFFINDEX_UTIL_CODING_H_
#define DIFFINDEX_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace diffindex {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
// Varint length followed by the raw bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// Each Get* consumes the parsed prefix of `input` on success and returns
// true; on malformed input it returns false and leaves `input` unspecified.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetLengthPrefixedString(Slice* input, std::string* result);

// Internal helpers exposed for SSTable builder use.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);
int VarintLength(uint64_t v);

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_CODING_H_
