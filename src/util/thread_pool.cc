#include "util/thread_pool.h"

namespace diffindex {

ThreadPool::ThreadPool(int num_threads, std::string name)
    : name_(std::move(name)) {
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_,
                    [this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      MutexLock lock(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

}  // namespace diffindex
