// File-system abstraction for the LSM engine. The paper's HBase persists
// WALs and HTables on HDFS; our Env maps each region server to its own
// directory tree on the local filesystem, which preserves the property the
// recovery protocol needs — files survive a (simulated) server crash and
// are readable by the server that takes over the regions.

#ifndef DIFFINDEX_UTIL_ENV_H_
#define DIFFINDEX_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace diffindex {

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to n bytes at offset into scratch; *result points into scratch.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  static Env* Default();  // POSIX implementation; never deleted.

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status RemoveDirRecursively(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_ENV_H_
