// Per-RegionServer timestamp oracle. HBase stamps each put with a
// monotonically non-decreasing millisecond timestamp local to the region
// server (System.currentTimeMillis with a monotonic guard). Diff-Index's
// concurrency control hinges on these semantics: an index entry always
// carries the same timestamp as its base entry, and the old version is
// addressed at ts_new - delta.
//
// We use microsecond resolution so back-to-back puts in the simulation get
// distinct timestamps; kDelta is the paper's delta (1 time unit).

#ifndef DIFFINDEX_UTIL_TIMESTAMP_ORACLE_H_
#define DIFFINDEX_UTIL_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <cstdint>

namespace diffindex {

using Timestamp = uint64_t;

// The "infinitely small time unit" delta of Algorithm 1. The paper uses
// 1ms (HBase's smallest unit); ours is 1 microsecond.
constexpr Timestamp kDelta = 1;

// Reserved value meaning "read the latest version".
constexpr Timestamp kMaxTimestamp = UINT64_MAX;

class TimestampOracle {
 public:
  TimestampOracle() : last_(0) {}

  // Returns a timestamp that is >= wall-clock microseconds and strictly
  // greater than any previously returned timestamp from this oracle.
  Timestamp Next();

  // Wall-clock microseconds since epoch (not monotonic across oracles).
  static Timestamp NowMicros();

 private:
  std::atomic<Timestamp> last_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_TIMESTAMP_ORACLE_H_
