// Slice: a non-owning view of a byte range, with byte-wise comparison
// helpers used by the LSM key encoding. Similar to rocksdb::Slice but we
// build on std::string_view.

#ifndef DIFFINDEX_UTIL_SLICE_H_
#define DIFFINDEX_UTIL_SLICE_H_

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace diffindex {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Slice is a view type and
  // implicit conversion from the owning types is the whole point.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const char* s) : data_(s), size_(strlen(s)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  void clear() {
    data_ = "";
    size_ = 0;
  }

  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  // <0, ==0, >0 for this <, ==, > b (byte-wise, shorter prefix sorts first).
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = (min_len == 0) ? 0 : memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) {
        r = -1;
      } else if (size_ > b.size_) {
        r = +1;
      }
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 ||
            memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.compare(b) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_SLICE_H_
