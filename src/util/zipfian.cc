#include "util/zipfian.h"

#include <cmath>

namespace diffindex {

ZipfianGenerator::ZipfianGenerator(uint64_t num_items, double theta,
                                   uint64_t seed)
    : num_items_(num_items), theta_(theta), rng_(seed) {
  zetan_ = Zeta(num_items_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(num_items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ScrambledZipfianGenerator::FnvHash64(uint64_t v) {
  constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
  constexpr uint64_t kFnvPrime = 1099511628211ull;
  uint64_t hash = kFnvOffset;
  for (int i = 0; i < 8; i++) {
    uint64_t octet = v & 0xff;
    v >>= 8;
    hash ^= octet;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t ScrambledZipfianGenerator::Next() {
  return FnvHash64(zipf_.Next()) % num_items_;
}

}  // namespace diffindex
