#include "util/status.h"

namespace diffindex {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kSessionExpired:
      return "SessionExpired";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kWrongRegion:
      return "WrongRegion";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code());
  if (!message().empty()) {
    result += ": ";
    result += message();
  }
  return result;
}

}  // namespace diffindex
