#include "util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace diffindex {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    // fdatasync keeps the durability promise the WAL makes without paying
    // for metadata sync on every append.
    if (::fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t size)
      : fname_(std::move(fname)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    for (;;) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      result->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    // Create parents as well (mkdir -p semantics).
    std::string partial;
    for (size_t i = 0; i <= dirname.size(); i++) {
      if (i == dirname.size() || dirname[i] == '/') {
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
          return PosixError(partial, errno);
        }
      }
      if (i < dirname.size()) partial.push_back(dirname[i]);
    }
    return Status::OK();
  }

  Status RemoveDirRecursively(const std::string& dirname) override {
    std::vector<std::string> children;
    if (!FileExists(dirname)) return Status::OK();
    Status s = GetChildren(dirname, &children);
    if (!s.ok()) return s;
    for (const auto& child : children) {
      const std::string path = dirname + "/" + child;
      struct stat st;
      if (::lstat(path.c_str(), &st) != 0) return PosixError(path, errno);
      if (S_ISDIR(st.st_mode)) {
        DIFFINDEX_RETURN_NOT_OK(RemoveDirRecursively(path));
      } else {
        DIFFINDEX_RETURN_NOT_OK(RemoveFile(path));
      }
    }
    if (::rmdir(dirname.c_str()) != 0) return PosixError(dirname, errno);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  // Never destroyed: avoids shutdown-order problems per the style guide.
  static Env* env = new PosixEnv();  // NOLINT(diffindex-naked-new)
  return env;
}

}  // namespace diffindex
