// Status: error-reporting type used throughout Diff-Index in place of
// exceptions, in the style of RocksDB/Arrow. A Status is cheap to copy
// when OK (no allocation) and carries a code plus a human-readable
// message otherwise.

#ifndef DIFFINDEX_UTIL_STATUS_H_
#define DIFFINDEX_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace diffindex {

// [[nodiscard]]: a dropped Status in a flush/recovery/AUQ path is a
// latent lost-index-entry bug (exactly what the chaos harness hunts
// dynamically), so discarding one is a compile error
// (-Werror=unused-result). Intentional drops must say so via
// IgnoreError() and a comment.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kBusy = 6,            // transient contention; retry is reasonable
    kUnavailable = 7,     // node down / network partition
    kTimedOut = 8,
    kSessionExpired = 9,  // session-consistency session idle too long
    kAborted = 10,
    kWrongRegion = 11,  // key not hosted here; client must refresh its map
    kResourceExhausted = 12,  // admission control shed the request; retry
                              // with backoff once the server catches up
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, msg);
  }
  static Status SessionExpired(std::string_view msg = "") {
    return Status(Code::kSessionExpired, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status WrongRegion(std::string_view msg = "") {
    return Status(Code::kWrongRegion, msg);
  }
  static Status ResourceExhausted(std::string_view msg = "") {
    return Status(Code::kResourceExhausted, msg);
  }
  // Reconstructs a Status from a wire code (RPC response decoding).
  static Status FromCode(Code code, std::string_view msg) {
    if (code == Code::kOk) return OK();
    return Status(code, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsUnavailable() const { return code() == Code::kUnavailable; }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }
  bool IsSessionExpired() const { return code() == Code::kSessionExpired; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsWrongRegion() const { return code() == Code::kWrongRegion; }
  bool IsResourceExhausted() const {
    return code() == Code::kResourceExhausted;
  }

  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->message;
  }

  // "OK" or e.g. "NotFound: key missing".
  std::string ToString() const;

  // Explicit sink for a Status that is deliberately dropped. Every call
  // site must carry a comment saying why ignoring the error is safe —
  // "best effort", "already failing", "crash path", ... Prefer this over
  // a (void) cast: it is greppable and survives refactors that change
  // the expression's type.
  void IgnoreError() const {}

 private:
  struct Rep {
    Code code;
    std::string message;
  };

  Status(Code code, std::string_view msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::string(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr means OK
};

// Evaluates `expr`; if the resulting Status is not OK, returns it from the
// enclosing function.
#define DIFFINDEX_RETURN_NOT_OK(expr)        \
  do {                                       \
    ::diffindex::Status _s = (expr);         \
    if (!_s.ok()) return _s;                 \
  } while (false)

}  // namespace diffindex

#endif  // DIFFINDEX_UTIL_STATUS_H_
