#include "query/read_repair.h"

#include <utility>

#include "check/yield.h"
#include "core/index_codec.h"
#include "obs/trace.h"

namespace diffindex {

namespace {

// [index.column, extra_columns...] — the columns whose current base
// values recompute the entry's encoded index value.
std::vector<std::string> VerificationColumns(const IndexDescriptor& index) {
  std::vector<std::string> columns;
  columns.reserve(1 + index.extra_columns.size());
  columns.push_back(index.column);
  for (const auto& extra : index.extra_columns) columns.push_back(extra);
  return columns;
}

}  // namespace

Status BatchedRepairHits(Client* client, OpStats* stats,
                         const std::string& base_table,
                         const IndexDescriptor& index,
                         std::vector<IndexHit>* hits) {
  if (hits->empty()) return Status::OK();
  obs::MetricsRegistry* metrics = client->metrics();
  obs::SpanTimer span(metrics, client->traces(), "query.repair");

  const std::vector<std::string> columns = VerificationColumns(index);

  // One flat key list; Client::MultiGet groups it into one RPC per
  // owning server.
  std::vector<MultiGetKey> keys;
  keys.reserve(hits->size() * columns.size());
  for (const auto& hit : *hits) {
    for (const auto& column : columns) {
      keys.push_back(MultiGetKey{hit.base_row, column});
    }
  }
  std::vector<MultiGetEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(
      client->MultiGet(base_table, keys, kMaxTimestamp, &entries));
  if (stats != nullptr) {
    for (size_t i = 0; i < keys.size(); i++) stats->AddBaseRead();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("query.base_reads")->Add(keys.size());
    metrics->GetCounter("query.repair.checked")->Add(hits->size());
    metrics->GetHistogram("query.repair.batch_size")->Add(keys.size());
  }

  std::vector<IndexHit> verified;
  verified.reserve(hits->size());
  std::vector<PutRequest> tombstones;
  size_t cursor = 0;
  for (IndexHit& hit : *hits) {
    std::vector<std::string> components;
    bool missing = false;
    for (const auto& column : columns) {
      const MultiGetEntry& entry = entries[cursor++];
      if (!entry.found) {
        missing = true;
        continue;  // remaining columns were fetched anyway; skip them
      }
      std::string component = entry.value;
      if (column == index.column) {
        Status s = IndexComponentFromCell(index, entry.value, &component);
        if (s.IsNotFound()) {
          missing = true;
          continue;
        }
        DIFFINDEX_RETURN_NOT_OK(s);
      }
      components.push_back(std::move(component));
    }

    std::string current_encoded;
    if (!missing) {
      current_encoded = components.size() == 1
                            ? components[0]
                            : EncodeCompositeIndexValue(components);
    }
    if (!missing && current_encoded == hit.value_encoded) {
      verified.push_back(std::move(hit));
      continue;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("query.repair.deleted")->Add();
    }
    if (stats != nullptr) stats->AddIndexPut();
    PutRequest del;
    del.table = index.index_table;
    del.row = EncodeIndexRow(hit.value_encoded, hit.base_row);
    del.cells.push_back(Cell{"", "", /*is_delete=*/true});
    del.ts = hit.ts;
    tombstones.push_back(std::move(del));
  }

  if (!tombstones.empty()) {
    CHECK_YIELD("query.repair");
    // Best-effort, like the sequential path: a failed delete leaves the
    // entry stale for a later read to repair.
    client->MultiPutBatch(std::move(tombstones)).IgnoreError();
  }
  *hits = std::move(verified);
  return Status::OK();
}

Status SequentialRepairHits(Client* client, OpStats* stats,
                            const std::string& base_table,
                            const IndexDescriptor& index,
                            std::vector<IndexHit>* hits) {
  if (hits->empty()) return Status::OK();
  obs::MetricsRegistry* metrics = client->metrics();
  obs::SpanTimer span(metrics, client->traces(), "query.repair");

  const std::vector<std::string> columns = VerificationColumns(index);
  std::vector<IndexHit> verified;
  verified.reserve(hits->size());
  for (IndexHit& hit : *hits) {
    if (metrics != nullptr) {
      metrics->GetCounter("query.repair.checked")->Add();
    }
    std::vector<std::string> components;
    bool missing = false;
    for (const auto& column : columns) {
      std::string value;
      if (stats != nullptr) stats->AddBaseRead();
      if (metrics != nullptr) metrics->GetCounter("query.base_reads")->Add();
      Status s =
          client->GetCell(base_table, hit.base_row, column, kMaxTimestamp,
                          &value);
      if (s.ok() && column == index.column) {
        std::string component;
        s = IndexComponentFromCell(index, value, &component);
        value = std::move(component);
      }
      if (s.IsNotFound()) {
        missing = true;
        break;
      }
      DIFFINDEX_RETURN_NOT_OK(s);
      components.push_back(std::move(value));
    }

    std::string current_encoded;
    if (!missing) {
      current_encoded = components.size() == 1
                            ? components[0]
                            : EncodeCompositeIndexValue(components);
    }
    if (!missing && current_encoded == hit.value_encoded) {
      verified.push_back(std::move(hit));
      continue;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("query.repair.deleted")->Add();
    }
    if (stats != nullptr) stats->AddIndexPut();
    // Best-effort, like the batched path above: a failed delete leaves
    // the stale entry for a later read to repair.
    client
        ->Put(index.index_table, EncodeIndexRow(hit.value_encoded, hit.base_row),
              {Cell{"", "", /*is_delete=*/true}}, hit.ts)
        .IgnoreError();
  }
  *hits = std::move(verified);
  return Status::OK();
}

}  // namespace diffindex
