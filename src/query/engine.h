// Read-side query engine: paged, resumable index range scans that fan
// out in parallel across the index regions covering the key range
// (scatter-gather), with covered-index projections (query/covered.h) and
// batched read-repair for sync-insert (query/read_repair.h).
//
// The legacy read path (IndexReader::RangeByIndex) walks index regions
// one at a time from a single thread; the engine instead issues one
// kIndexScan leg per overlapping region, merges the legs in region order
// (regions partition the keyspace, so the merge is a concatenation), and
// exposes the result a page at a time behind a resumable cursor.
//
// Per-page retry: a leg that lands on a moved region fails fast with
// WrongRegion (legs are addressed by region id); the engine refreshes
// the layout and retries the whole page — reads are idempotent, so the
// page-granular retry is safe.
//
// Observability: counters query.pages / query.legs / query.covered /
// query.base_reads, span stages query.page and query.repair, and the
// fault seam DIFFINDEX_FAILPOINT("query.merge") between leg gather and
// merge.

#ifndef DIFFINDEX_QUERY_ENGINE_H_
#define DIFFINDEX_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diff_index_client.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace diffindex {

struct ScanSpec {
  std::string table;       // base table
  std::string index_name;  // global index over `table`
  // Encoded-value range [lo, hi); empty = open on that side (use the
  // index_codec Encode*IndexValue helpers for typed columns).
  std::string value_lo_encoded;
  std::string value_hi_encoded;
  // Result columns; empty = all columns of the base row. When covered by
  // the index (query/covered.h) and the scan allows it, rows materialize
  // from the index entries alone — zero base reads.
  std::vector<std::string> projection;
  // Total index entries scanned across all pages; 0 = unlimited. Counted
  // before read-repair drops stale entries, matching
  // IndexReader::RangeByIndex's limit semantics.
  uint32_t limit = 0;
};

struct ScanOptions {
  uint32_t page_entries = 256;  // max index entries per page (min 1)
  // >1: legs of a page run on the engine's thread pool (whose size,
  // ReadEngineOptions::max_parallel_legs, is the actual cap). <=1: legs
  // run inline on the calling thread — required under the model checker,
  // whose scheduler cannot control pool threads.
  int max_parallel = 4;
  bool allow_covered = true;
  // Sync-insert verification: per-server MultiGet batches (true) or the
  // sequential per-hit reference path (false).
  bool batched_repair = true;
  // Non-zero: merge this session's private entries into each page
  // (session consistency, Section 5.2). The merge can add entries beyond
  // page_entries/limit — a server-side limit would make the private-entry
  // merge ambiguous, so limits count scanned entries only.
  SessionId session = 0;
};

struct ScanPage {
  // Verified hits in index order (encoded value, then base row).
  std::vector<IndexHit> hits;
  // Materialized result rows. One per hit for covered pages; base rows
  // that vanished between index scan and fetch are skipped otherwise, so
  // rows.size() <= hits.size().
  std::vector<ScannedRow> rows;
  bool covered = false;  // rows came from the index alone
};

struct ReadEngineOptions {
  int max_parallel_legs = 4;  // scatter-gather thread-pool size
  // Page-level retry on WrongRegion/Unavailable: capped-exponential
  // backoff starting at retry_backoff_ms, doubling to
  // retry_backoff_max_ms, up to max_page_retries attempts.
  int max_page_retries = 8;
  int retry_backoff_ms = 2;
  int retry_backoff_max_ms = 64;
};

class ReadEngine;

// One logical cursor over one index range. Not thread-safe. Resumable:
// persist cursor() after any page and hand it to a fresh scanner's
// SeekTo — the scan continues exactly after the last returned entry,
// across scanner instances and layout changes.
class IndexScanner {
 public:
  // Next page of results; an empty page with exhausted()==true means the
  // range is done. Retries layout/availability errors internally; other
  // errors (including armed query.merge failpoints) surface to the
  // caller, leaving the cursor at the failed page's start so the same
  // page can be retried.
  Status NextPage(ScanPage* page);

  bool exhausted() const { return exhausted_; }

  // Opaque resume token: the index-row key the next page starts from.
  const std::string& cursor() const { return cursor_; }
  // Restarts this scanner at `cursor` (a token from cursor()). Resets
  // exhaustion and the limit accounting.
  void SeekTo(const std::string& cursor);

 private:
  friend class ReadEngine;
  IndexScanner(ReadEngine* engine, const ScanSpec& spec,
               const ScanOptions& options, const IndexDescriptor& index);

  // One scatter-gather round: fans a leg out per index region overlapping
  // [cursor_, end_key_), merges in region order into `out` (at most
  // `budget` entries). truncated=false means the whole remaining range
  // was consumed.
  Status GatherOnce(uint32_t budget, std::vector<RawEntry>* out,
                    bool* truncated);

  ReadEngine* const engine_;
  const ScanSpec spec_;
  const ScanOptions options_;
  const IndexDescriptor index_;
  std::string cursor_;   // next index-row key (inclusive)
  std::string end_key_;  // exclusive; empty = unbounded
  bool exhausted_ = false;
  uint64_t returned_ = 0;  // scanned entries counted against spec_.limit
};

class ReadEngine {
 public:
  explicit ReadEngine(DiffIndexClient* client,
                      const ReadEngineOptions& options = ReadEngineOptions());
  ~ReadEngine();

  ReadEngine(const ReadEngine&) = delete;
  ReadEngine& operator=(const ReadEngine&) = delete;

  // Resolves the index and returns a scanner positioned at the range
  // start. Fails if the index does not exist or is local (local indexes
  // keep their broadcast path — their entries live inside base regions,
  // so region-addressed legs do not apply).
  Status NewScan(const ScanSpec& spec, const ScanOptions& options,
                 std::unique_ptr<IndexScanner>* scanner);

  // Convenience: drives a scan to completion, concatenating every page.
  // hits may be null.
  Status ScanByIndex(const ScanSpec& spec, const ScanOptions& options,
                     std::vector<ScannedRow>* rows,
                     std::vector<IndexHit>* hits = nullptr);

  DiffIndexClient* client() { return client_; }

 private:
  friend class IndexScanner;

  // Lazily created scatter-gather pool: scans with max_parallel <= 1
  // never spawn threads (model-checker determinism).
  ThreadPool* pool() EXCLUDES(pool_mu_);
  void BackoffBeforeRetry(int attempt);

  DiffIndexClient* const client_;
  const ReadEngineOptions options_;

  Mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(pool_mu_);
};

}  // namespace diffindex

#endif  // DIFFINDEX_QUERY_ENGINE_H_
