// Read-repair for sync-insert index scans (Algorithm 2's
// double-check-and-clean), in two flavors:
//
//   SequentialRepairHits — the reference: one GetCell round trip per
//     (hit, column), exactly mirroring IndexReader::RepairHits.
//   BatchedRepairHits — the query engine's path: all verification reads
//     of a page grouped into per-server MultiGet batches (one RPC per
//     base region instead of K round trips), and all stale-entry
//     tombstones shipped as one MultiPutBatch.
//
// Both classify identically: a hit survives iff its base row still
// carries the indexed value the entry advertises; stale entries are
// removed from `hits` and best-effort deleted from the index table at
// the entry's own timestamp (a tombstone there cannot mask any newer
// entry). The only difference is RPC count — proven byte-identical by
// tests/query/read_equivalence_test.cc.

#ifndef DIFFINDEX_QUERY_READ_REPAIR_H_
#define DIFFINDEX_QUERY_READ_REPAIR_H_

#include <string>
#include <vector>

#include "cluster/client.h"
#include "core/index_read.h"
#include "core/op_stats.h"

namespace diffindex {

// Per-server-batched double-check of `hits` against the base table.
// Exports query.repair.checked / query.repair.deleted counters and the
// query.repair.batch_size histogram; every verification read counts
// toward query.base_reads. stats may be null.
Status BatchedRepairHits(Client* client, OpStats* stats,
                         const std::string& base_table,
                         const IndexDescriptor& index,
                         std::vector<IndexHit>* hits);

// Unbatched reference with the same metrics: one GetCell per (hit,
// column), early-out on the first missing column, one Put per stale
// entry — the RPC profile of IndexReader::RepairHits.
Status SequentialRepairHits(Client* client, OpStats* stats,
                            const std::string& base_table,
                            const IndexDescriptor& index,
                            std::vector<IndexHit>* hits);

}  // namespace diffindex

#endif  // DIFFINDEX_QUERY_READ_REPAIR_H_
