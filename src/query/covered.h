// Covered-index projections: when a query's requested columns are all
// stored inside the index entries themselves (the indexed column plus any
// composite components), the result rows can be materialized straight
// from the index scan with zero base-table reads — the classic covering-
// index optimization catalogued for LSM secondary indexes by Luo & Carey
// (arXiv 1808.08896, §5).
//
// Cells materialized this way carry the *index entry's* timestamp, which
// equals the base put's timestamp for every maintenance scheme (entries
// are delivered with the originating put's explicit ts). For composite
// indexes whose component columns were written by different puts, the
// non-leading components report the entry's ts rather than their own
// cell's ts — documented in DESIGN.md §13.

#ifndef DIFFINDEX_QUERY_COVERED_H_
#define DIFFINDEX_QUERY_COVERED_H_

#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "core/index_read.h"

namespace diffindex {

// True when `projection` (non-empty) is a subset of the columns the index
// stores: {index.column} ∪ index.extra_columns. Dense-field indexes never
// qualify — their entries hold one extracted field, not the column value.
bool CoveredProjectionEligible(const IndexDescriptor& index,
                               const std::vector<std::string>& projection);

// Materializes one result row from an index hit alone. Produces the
// requested `projection` columns (which must satisfy
// CoveredProjectionEligible), sorted by column name — the same order a
// base-row fetch followed by projection yields. False when the hit's
// encoded value does not decode against the index's component list.
bool MaterializeCoveredRow(const IndexDescriptor& index,
                           const std::vector<std::string>& projection,
                           const IndexHit& hit, ScannedRow* row);

}  // namespace diffindex

#endif  // DIFFINDEX_QUERY_COVERED_H_
