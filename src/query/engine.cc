#include "query/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/index_codec.h"
#include "fault/failpoint.h"
#include "obs/trace.h"
#include "query/covered.h"
#include "query/read_repair.h"

namespace diffindex {

namespace {

// Completion latch for one page's scatter-gather legs: Wait() returns
// once every leg has called CountDown(). Cheaper than ThreadPool::Wait(),
// which drains the whole (shared) queue.
class LegLatch {
 public:
  explicit LegLatch(size_t n) : remaining_(n) {}

  void CountDown() {
    MutexLock lock(mu_);
    if (--remaining_ == 0) cv_.SignalAll();
  }

  void Wait() {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) { return remaining_ == 0; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  size_t remaining_ GUARDED_BY(mu_);
};

// Keeps only the cells whose column is in `projection`, preserving cell
// order — the same filter as QueryEngine's projection over fetched rows.
void ProjectCells(const std::vector<std::string>& projection,
                  ScannedRow* row) {
  if (projection.empty()) return;
  std::vector<RowCell> kept;
  kept.reserve(row->cells.size());
  for (auto& cell : row->cells) {
    if (std::find(projection.begin(), projection.end(), cell.column) !=
        projection.end()) {
      kept.push_back(std::move(cell));
    }
  }
  row->cells = std::move(kept);
}

}  // namespace

// ---- IndexScanner ----

IndexScanner::IndexScanner(ReadEngine* engine, const ScanSpec& spec,
                           const ScanOptions& options,
                           const IndexDescriptor& index)
    : engine_(engine), spec_(spec), options_(options), index_(index) {
  cursor_ = IndexRangeStart(spec.value_lo_encoded);
  if (!spec.value_hi_encoded.empty()) {
    end_key_ = IndexRangeEnd(spec.value_hi_encoded);
  }
}

void IndexScanner::SeekTo(const std::string& cursor) {
  cursor_ = cursor;
  exhausted_ = false;
  returned_ = 0;
}

Status IndexScanner::GatherOnce(uint32_t budget, std::vector<RawEntry>* out,
                                bool* truncated) {
  Client* raw = engine_->client_->raw_client();
  obs::MetricsRegistry* metrics = raw->metrics();

  // Regions of the index table overlapping [cursor_, end_key_). Regions
  // partition the keyspace, so an empty overlap means the layout is not
  // loaded yet — report Unavailable to drive the refresh-and-retry loop.
  std::vector<RegionInfoWire> legs;
  for (auto& region : raw->TableRegions(index_.index_table)) {
    if (!region.end_row.empty() && region.end_row <= cursor_) continue;
    if (!end_key_.empty() && region.start_row >= end_key_ &&
        !region.start_row.empty()) {
      continue;
    }
    legs.push_back(std::move(region));
  }
  if (legs.empty()) {
    return Status::Unavailable("no layout for " + index_.index_table);
  }
  if (metrics != nullptr) {
    metrics->GetCounter("query.legs")->Add(legs.size());
  }

  // Every leg asks for the full page budget: leg results that overflow
  // the budget at merge time are discarded (regions underneath a
  // selective range are usually sparse, so the overshoot is small).
  std::vector<IndexScanResponse> responses(legs.size());
  std::vector<Status> statuses(legs.size(), Status::OK());
  const bool inline_legs = options_.max_parallel <= 1 || legs.size() == 1;
  if (inline_legs) {
    for (size_t i = 0; i < legs.size(); i++) {
      statuses[i] = raw->IndexScanRegion(index_.index_table, legs[i], cursor_,
                                         end_key_, kMaxTimestamp, budget,
                                         &responses[i]);
    }
  } else {
    ThreadPool* pool = engine_->pool();
    LegLatch latch(legs.size());
    for (size_t i = 0; i < legs.size(); i++) {
      auto leg = [this, raw, &latch, &legs, &statuses, &responses, budget,
                  i]() {
        statuses[i] = raw->IndexScanRegion(index_.index_table, legs[i],
                                           cursor_, end_key_, kMaxTimestamp,
                                           budget, &responses[i]);
        latch.CountDown();
      };
      if (!pool->Submit(leg)) leg();  // pool shut down: degrade to inline
    }
    latch.Wait();
  }

  DIFFINDEX_FAILPOINT("query.merge");

  // Regions partition the keyspace and legs are in region order, so the
  // ordered merge is a concatenation, trimmed to the page budget.
  out->clear();
  for (size_t i = 0; i < legs.size(); i++) {
    DIFFINDEX_RETURN_NOT_OK(statuses[i]);
    for (auto& entry : responses[i].entries) {
      if (out->size() >= budget) {
        *truncated = true;
        return Status::OK();
      }
      out->push_back(std::move(entry));
    }
    if (responses[i].more) {
      *truncated = true;
      return Status::OK();
    }
  }
  *truncated = false;
  return Status::OK();
}

Status IndexScanner::NextPage(ScanPage* page) {
  page->hits.clear();
  page->rows.clear();
  page->covered = false;
  if (exhausted_) return Status::OK();

  DiffIndexClient* client = engine_->client_;
  Client* raw = client->raw_client();
  obs::MetricsRegistry* metrics = raw->metrics();
  obs::SpanTimer span(metrics, raw->traces(), "query.page");

  uint32_t budget = options_.page_entries == 0 ? 1 : options_.page_entries;
  if (spec_.limit != 0) {
    budget = static_cast<uint32_t>(std::min<uint64_t>(
        budget, static_cast<uint64_t>(spec_.limit) - returned_));
  }

  const std::string page_start = cursor_;
  std::vector<RawEntry> merged;
  bool truncated = false;
  Status gather = Status::OK();
  for (int attempt = 0;; attempt++) {
    gather = GatherOnce(budget, &merged, &truncated);
    if (gather.ok()) break;
    if (!(gather.IsWrongRegion() || gather.IsUnavailable()) ||
        attempt >= engine_->options_.max_page_retries) {
      return gather;
    }
    engine_->BackoffBeforeRetry(attempt + 1);
    // Best effort: even a failed refresh is worth another attempt (the
    // master may come back).
    raw->RefreshLayout().IgnoreError();
  }

  if (metrics != nullptr) metrics->GetCounter("query.pages")->Add();

  returned_ += merged.size();
  if (!merged.empty()) {
    // Index rows contain no 0x00, so key + '\0' restarts strictly after
    // the last returned entry while excluding nothing else.
    cursor_ = merged.back().key + '\0';
  }
  if (!truncated || (spec_.limit != 0 && returned_ >= spec_.limit)) {
    exhausted_ = true;
  }

  std::vector<IndexHit> hits;
  hits.reserve(merged.size());
  for (auto& entry : merged) {
    IndexHit hit;
    if (!DecodeIndexRow(entry.key, &hit.value_encoded, &hit.base_row)) {
      continue;  // foreign key in the index keyspace; skip like ScanIndex
    }
    hit.ts = entry.ts;
    hits.push_back(std::move(hit));
  }

  if (index_.scheme == IndexScheme::kSyncInsert && !hits.empty()) {
    if (options_.batched_repair) {
      DIFFINDEX_RETURN_NOT_OK(BatchedRepairHits(raw, client->stats(),
                                                spec_.table, index_, &hits));
    } else {
      DIFFINDEX_RETURN_NOT_OK(SequentialRepairHits(
          raw, client->stats(), spec_.table, index_, &hits));
    }
  }

  if (options_.session != 0) {
    // Page windows are disjoint and in index order, and MergeHits keeps
    // (value, base_row) order inside the window, so the merged stream
    // stays globally ordered.
    const std::string& window_end = exhausted_ ? end_key_ : cursor_;
    bool degraded = false;
    DIFFINDEX_RETURN_NOT_OK(client->sessions()->MergeHits(
        options_.session, index_.index_table, page_start, window_end, &hits,
        &degraded));
  }

  const bool covered =
      options_.allow_covered && CoveredProjectionEligible(index_, spec_.projection);
  if (covered) {
    if (metrics != nullptr) metrics->GetCounter("query.covered")->Add();
    page->rows.reserve(hits.size());
    for (const auto& hit : hits) {
      ScannedRow row;
      if (!MaterializeCoveredRow(index_, spec_.projection, hit, &row)) {
        return Status::Corruption("undecodable index entry for covered scan");
      }
      page->rows.push_back(std::move(row));
    }
    page->covered = true;
  } else {
    page->rows.reserve(hits.size());
    for (const auto& hit : hits) {
      GetRowResponse resp;
      if (client->stats() != nullptr) client->stats()->AddBaseRead();
      if (metrics != nullptr) metrics->GetCounter("query.base_reads")->Add();
      DIFFINDEX_RETURN_NOT_OK(
          raw->GetRow(spec_.table, hit.base_row, kMaxTimestamp, &resp));
      if (!resp.found) continue;  // row vanished since the index scan
      ScannedRow row;
      row.row = hit.base_row;
      row.cells = std::move(resp.cells);
      ProjectCells(spec_.projection, &row);
      page->rows.push_back(std::move(row));
    }
  }
  page->hits = std::move(hits);
  return Status::OK();
}

// ---- ReadEngine ----

ReadEngine::ReadEngine(DiffIndexClient* client,
                       const ReadEngineOptions& options)
    : client_(client), options_(options) {}

ReadEngine::~ReadEngine() {
  MutexLock lock(pool_mu_);
  if (pool_ != nullptr) pool_->Shutdown();
}

ThreadPool* ReadEngine::pool() {
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        std::max(1, options_.max_parallel_legs), "query");
  }
  return pool_.get();
}

void ReadEngine::BackoffBeforeRetry(int attempt) {
  int64_t ms = options_.retry_backoff_ms;
  for (int i = 1; i < attempt && ms < options_.retry_backoff_max_ms; i++) {
    ms *= 2;
  }
  ms = std::min<int64_t>(ms, options_.retry_backoff_max_ms);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status ReadEngine::NewScan(const ScanSpec& spec, const ScanOptions& options,
                           std::unique_ptr<IndexScanner>* scanner) {
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(
      client_->reader()->FindIndex(spec.table, spec.index_name, &index));
  if (index.is_local) {
    return Status::InvalidArgument(
        "scatter-gather scan requires a global index: " + spec.index_name);
  }
  // make_unique cannot reach the private constructor.
  scanner->reset(new IndexScanner(this, spec, options, index));  // NOLINT(diffindex-naked-new)
  return Status::OK();
}

Status ReadEngine::ScanByIndex(const ScanSpec& spec,
                               const ScanOptions& options,
                               std::vector<ScannedRow>* rows,
                               std::vector<IndexHit>* hits) {
  rows->clear();
  if (hits != nullptr) hits->clear();

  std::unique_ptr<IndexScanner> scanner;
  DIFFINDEX_RETURN_NOT_OK(NewScan(spec, options, &scanner));

  const obs::TraceContext& ambient = obs::CurrentTraceContext();
  obs::ScopedTraceContext scope(
      ambient.active()
          ? ambient.Child()
          : obs::TraceContext::NewRoot(
                "scan_by_index", IndexSchemeName(scanner->index_.scheme)));

  ScanPage page;
  while (!scanner->exhausted()) {
    DIFFINDEX_RETURN_NOT_OK(scanner->NextPage(&page));
    for (auto& row : page.rows) rows->push_back(std::move(row));
    if (hits != nullptr) {
      for (auto& hit : page.hits) hits->push_back(std::move(hit));
    }
  }
  return Status::OK();
}

}  // namespace diffindex
