#include "query/covered.h"

#include <algorithm>

#include "core/index_codec.h"

namespace diffindex {

bool CoveredProjectionEligible(const IndexDescriptor& index,
                               const std::vector<std::string>& projection) {
  if (projection.empty()) return false;
  if (!index.dense_field.empty()) return false;
  for (const auto& column : projection) {
    if (column == index.column) continue;
    if (std::find(index.extra_columns.begin(), index.extra_columns.end(),
                  column) == index.extra_columns.end()) {
      return false;
    }
  }
  return true;
}

bool MaterializeCoveredRow(const IndexDescriptor& index,
                           const std::vector<std::string>& projection,
                           const IndexHit& hit, ScannedRow* row) {
  // Component i of the encoded value is column i of
  // [index.column, extra_columns...]. Single-column indexes store the bare
  // component (no tuple framing).
  std::vector<std::string> components;
  if (index.extra_columns.empty()) {
    components.push_back(hit.value_encoded);
  } else if (!DecodeCompositeIndexValue(hit.value_encoded, &components) ||
             components.size() != index.extra_columns.size() + 1) {
    return false;
  }

  // Distinct projection columns, sorted — the order a base-row fetch
  // (cells sorted by cell key) followed by projection would yield.
  std::vector<std::string> wanted(projection);
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());

  row->row = hit.base_row;
  row->cells.clear();
  for (const auto& column : wanted) {
    size_t slot;
    if (column == index.column) {
      slot = 0;
    } else {
      auto it = std::find(index.extra_columns.begin(),
                          index.extra_columns.end(), column);
      if (it == index.extra_columns.end()) return false;
      slot = 1 + static_cast<size_t>(it - index.extra_columns.begin());
    }
    row->cells.push_back(RowCell{column, components[slot], hit.ts});
  }
  return true;
}

}  // namespace diffindex
