#include "net/message.h"

#include "util/coding.h"

namespace diffindex {

namespace {

void PutString(std::string* out, const std::string& s) {
  PutLengthPrefixedSlice(out, s);
}

bool GetString(Slice* in, std::string* s) {
  return GetLengthPrefixedString(in, s);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPut:
      return "put";
    case MsgType::kGetCell:
      return "get_cell";
    case MsgType::kGetRow:
      return "get_row";
    case MsgType::kScanRows:
      return "scan_rows";
    case MsgType::kRawScan:
      return "raw_scan";
    case MsgType::kRawDelete:
      return "raw_delete";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kFetchLayout:
      return "fetch_layout";
    case MsgType::kFlushRegion:
      return "flush_region";
    case MsgType::kCompactRegion:
      return "compact_region";
    case MsgType::kLocalIndexScan:
      return "local_index_scan";
    case MsgType::kMultiPut:
      return "multi_put";
    case MsgType::kMultiGet:
      return "multi_get";
    case MsgType::kIndexScan:
      return "index_scan";
  }
  return "unknown";
}

std::string EncodeCellKey(const Slice& row, const Slice& column) {
  std::string key;
  key.reserve(row.size() + 1 + column.size());
  key.append(row.data(), row.size());
  key.push_back(kCellSeparator);
  key.append(column.data(), column.size());
  return key;
}

bool DecodeCellKey(const Slice& cell_key, std::string* row,
                   std::string* column) {
  for (size_t i = 0; i < cell_key.size(); i++) {
    if (cell_key[i] == kCellSeparator) {
      row->assign(cell_key.data(), i);
      column->assign(cell_key.data() + i + 1, cell_key.size() - i - 1);
      return true;
    }
  }
  return false;
}

// ---- PutRequest ----

void PutRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, row);
  PutVarint32(out, static_cast<uint32_t>(cells.size()));
  for (const Cell& cell : cells) {
    PutString(out, cell.column);
    PutString(out, cell.value);
    out->push_back(cell.is_delete ? 1 : 0);
  }
  PutFixed64(out, ts);
  out->push_back(return_old_values ? 1 : 0);
}

bool PutRequest::DecodeFrom(Slice* in, PutRequest* req) {
  uint32_t n;
  if (!GetString(in, &req->table) || !GetString(in, &req->row) ||
      !GetVarint32(in, &n)) {
    return false;
  }
  req->cells.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetString(in, &req->cells[i].column) ||
        !GetString(in, &req->cells[i].value) || in->empty()) {
      return false;
    }
    req->cells[i].is_delete = (*in)[0] != 0;
    in->remove_prefix(1);
  }
  if (!GetFixed64(in, &req->ts) || in->empty()) return false;
  req->return_old_values = (*in)[0] != 0;
  in->remove_prefix(1);
  return true;
}

// ---- PutResponse ----

void PutResponse::EncodeTo(std::string* out) const {
  PutFixed64(out, assigned_ts);
  PutVarint32(out, static_cast<uint32_t>(old_values.size()));
  for (const OldCellValue& old : old_values) {
    PutString(out, old.column);
    out->push_back(old.found ? 1 : 0);
    PutString(out, old.value);
    PutFixed64(out, old.ts);
  }
}

bool PutResponse::DecodeFrom(Slice* in, PutResponse* resp) {
  uint32_t n;
  if (!GetFixed64(in, &resp->assigned_ts) || !GetVarint32(in, &n)) {
    return false;
  }
  resp->old_values.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    OldCellValue& old = resp->old_values[i];
    if (!GetString(in, &old.column) || in->empty()) return false;
    old.found = (*in)[0] != 0;
    in->remove_prefix(1);
    if (!GetString(in, &old.value) || !GetFixed64(in, &old.ts)) return false;
  }
  return true;
}

// ---- GetCell ----

void GetCellRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, row);
  PutString(out, column);
  PutFixed64(out, read_ts);
}

bool GetCellRequest::DecodeFrom(Slice* in, GetCellRequest* req) {
  return GetString(in, &req->table) && GetString(in, &req->row) &&
         GetString(in, &req->column) && GetFixed64(in, &req->read_ts);
}

void GetCellResponse::EncodeTo(std::string* out) const {
  out->push_back(found ? 1 : 0);
  PutString(out, value);
  PutFixed64(out, ts);
}

bool GetCellResponse::DecodeFrom(Slice* in, GetCellResponse* resp) {
  if (in->empty()) return false;
  resp->found = (*in)[0] != 0;
  in->remove_prefix(1);
  return GetString(in, &resp->value) && GetFixed64(in, &resp->ts);
}

// ---- GetRow ----

void GetRowRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, row);
  PutFixed64(out, read_ts);
}

bool GetRowRequest::DecodeFrom(Slice* in, GetRowRequest* req) {
  return GetString(in, &req->table) && GetString(in, &req->row) &&
         GetFixed64(in, &req->read_ts);
}

namespace {

void EncodeRowCells(std::string* out, const std::vector<RowCell>& cells) {
  PutVarint32(out, static_cast<uint32_t>(cells.size()));
  for (const RowCell& cell : cells) {
    PutLengthPrefixedSlice(out, cell.column);
    PutLengthPrefixedSlice(out, cell.value);
    PutFixed64(out, cell.ts);
  }
}

bool DecodeRowCells(Slice* in, std::vector<RowCell>* cells) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  cells->resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetLengthPrefixedString(in, &(*cells)[i].column) ||
        !GetLengthPrefixedString(in, &(*cells)[i].value) ||
        !GetFixed64(in, &(*cells)[i].ts)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void GetRowResponse::EncodeTo(std::string* out) const {
  out->push_back(found ? 1 : 0);
  EncodeRowCells(out, cells);
}

bool GetRowResponse::DecodeFrom(Slice* in, GetRowResponse* resp) {
  if (in->empty()) return false;
  resp->found = (*in)[0] != 0;
  in->remove_prefix(1);
  return DecodeRowCells(in, &resp->cells);
}

// ---- ScanRows ----

void ScanRowsRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, start_row);
  PutString(out, end_row);
  PutFixed64(out, read_ts);
  PutVarint32(out, limit_rows);
}

bool ScanRowsRequest::DecodeFrom(Slice* in, ScanRowsRequest* req) {
  return GetString(in, &req->table) && GetString(in, &req->start_row) &&
         GetString(in, &req->end_row) && GetFixed64(in, &req->read_ts) &&
         GetVarint32(in, &req->limit_rows);
}

void ScanRowsResponse::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(rows.size()));
  for (const ScannedRow& row : rows) {
    PutLengthPrefixedSlice(out, row.row);
    EncodeRowCells(out, row.cells);
  }
}

bool ScanRowsResponse::DecodeFrom(Slice* in, ScanRowsResponse* resp) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  resp->rows.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetLengthPrefixedString(in, &resp->rows[i].row) ||
        !DecodeRowCells(in, &resp->rows[i].cells)) {
      return false;
    }
  }
  return true;
}

// ---- RawScan / RawDelete ----

void RawScanRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, start_key);
  PutString(out, end_key);
  PutFixed64(out, read_ts);
  PutVarint32(out, limit);
}

bool RawScanRequest::DecodeFrom(Slice* in, RawScanRequest* req) {
  return GetString(in, &req->table) && GetString(in, &req->start_key) &&
         GetString(in, &req->end_key) && GetFixed64(in, &req->read_ts) &&
         GetVarint32(in, &req->limit);
}

void RawScanResponse::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  for (const RawEntry& entry : entries) {
    PutLengthPrefixedSlice(out, entry.key);
    PutLengthPrefixedSlice(out, entry.value);
    PutFixed64(out, entry.ts);
  }
}

bool RawScanResponse::DecodeFrom(Slice* in, RawScanResponse* resp) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  resp->entries.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetLengthPrefixedString(in, &resp->entries[i].key) ||
        !GetLengthPrefixedString(in, &resp->entries[i].value) ||
        !GetFixed64(in, &resp->entries[i].ts)) {
      return false;
    }
  }
  return true;
}

void RawDeleteRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutString(out, key);
  PutFixed64(out, ts);
}

bool RawDeleteRequest::DecodeFrom(Slice* in, RawDeleteRequest* req) {
  return GetString(in, &req->table) && GetString(in, &req->key) &&
         GetFixed64(in, &req->ts);
}

// ---- Cluster management ----

void HeartbeatRequest::EncodeTo(std::string* out) const {
  PutVarint32(out, server_id);
  PutVarint64(out, auq_depth);
}

bool HeartbeatRequest::DecodeFrom(Slice* in, HeartbeatRequest* req) {
  return GetVarint32(in, &req->server_id) &&
         GetVarint64(in, &req->auq_depth);
}

void RegionInfoWire::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutVarint64(out, region_id);
  PutString(out, start_row);
  PutString(out, end_row);
  PutVarint32(out, server_id);
}

bool RegionInfoWire::DecodeFrom(Slice* in, RegionInfoWire* info) {
  return GetString(in, &info->table) && GetVarint64(in, &info->region_id) &&
         GetString(in, &info->start_row) && GetString(in, &info->end_row) &&
         GetVarint32(in, &info->server_id);
}

void IndexInfoWire::EncodeTo(std::string* out) const {
  PutString(out, name);
  PutString(out, column);
  out->push_back(static_cast<char>(scheme));
  PutString(out, index_table);
  PutVarint32(out, static_cast<uint32_t>(extra_columns.size()));
  for (const auto& c : extra_columns) PutString(out, c);
  PutString(out, dense_field);
  PutString(out, dense_schema);
  out->push_back(is_local ? 1 : 0);
}

bool IndexInfoWire::DecodeFrom(Slice* in, IndexInfoWire* info) {
  if (!GetString(in, &info->name) || !GetString(in, &info->column) ||
      in->empty()) {
    return false;
  }
  info->scheme = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  uint32_t n;
  if (!GetString(in, &info->index_table) || !GetVarint32(in, &n)) {
    return false;
  }
  info->extra_columns.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetString(in, &info->extra_columns[i])) return false;
  }
  if (!GetString(in, &info->dense_field) ||
      !GetString(in, &info->dense_schema) || in->empty()) {
    return false;
  }
  info->is_local = (*in)[0] != 0;
  in->remove_prefix(1);
  return true;
}

void TableInfoWire::EncodeTo(std::string* out) const {
  PutString(out, name);
  out->push_back(is_index_table ? 1 : 0);
  PutVarint32(out, static_cast<uint32_t>(indexes.size()));
  for (const auto& index : indexes) index.EncodeTo(out);
}

bool TableInfoWire::DecodeFrom(Slice* in, TableInfoWire* info) {
  if (!GetString(in, &info->name) || in->empty()) return false;
  info->is_index_table = (*in)[0] != 0;
  in->remove_prefix(1);
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  info->indexes.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!IndexInfoWire::DecodeFrom(in, &info->indexes[i])) return false;
  }
  return true;
}

void FetchLayoutResponse::EncodeTo(std::string* out) const {
  PutVarint64(out, layout_epoch);
  PutVarint32(out, static_cast<uint32_t>(tables.size()));
  for (const auto& table : tables) table.EncodeTo(out);
  PutVarint32(out, static_cast<uint32_t>(regions.size()));
  for (const auto& region : regions) region.EncodeTo(out);
}

bool FetchLayoutResponse::DecodeFrom(Slice* in, FetchLayoutResponse* resp) {
  uint32_t n;
  if (!GetVarint64(in, &resp->layout_epoch) || !GetVarint32(in, &n)) {
    return false;
  }
  resp->tables.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!TableInfoWire::DecodeFrom(in, &resp->tables[i])) return false;
  }
  if (!GetVarint32(in, &n)) return false;
  resp->regions.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!RegionInfoWire::DecodeFrom(in, &resp->regions[i])) return false;
  }
  return true;
}

void RegionAdminRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutVarint64(out, region_id);
}

bool RegionAdminRequest::DecodeFrom(Slice* in, RegionAdminRequest* req) {
  return GetString(in, &req->table) && GetVarint64(in, &req->region_id);
}

void MultiPutRequest::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(puts.size()));
  for (const PutRequest& put : puts) put.EncodeTo(out);
}

bool MultiPutRequest::DecodeFrom(Slice* in, MultiPutRequest* req) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  req->puts.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!PutRequest::DecodeFrom(in, &req->puts[i])) return false;
  }
  return true;
}

void MultiPutResponse::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(assigned_ts.size()));
  for (Timestamp ts : assigned_ts) PutFixed64(out, ts);
}

bool MultiPutResponse::DecodeFrom(Slice* in, MultiPutResponse* resp) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  resp->assigned_ts.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetFixed64(in, &resp->assigned_ts[i])) return false;
  }
  return true;
}

void LocalIndexScanRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutVarint64(out, region_id);
  PutString(out, index_name);
  PutString(out, start_key);
  PutString(out, end_key);
  PutFixed64(out, read_ts);
  PutVarint32(out, limit);
}

bool LocalIndexScanRequest::DecodeFrom(Slice* in,
                                       LocalIndexScanRequest* req) {
  return GetString(in, &req->table) && GetVarint64(in, &req->region_id) &&
         GetString(in, &req->index_name) && GetString(in, &req->start_key) &&
         GetString(in, &req->end_key) && GetFixed64(in, &req->read_ts) &&
         GetVarint32(in, &req->limit);
}

void MultiGetRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutFixed64(out, read_ts);
  PutVarint32(out, static_cast<uint32_t>(keys.size()));
  for (const MultiGetKey& key : keys) {
    PutString(out, key.row);
    PutString(out, key.column);
  }
}

bool MultiGetRequest::DecodeFrom(Slice* in, MultiGetRequest* req) {
  uint32_t n;
  if (!GetString(in, &req->table) || !GetFixed64(in, &req->read_ts) ||
      !GetVarint32(in, &n)) {
    return false;
  }
  req->keys.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetString(in, &req->keys[i].row) ||
        !GetString(in, &req->keys[i].column)) {
      return false;
    }
  }
  return true;
}

void MultiGetResponse::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  for (const MultiGetEntry& entry : entries) {
    out->push_back(entry.found ? 1 : 0);
    PutString(out, entry.value);
    PutFixed64(out, entry.ts);
  }
}

bool MultiGetResponse::DecodeFrom(Slice* in, MultiGetResponse* resp) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  resp->entries.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    MultiGetEntry& entry = resp->entries[i];
    if (in->empty()) return false;
    entry.found = (*in)[0] != 0;
    in->remove_prefix(1);
    if (!GetString(in, &entry.value) || !GetFixed64(in, &entry.ts)) {
      return false;
    }
  }
  return true;
}

void IndexScanRequest::EncodeTo(std::string* out) const {
  PutString(out, table);
  PutVarint64(out, region_id);
  PutString(out, start_key);
  PutString(out, end_key);
  PutFixed64(out, read_ts);
  PutVarint32(out, limit);
}

bool IndexScanRequest::DecodeFrom(Slice* in, IndexScanRequest* req) {
  return GetString(in, &req->table) && GetVarint64(in, &req->region_id) &&
         GetString(in, &req->start_key) && GetString(in, &req->end_key) &&
         GetFixed64(in, &req->read_ts) && GetVarint32(in, &req->limit);
}

void IndexScanResponse::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  for (const RawEntry& entry : entries) {
    PutLengthPrefixedSlice(out, entry.key);
    PutLengthPrefixedSlice(out, entry.value);
    PutFixed64(out, entry.ts);
  }
  out->push_back(more ? 1 : 0);
  PutString(out, resume_key);
}

bool IndexScanResponse::DecodeFrom(Slice* in, IndexScanResponse* resp) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  resp->entries.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetLengthPrefixedString(in, &resp->entries[i].key) ||
        !GetLengthPrefixedString(in, &resp->entries[i].value) ||
        !GetFixed64(in, &resp->entries[i].ts)) {
      return false;
    }
  }
  if (in->empty()) return false;
  resp->more = (*in)[0] != 0;
  in->remove_prefix(1);
  return GetString(in, &resp->resume_key);
}

}  // namespace diffindex
