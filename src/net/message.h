// Wire messages of the simulated cluster. Every RPC body is fully
// serialized/deserialized (the same bytes a real network would carry), so
// the data path exercises real codec work even though transport is
// in-process.
//
// Data model carried by these messages (HBase-flavored, Section 2.2):
// a table holds rows identified by a row key; each row holds named columns
// with values and timestamps. On the wire and in the LSM, one cell is one
// record whose user key is EncodeCellKey(row, column).

#ifndef DIFFINDEX_NET_MESSAGE_H_
#define DIFFINDEX_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

enum class MsgType : uint8_t {
  kPut = 1,       // insert/update/delete cells of one row
  kGetCell = 2,   // read one cell
  kGetRow = 3,    // read all columns of one row
  kScanRows = 4,  // scan rows in a row-key range
  kRawScan = 5,   // scan raw cell keyspace (index lookups)
  kRawDelete = 6, // delete a raw cell key at a timestamp (index repair)
  kHeartbeat = 7,       // region server -> master
  kFetchLayout = 8,     // client -> master: routing table + catalog
  kFlushRegion = 9,     // admin: force a region flush
  kCompactRegion = 10,  // admin: force a major compaction
  kLocalIndexScan = 11, // scan one region's co-located (local) index
  kMultiPut = 12,       // batched puts (client write buffer)
  kMultiGet = 13,       // batched cell reads (read-repair verification)
  kIndexScan = 14,      // one scatter-gather leg over an index region
};

// Short lowercase label for metric names ("put", "get_cell", ...).
const char* MsgTypeName(MsgType type);

// Row keys and column names must not contain '\0' (the cell separator);
// validated at the client.
constexpr char kCellSeparator = '\0';

std::string EncodeCellKey(const Slice& row, const Slice& column);
// Returns false if `cell_key` contains no separator.
bool DecodeCellKey(const Slice& cell_key, std::string* row,
                   std::string* column);

struct Cell {
  std::string column;
  std::string value;
  // kPut writes the value; kTombstone deletes the column ("deletion is
  // handled similarly as put in LSM", Section 4.3).
  bool is_delete = false;
};

struct OldCellValue {
  std::string column;
  bool found = false;
  std::string value;
  Timestamp ts = 0;
};

struct PutRequest {
  std::string table;
  std::string row;
  std::vector<Cell> cells;
  // 0: server assigns from its timestamp oracle (the normal path).
  Timestamp ts = 0;
  // Session consistency: ask the server to return the previous value of
  // each written cell along with the assigned timestamp (Section 5.2).
  bool return_old_values = false;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, PutRequest* req);
};

struct PutResponse {
  Timestamp assigned_ts = 0;
  std::vector<OldCellValue> old_values;  // iff return_old_values

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, PutResponse* resp);
};

struct GetCellRequest {
  std::string table;
  std::string row;
  std::string column;
  Timestamp read_ts = kMaxTimestamp;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, GetCellRequest* req);
};

struct GetCellResponse {
  bool found = false;
  std::string value;
  Timestamp ts = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, GetCellResponse* resp);
};

struct GetRowRequest {
  std::string table;
  std::string row;
  Timestamp read_ts = kMaxTimestamp;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, GetRowRequest* req);
};

struct RowCell {
  std::string column;
  std::string value;
  Timestamp ts = 0;
};

struct GetRowResponse {
  bool found = false;  // at least one live cell
  std::vector<RowCell> cells;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, GetRowResponse* resp);
};

struct ScanRowsRequest {
  std::string table;
  std::string start_row;  // inclusive
  std::string end_row;    // exclusive; empty = unbounded
  Timestamp read_ts = kMaxTimestamp;
  uint32_t limit_rows = 0;  // 0 = unlimited (within the region)

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, ScanRowsRequest* req);
};

struct ScannedRow {
  std::string row;
  std::vector<RowCell> cells;
};

struct ScanRowsResponse {
  std::vector<ScannedRow> rows;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, ScanRowsResponse* resp);
};

// Raw scans/deletes address the underlying cell keyspace directly; index
// tables are key-only so their "rows" are the concatenated
// value ⊕ rowkey entries.
struct RawScanRequest {
  std::string table;
  std::string start_key;
  std::string end_key;  // exclusive; empty = unbounded
  Timestamp read_ts = kMaxTimestamp;
  uint32_t limit = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, RawScanRequest* req);
};

struct RawEntry {
  std::string key;
  std::string value;
  Timestamp ts = 0;
};

struct RawScanResponse {
  std::vector<RawEntry> entries;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, RawScanResponse* resp);
};

struct RawDeleteRequest {
  std::string table;
  std::string key;
  Timestamp ts = 0;  // tombstone timestamp (masks versions <= ts)

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, RawDeleteRequest* req);
};

struct HeartbeatRequest {
  uint32_t server_id = 0;
  uint64_t auq_depth = 0;  // exported for monitoring (Figure 11 probe)

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, HeartbeatRequest* req);
};

struct RegionInfoWire {
  std::string table;
  uint64_t region_id = 0;
  std::string start_row;  // inclusive
  std::string end_row;    // exclusive; empty = unbounded
  uint32_t server_id = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, RegionInfoWire* info);
};

struct IndexInfoWire {
  std::string name;
  std::string column;
  uint8_t scheme = 0;  // cast of core::IndexScheme
  std::string index_table;
  std::vector<std::string> extra_columns;  // composite index components
  std::string dense_field;   // empty: index the whole column value
  std::string dense_schema;  // serialized DenseColumnSchema
  bool is_local = false;     // region-co-located index (broadcast reads)

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, IndexInfoWire* info);
};

struct TableInfoWire {
  std::string name;
  bool is_index_table = false;
  std::vector<IndexInfoWire> indexes;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, TableInfoWire* info);
};

struct FetchLayoutResponse {
  uint64_t layout_epoch = 0;
  std::vector<TableInfoWire> tables;
  std::vector<RegionInfoWire> regions;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, FetchLayoutResponse* resp);
};

struct RegionAdminRequest {  // kFlushRegion / kCompactRegion
  std::string table;
  uint64_t region_id = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, RegionAdminRequest* req);
};

// Batched puts: the client write buffer ("client buffer" in Section 8.1 —
// the paper disables it for fair latency comparisons and notes throughput
// "can be further optimized by enabling client buffer for update") ships
// many puts to one region server in a single round trip. Each put is
// applied independently (per-row atomicity, as in HBase's multi-put).
struct MultiPutRequest {
  std::vector<PutRequest> puts;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, MultiPutRequest* req);
};

struct MultiPutResponse {
  std::vector<Timestamp> assigned_ts;  // parallel to the request's puts

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, MultiPutResponse* resp);
};

// Scan of one region's local index (Section 3.1: a local index co-locates
// with its region, so a query must be broadcast to every region). The
// response reuses RawScanResponse.
struct LocalIndexScanRequest {
  std::string table;
  uint64_t region_id = 0;
  std::string index_name;
  std::string start_key;  // index-row range within the local index
  std::string end_key;
  Timestamp read_ts = kMaxTimestamp;
  uint32_t limit = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, LocalIndexScanRequest* req);
};

// Batched cell reads: the read-repair verification path groups the
// per-hit base reads of sync-insert's double-check (Algorithm 2) into
// one round trip per base region. Keys may span rows but must all route
// to the same region; a key outside the serving region fails the whole
// batch with WrongRegion (the client refreshes its layout and retries).
struct MultiGetKey {
  std::string row;
  std::string column;
};

struct MultiGetRequest {
  std::string table;
  Timestamp read_ts = kMaxTimestamp;
  std::vector<MultiGetKey> keys;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, MultiGetRequest* req);
};

struct MultiGetEntry {
  bool found = false;
  std::string value;
  Timestamp ts = 0;
};

struct MultiGetResponse {
  std::vector<MultiGetEntry> entries;  // parallel to the request's keys

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, MultiGetResponse* resp);
};

// One scatter-gather leg of a paged index scan: scans a single index
// region, addressed by region id so a layout move fails fast with
// WrongRegion instead of silently reading a different key range. The
// server clamps [start_key, end_key) to the region's boundaries and
// reports `more` + `resume_key` when the page limit truncated the leg.
struct IndexScanRequest {
  std::string table;  // the index table
  uint64_t region_id = 0;
  std::string start_key;  // inclusive
  std::string end_key;    // exclusive; empty = unbounded
  Timestamp read_ts = kMaxTimestamp;
  uint32_t limit = 0;  // 0 = unlimited (within the region)

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, IndexScanRequest* req);
};

struct IndexScanResponse {
  std::vector<RawEntry> entries;
  // The leg hit `limit` with rows remaining; resume from `resume_key`.
  bool more = false;
  std::string resume_key;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, IndexScanResponse* resp);
};

}  // namespace diffindex

#endif  // DIFFINDEX_NET_MESSAGE_H_
