// In-process network fabric connecting the master, the region servers and
// clients. Every call serializes its body, pays the injected network
// latency in both directions, and can be failed deliberately (node down,
// pairwise partition) — the substitution for the paper's physical
// 10-machine / 42-VM clusters.

#ifndef DIFFINDEX_NET_FABRIC_H_
#define DIFFINDEX_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/latency_model.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffindex {

using NodeId = uint32_t;

constexpr NodeId kMasterNode = 0;
// Client node ids start here; servers are 1..N.
constexpr NodeId kClientNodeBase = 1000000;

class Fabric {
 public:
  // Handler runs on the caller's thread (thread-per-request server model);
  // it must be thread-safe. Returns the application Status; `*response`
  // carries the encoded response body.
  using Handler =
      std::function<Status(MsgType type, Slice body, std::string* response)>;

  explicit Fabric(const LatencyModel* latency) : latency_(latency) {}

  void RegisterNode(NodeId node, Handler handler);
  void UnregisterNode(NodeId node);

  // A down node fails all calls to it with Unavailable.
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  // Blocks traffic between a and b (both directions).
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);

  // Message-level faults, softer than down/partition: a request can be
  // dropped (caller sees Unavailable after paying the request hop, like a
  // timeout), delivered twice (the duplicate's response is discarded —
  // exercises handler idempotency), or delayed. Decisions come from one
  // seeded PRNG so schedules replay deterministically. Per-edge faults are
  // symmetric (normalized pair) and override the default; the default
  // applies to every edge without an override.
  struct EdgeFault {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    uint32_t extra_latency_us = 0;

    bool active() const {
      return drop_probability > 0.0 || duplicate_probability > 0.0 ||
             extra_latency_us > 0;
    }
  };
  void SetEdgeFault(NodeId a, NodeId b, EdgeFault fault);
  void SetDefaultFault(EdgeFault fault);
  void ClearFaults();
  void SetFaultSeed(uint64_t seed);

  // Synchronous RPC. Pays one network hop for the request and one for the
  // response. Returns Unavailable if the target is down, unregistered, or
  // partitioned from `from`. The caller's ambient TraceContext (if any) is
  // carried in-band: a child context is encoded into the wire frame ahead
  // of the body, decoded on the serving side, and installed thread-locally
  // for the handler's duration — so spans opened inside the handler chain
  // to the caller's trace exactly as they would across a real network.
  Status Call(NodeId from, NodeId to, MsgType type, const std::string& body,
              std::string* response);

  // Attaches observability sinks (either may be null): per-RPC durations
  // land in `metrics` histogram `span.rpc.<type>` and counter
  // `rpc.<type>.calls`; traced calls also record spans into `traces`.
  void SetObservers(obs::MetricsRegistry* metrics,
                    obs::TraceCollector* traces) {
    metrics_ = metrics;
    traces_ = traces;
  }

  uint64_t calls_made() const {
    return calls_made_.load(std::memory_order_relaxed);
  }

 private:
  const LatencyModel* latency_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
  // mu_ guards the routing/fault tables; Call() copies the handler out
  // under mu_ and invokes it unlocked, so a handler may re-enter the
  // fabric (server-to-server RPC) without deadlocking.
  mutable Mutex mu_;
  std::unordered_map<NodeId, Handler> handlers_ GUARDED_BY(mu_);
  std::set<NodeId> down_ GUARDED_BY(mu_);
  std::set<std::pair<NodeId, NodeId>> partitions_
      GUARDED_BY(mu_);  // normalized (min,max)
  std::map<std::pair<NodeId, NodeId>, EdgeFault> edge_faults_
      GUARDED_BY(mu_);  // normalized
  EdgeFault default_fault_ GUARDED_BY(mu_);
  Random fault_rng_ GUARDED_BY(mu_){0};
  std::atomic<uint64_t> calls_made_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_NET_FABRIC_H_
