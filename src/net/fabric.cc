#include "net/fabric.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace diffindex {

void Fabric::RegisterNode(NodeId node, Handler handler) {
  MutexLock lock(mu_);
  handlers_[node] = std::move(handler);
  down_.erase(node);
}

void Fabric::UnregisterNode(NodeId node) {
  MutexLock lock(mu_);
  handlers_.erase(node);
}

void Fabric::SetNodeDown(NodeId node, bool down) {
  MutexLock lock(mu_);
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

bool Fabric::IsNodeDown(NodeId node) const {
  MutexLock lock(mu_);
  return down_.count(node) > 0;
}

void Fabric::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (a > b) std::swap(a, b);
  MutexLock lock(mu_);
  if (partitioned) {
    partitions_.insert({a, b});
  } else {
    partitions_.erase({a, b});
  }
}

void Fabric::SetEdgeFault(NodeId a, NodeId b, EdgeFault fault) {
  if (a > b) std::swap(a, b);
  MutexLock lock(mu_);
  if (fault.active()) {
    edge_faults_[{a, b}] = fault;
  } else {
    edge_faults_.erase({a, b});
  }
}

void Fabric::SetDefaultFault(EdgeFault fault) {
  MutexLock lock(mu_);
  default_fault_ = fault;
}

void Fabric::ClearFaults() {
  MutexLock lock(mu_);
  edge_faults_.clear();
  default_fault_ = EdgeFault();
}

void Fabric::SetFaultSeed(uint64_t seed) {
  MutexLock lock(mu_);
  fault_rng_ = Random(seed);
}

Status Fabric::Call(NodeId from, NodeId to, MsgType type,
                    const std::string& body, std::string* response) {
  Handler handler;
  bool drop = false;
  bool duplicate = false;
  uint32_t extra_latency_us = 0;
  {
    MutexLock lock(mu_);
    if (down_.count(to) > 0) {
      return Status::Unavailable("node " + std::to_string(to) + " is down");
    }
    const auto key = from < to ? std::make_pair(from, to)
                               : std::make_pair(to, from);
    if (partitions_.count(key) > 0) {
      return Status::Unavailable("network partition between " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      return Status::Unavailable("node " + std::to_string(to) +
                                 " not registered");
    }
    handler = it->second;

    auto fault_it = edge_faults_.find(key);
    const EdgeFault& fault =
        fault_it != edge_faults_.end() ? fault_it->second : default_fault_;
    if (fault.active()) {
      if (fault.drop_probability > 0.0 &&
          fault_rng_.NextDouble() < fault.drop_probability) {
        drop = true;
      } else if (fault.duplicate_probability > 0.0 &&
                 fault_rng_.NextDouble() < fault.duplicate_probability) {
        duplicate = true;
      }
      extra_latency_us = fault.extra_latency_us;
    }
  }

  if (extra_latency_us > 0) {
    if (metrics_ != nullptr) metrics_->GetCounter("fault.net.delayed")->Add();
    std::this_thread::sleep_for(std::chrono::microseconds(extra_latency_us));
  }
  if (drop) {
    // The request leaves the caller and vanishes; the caller pays the hop
    // and sees the same Unavailable a timeout would produce.
    if (metrics_ != nullptr) metrics_->GetCounter("fault.net.dropped")->Add();
    if (latency_ != nullptr) {
      latency_->NetworkHop();
      latency_->Settle();
    }
    return Status::Unavailable("injected message drop between " +
                               std::to_string(from) + " and " +
                               std::to_string(to));
  }

  calls_made_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->GetCounter(std::string("rpc.") + MsgTypeName(type) + ".calls")
        ->Add();
  }

  // Wire framing: [trace context][body]. The context is round-tripped
  // through real encode/decode (like every message body on this fabric)
  // so the serving side works from the decoded bytes, not shared memory.
  const obs::TraceContext& ambient = obs::CurrentTraceContext();
  std::string frame;
  (ambient.active() ? ambient.Child() : obs::TraceContext()).EncodeTo(&frame);
  frame.append(body);

  Slice on_wire(frame);
  obs::TraceContext server_ctx;
  if (!obs::TraceContext::DecodeFrom(&on_wire, &server_ctx)) {
    return Status::Corruption("malformed rpc trace frame");
  }

  if (latency_ != nullptr) latency_->NetworkHop();  // request on the wire
  Status s;
  {
    // Handler runs under the decoded (server-side) context; its spans
    // parent to the caller's span through the wire-carried ids.
    obs::ScopedTraceContext scope(std::move(server_ctx));
    obs::SpanTimer span(metrics_, traces_,
                        std::string("rpc.") + MsgTypeName(type));
    if (duplicate) {
      // The "network" delivered the request twice; only the second
      // response makes it back. Handlers must tolerate the replay.
      if (metrics_ != nullptr) {
        metrics_->GetCounter("fault.net.duplicated")->Add();
      }
      std::string discarded;
      // The duplicate's status is discarded by design: only the second
      // delivery's response makes it back to the caller.
      handler(type, on_wire, &discarded).IgnoreError();
    }
    s = handler(type, on_wire, response);
  }
  if (latency_ != nullptr) {
    latency_->NetworkHop();  // response on the wire
    // Materialize this RPC's whole cost (hops + WAL/disk work accrued by
    // the handler on this thread) as a single sleep.
    latency_->Settle();
  }
  return s;
}

}  // namespace diffindex
