#include "net/fabric.h"

#include <atomic>

namespace diffindex {

void Fabric::RegisterNode(NodeId node, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[node] = std::move(handler);
  down_.erase(node);
}

void Fabric::UnregisterNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(node);
}

void Fabric::SetNodeDown(NodeId node, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

bool Fabric::IsNodeDown(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_.count(node) > 0;
}

void Fabric::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (a > b) std::swap(a, b);
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitions_.insert({a, b});
  } else {
    partitions_.erase({a, b});
  }
}

Status Fabric::Call(NodeId from, NodeId to, MsgType type,
                    const std::string& body, std::string* response) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_.count(to) > 0) {
      return Status::Unavailable("node " + std::to_string(to) + " is down");
    }
    const auto key = from < to ? std::make_pair(from, to)
                               : std::make_pair(to, from);
    if (partitions_.count(key) > 0) {
      return Status::Unavailable("network partition between " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      return Status::Unavailable("node " + std::to_string(to) +
                                 " not registered");
    }
    handler = it->second;
  }

  calls_made_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->GetCounter(std::string("rpc.") + MsgTypeName(type) + ".calls")
        ->Add();
  }

  // Wire framing: [trace context][body]. The context is round-tripped
  // through real encode/decode (like every message body on this fabric)
  // so the serving side works from the decoded bytes, not shared memory.
  const obs::TraceContext& ambient = obs::CurrentTraceContext();
  std::string frame;
  (ambient.active() ? ambient.Child() : obs::TraceContext()).EncodeTo(&frame);
  frame.append(body);

  Slice on_wire(frame);
  obs::TraceContext server_ctx;
  if (!obs::TraceContext::DecodeFrom(&on_wire, &server_ctx)) {
    return Status::Corruption("malformed rpc trace frame");
  }

  if (latency_ != nullptr) latency_->NetworkHop();  // request on the wire
  Status s;
  {
    // Handler runs under the decoded (server-side) context; its spans
    // parent to the caller's span through the wire-carried ids.
    obs::ScopedTraceContext scope(std::move(server_ctx));
    obs::SpanTimer span(metrics_, traces_,
                        std::string("rpc.") + MsgTypeName(type));
    s = handler(type, on_wire, response);
  }
  if (latency_ != nullptr) {
    latency_->NetworkHop();  // response on the wire
    // Materialize this RPC's whole cost (hops + WAL/disk work accrued by
    // the handler on this thread) as a single sleep.
    latency_->Settle();
  }
  return s;
}

}  // namespace diffindex
