// Client library: caches a copy of the partition map and routes requests
// to the region server serving the key (Section 2.2). On WrongRegion or
// Unavailable errors it refreshes the map from the master and retries —
// this is how the cluster keeps serving through region reassignment after
// a server failure.
//
// The same class doubles as the *internal* client that Diff-Index's
// server-side observers use to deliver index puts/deletes to the (remote)
// index regions.

#ifndef DIFFINDEX_CLUSTER_CLIENT_H_
#define DIFFINDEX_CLUSTER_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "net/fabric.h"
#include "net/message.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace diffindex {

struct ClientOptions {
  int max_retries = 8;
  // Retry sleeps grow exponentially from retry_backoff_ms (attempt 1)
  // doubling up to retry_backoff_max_ms, with seeded jitter drawing each
  // sleep uniformly from [cap/2, cap] — the standard defense against
  // retry storms synchronizing against a recovering server.
  int retry_backoff_ms = 2;
  int retry_backoff_max_ms = 64;
  // Seed for the jitter PRNG; 0 derives one from the client's node id so
  // distinct clients desynchronize by default.
  uint64_t retry_jitter_seed = 0;
  // Observability sinks (either may be null); also inherited by the
  // DiffIndexClient / IndexReader built on top of this client. Exports
  // counters `client.retries` (every retry sleep) and
  // `client.retry_exhausted` (gave up after max_retries).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* traces = nullptr;
};

class Client {
 public:
  Client(Fabric* fabric, NodeId self_node,
         const ClientOptions& options = ClientOptions());

  // ---- Data plane ----

  // ts == 0: server assigns. resp may be null.
  Status Put(const std::string& table, const std::string& row,
             std::vector<Cell> cells, Timestamp ts = 0,
             bool return_old_values = false, PutResponse* resp = nullptr);

  Status PutColumn(const std::string& table, const std::string& row,
                   const std::string& column, const std::string& value);

  struct RowPut {
    std::string row;
    std::vector<Cell> cells;
  };
  // Batched write: groups rows by owning region server and ships one
  // multi-put RPC per server (the "client buffer" path of Section 8.1).
  // Per-row atomicity only.
  Status MultiPut(const std::string& table, std::vector<RowPut> puts);

  // Cross-table batched write: each request carries its own table and
  // (typically explicit) timestamp; requests are grouped by owning server
  // and shipped as one multi-put RPC per server. Used by the batched APS
  // drain to deliver one coalesced batch's PI/DI entries — which span
  // multiple index tables — in as few round trips as the layout allows.
  // Per-row atomicity only; callers retry the whole batch on error
  // (idempotent with explicit timestamps).
  Status MultiPutBatch(std::vector<PutRequest> puts);

  Status DeleteColumns(const std::string& table, const std::string& row,
                       const std::vector<std::string>& columns,
                       Timestamp ts = 0);

  Status GetCell(const std::string& table, const std::string& row,
                 const std::string& column, Timestamp read_ts,
                 std::string* value, Timestamp* version_ts = nullptr);

  // Batched cell reads: groups keys by owning region server and ships one
  // multi-get RPC per server (the read-repair verification path of the
  // query engine). `entries` comes back parallel to `keys`; a missing
  // cell is found=false, not an error. The whole batch is retried on
  // WrongRegion/Unavailable (reads are idempotent).
  Status MultiGet(const std::string& table,
                  const std::vector<MultiGetKey>& keys, Timestamp read_ts,
                  std::vector<MultiGetEntry>* entries);

  // One scatter-gather leg of a paged index scan: scans a single region
  // of `index_table`, addressed by region id. No retry loop here — the
  // query engine retries at page granularity after a layout refresh.
  Status IndexScanRegion(const std::string& index_table,
                         const RegionInfoWire& region,
                         const std::string& start_key,
                         const std::string& end_key, Timestamp read_ts,
                         uint32_t limit, IndexScanResponse* resp);

  Status GetRow(const std::string& table, const std::string& row,
                Timestamp read_ts, GetRowResponse* resp);

  // Scans [start_row, end_row) across region boundaries; limit 0 =
  // unlimited.
  Status ScanRows(const std::string& table, const std::string& start_row,
                  const std::string& end_row, Timestamp read_ts,
                  uint32_t limit, std::vector<ScannedRow>* rows);

  // Local-index query (Section 3.1): broadcasts the scan to EVERY region
  // of the base table and merges the per-region results — the cost
  // profile that makes local indexes poor for highly selective queries.
  Status ScanLocalIndex(const std::string& table,
                        const std::string& index_name,
                        const std::string& start_key,
                        const std::string& end_key, Timestamp read_ts,
                        uint32_t limit, std::vector<RawEntry>* entries);

  // ---- Admin helpers (tests and benchmarks) ----

  Status FlushTable(const std::string& table);
  Status CompactTable(const std::string& table);

  // ---- Layout ----

  Status RefreshLayout();
  CatalogSnapshot catalog();
  // Region hosting `row`, from the cached layout.
  Status RouteRow(const std::string& table, const Slice& row,
                  RegionInfoWire* info);
  std::vector<RegionInfoWire> TableRegions(const std::string& table);

  NodeId self_node() const { return self_node_; }
  uint64_t layout_refreshes() const { return layout_refreshes_; }
  obs::MetricsRegistry* metrics() const { return options_.metrics; }
  obs::TraceCollector* traces() const { return options_.traces; }

 private:
  // Sends to the server owning (table, row); refreshes layout and retries
  // on routing/availability errors.
  Status CallRegion(const std::string& table, const Slice& row, MsgType type,
                    const std::string& body, std::string* response);

  Status EnsureLayoutLocked() REQUIRES(mu_);

  // Sleeps for the capped-exponential + jittered backoff of `attempt`
  // (1-based) and counts the retry.
  void BackoffBeforeRetry(int attempt);
  // Counts a retry loop that ran out of attempts.
  void CountRetryExhausted();

  Fabric* const fabric_;
  const NodeId self_node_;
  const ClientOptions options_;

  // Separate lock for the jitter PRNG: backoff sleeps must not hold mu_,
  // or a retrying call would block concurrent routing lookups.
  Mutex backoff_mu_;
  Random backoff_rng_ GUARDED_BY(backoff_mu_);

  Mutex mu_;
  bool layout_valid_ GUARDED_BY(mu_) = false;
  CatalogSnapshot catalog_ GUARDED_BY(mu_);
  std::vector<RegionInfoWire> regions_
      GUARDED_BY(mu_);  // sorted by (table, start_row)
  uint64_t layout_refreshes_ GUARDED_BY(mu_) = 0;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_CLIENT_H_
