// Catalog: table and index metadata. The master owns the authoritative
// copy (the paper keeps it in the Big SQL catalog plus the HBase table
// descriptor); clients and region servers work from fetched snapshots.

#ifndef DIFFINDEX_CLUSTER_CATALOG_H_
#define DIFFINDEX_CLUSTER_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dense_column.h"
#include "net/message.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffindex {

// The spectrum of index maintenance schemes (Figure 4), chosen per index.
enum class IndexScheme : uint8_t {
  kSyncFull = 0,    // causal consistent (Algorithm 1)
  kSyncInsert = 1,  // causal with read-repair (Algorithm 2)
  kAsyncSimple = 2, // eventual, via AUQ/APS (Algorithms 3-4)
  kAsyncSession = 3 // async-simple + client session cache (read-your-write)
};

const char* IndexSchemeName(IndexScheme scheme);

struct IndexDescriptor {
  std::string name;
  // The indexed column. With extra_columns non-empty this is the leading
  // component of a composite index.
  std::string column;
  IndexScheme scheme = IndexScheme::kSyncFull;
  std::vector<std::string> extra_columns;
  // Dense-column indexing (Section 7): when dense_field is non-empty, the
  // indexed column holds a dense-encoded cell and the index key is built
  // from this field of it, extracted via dense_schema.
  std::string dense_field;
  DenseColumnSchema dense_schema;
  // Local index (Section 3.1): entries co-locate with their base region
  // — updates never leave the region server (fast) but a query must be
  // broadcast to every region (costly for selective queries). Local
  // indexes are always maintained synchronously (like Huawei's hindex,
  // the paper's local-only comparison point); `scheme` is ignored.
  bool is_local = false;
  // Name of the backing key-only table ("__idx_<table>_<name>"); filled by
  // the master at CREATE INDEX time. Empty for local indexes.
  std::string index_table;
};

// Computes the index component contributed by the primary indexed
// column's raw cell value, applying dense-field extraction when the index
// is configured for it. NotFound when a dense cell lacks the field.
Status IndexComponentFromCell(const IndexDescriptor& index,
                              const Slice& raw_value,
                              std::string* component);

struct TableDescriptor {
  std::string name;
  bool is_index_table = false;
  std::vector<IndexDescriptor> indexes;
};

std::string IndexTableNameFor(const std::string& base_table,
                              const std::string& index_name);

IndexInfoWire ToWire(const IndexDescriptor& index);
IndexDescriptor FromWire(const IndexInfoWire& wire);
TableInfoWire ToWire(const TableDescriptor& table);
TableDescriptor FromWire(const TableInfoWire& wire);

class Catalog {
 public:
  Status AddTable(const TableDescriptor& table);
  Status AddIndex(const std::string& table, const IndexDescriptor& index);
  Status DropIndex(const std::string& table, const std::string& index_name);
  // Live scheme change (schemes are read per put from catalog snapshots,
  // so the switch governs all subsequent maintenance).
  Status SetIndexScheme(const std::string& table,
                        const std::string& index_name, IndexScheme scheme);

  std::optional<TableDescriptor> GetTable(const std::string& name) const;
  std::vector<TableDescriptor> ListTables() const;

  uint64_t epoch() const;

 private:
  mutable Mutex mu_;
  // epoch_ bumps on every mutation so servers can cheaply detect a stale
  // pushed snapshot.
  std::vector<TableDescriptor> tables_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

// Client/server-side immutable snapshot with fast lookups.
class CatalogSnapshot {
 public:
  CatalogSnapshot() = default;
  explicit CatalogSnapshot(std::vector<TableDescriptor> tables)
      : tables_(std::move(tables)) {}

  const TableDescriptor* GetTable(const std::string& name) const {
    for (const auto& table : tables_) {
      if (table.name == name) return &table;
    }
    return nullptr;
  }
  const std::vector<TableDescriptor>& tables() const { return tables_; }

 private:
  std::vector<TableDescriptor> tables_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_CATALOG_H_
