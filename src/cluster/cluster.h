// Cluster: one-call harness that assembles the whole simulated deployment
// — fabric, master, N region servers each with its Diff-Index coprocessors
// (IndexManager: observers + AUQ/APS) — the stand-in for the paper's
// physical HBase clusters. Used by the tests, the examples and every
// benchmark.

#ifndef DIFFINDEX_CLUSTER_CLUSTER_H_
#define DIFFINDEX_CLUSTER_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/master.h"
#include "cluster/region_server.h"
#include "core/auq.h"
#include "core/diff_index_client.h"
#include "core/observers.h"
#include "core/op_stats.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace diffindex {

struct ClusterOptions {
  int num_servers = 3;
  int regions_per_table = 8;

  // Injected device/network costs. scale = 0 (default) disables cost
  // injection for fast tests; benchmarks set scale = 1.
  LatencyParams latency = [] {
    LatencyParams p;
    p.scale = 0;
    return p;
  }();

  RegionServerOptions server;
  AuqOptions auq;
  MasterOptions master;
  // Template for every client this cluster hands out (NewClient /
  // NewDiffIndexClient and the servers' internal index-maintenance
  // clients); metrics/traces/jitter-seed are filled in per client.
  ClientOptions client;

  // Root directory for WALs and region data (the "HDFS"). Empty: a fresh
  // directory under /tmp. remove_data_on_destroy wipes it in ~Cluster.
  std::string data_root;
  bool remove_data_on_destroy = true;

  // Filesystem used by every server's WAL/SSTs (and for data_root setup /
  // teardown). Null: Env::Default(). The chaos harness passes a
  // fault::FaultEnv here so injected I/O errors flow through the real
  // write path.
  Env* env = nullptr;
};

class Cluster {
 public:
  static Status Create(const ClusterOptions& options,
                       std::unique_ptr<Cluster>* cluster);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Master* master() { return master_.get(); }
  Fabric* fabric() { return fabric_.get(); }
  LatencyModel* latency() { return &latency_; }
  OpStats* stats() { return &stats_; }
  // Cluster-wide observability: every node, client and subsystem of this
  // cluster reports into the same registry/collector.
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::TraceCollector* traces() { return &traces_; }
  const std::string& data_root() const { return options_.data_root; }

  RegionServer* server(NodeId id);
  std::vector<NodeId> server_ids() const;
  IndexManager* index_manager(NodeId id);

  // Fresh client endpoints (each gets its own fabric node id).
  std::shared_ptr<Client> NewClient();
  std::unique_ptr<DiffIndexClient> NewDiffIndexClient(
      const SessionOptions& session_options = SessionOptions());

  // ---- Membership / failure injection ----

  Status AddServer(NodeId id);
  // Simulates a crash: the node drops off the fabric, its memtables and
  // AUQ are lost, and the master reassigns + recovers its regions from
  // the shared WAL/SST storage.
  Status KillServer(NodeId id);
  // Crash WITHOUT telling the master — the heartbeat-based failure
  // detector has to notice on its own (requires
  // MasterOptions::failure_detect_ms > 0).
  Status SilentlyCrashServer(NodeId id);

  // Aggregate AUQ staleness across servers into *out (Figure 11 probe).
  void AggregateStaleness(Histogram* out) const;
  uint64_t TotalFlushStallMicros() const;
  uint64_t TotalFlushes() const;

 private:
  explicit Cluster(const ClusterOptions& options);
  Status Init();

  struct ServerBundle {
    std::shared_ptr<RegionServer> server;
    std::shared_ptr<Client> internal_client;
    std::unique_ptr<IndexManager> index_manager;
  };

  Status StartServer(NodeId id, ServerBundle* bundle);

  ClusterOptions options_;
  LatencyModel latency_;
  OpStats stats_;
  obs::MetricsRegistry metrics_;
  obs::TraceCollector traces_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<Master> master_;
  std::map<NodeId, ServerBundle> servers_;
  // Crashed servers are quarantined (never destroyed mid-RPC) until the
  // cluster itself is torn down.
  std::vector<ServerBundle> graveyard_;
  std::atomic<NodeId> next_client_node_{kClientNodeBase};
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_CLUSTER_H_
