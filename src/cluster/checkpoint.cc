#include "cluster/checkpoint.h"

#include <memory>

#include "cluster/region.h"
#include "fault/failpoint.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/slice.h"

namespace diffindex {

namespace {

constexpr char kCheckpointName[] = "CHECKPOINT";
constexpr char kCheckpointTmpName[] = "CHECKPOINT.tmp";

// masked crc32c of the payload (4) + payload length (4).
constexpr size_t kHeaderSize = 8;

void EncodePayload(const RegionCheckpoint& ckpt, std::string* out) {
  PutLengthPrefixedSlice(out, ckpt.table);
  PutVarint64(out, ckpt.region_id);
  PutVarint64(out, ckpt.wal_seq);
  PutFixed64(out, ckpt.flushed_ts);
}

bool DecodePayload(Slice in, RegionCheckpoint* ckpt) {
  return GetLengthPrefixedString(&in, &ckpt->table) &&
         GetVarint64(&in, &ckpt->region_id) &&
         GetVarint64(&in, &ckpt->wal_seq) && GetFixed64(&in, &ckpt->flushed_ts) &&
         in.empty();
}

}  // namespace

std::string RegionCheckpointPath(const std::string& data_root,
                                 const std::string& table,
                                 uint64_t region_id) {
  return Region::DataDir(data_root, table, region_id) + "/" + kCheckpointName;
}

Status WriteRegionCheckpoint(Env* env, const std::string& data_root,
                             const RegionCheckpoint& ckpt) {
  DIFFINDEX_FAILPOINT("checkpoint.write");
  std::string payload;
  EncodePayload(ckpt, &payload);
  std::string framed;
  PutFixed32(&framed,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed += payload;

  const std::string dir =
      Region::DataDir(data_root, ckpt.table, ckpt.region_id);
  const std::string tmp_path = dir + "/" + kCheckpointTmpName;
  std::unique_ptr<WritableFile> file;
  DIFFINDEX_RETURN_NOT_OK(env->NewWritableFile(tmp_path, &file));
  DIFFINDEX_RETURN_NOT_OK(file->Append(framed));
  // ANALYZER_WAIVE(blocking-under-lock): checkpoints are written during
  // flush while the gate is held exclusively; a slow or failed durable
  // write only widens the WAL replay window, it cannot deadlock.
  DIFFINDEX_RETURN_NOT_OK(file->Sync());
  DIFFINDEX_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp_path, dir + "/" + kCheckpointName);
}

Status ReadRegionCheckpoint(Env* env, const std::string& data_root,
                            const std::string& table, uint64_t region_id,
                            RegionCheckpoint* out) {
  const std::string path = RegionCheckpointPath(data_root, table, region_id);
  if (!env->FileExists(path)) {
    return Status::NotFound("no checkpoint: " + path);
  }
  uint64_t file_size = 0;
  DIFFINDEX_RETURN_NOT_OK(env->GetFileSize(path, &file_size));
  std::unique_ptr<SequentialFile> file;
  DIFFINDEX_RETURN_NOT_OK(env->NewSequentialFile(path, &file));
  std::string scratch(file_size, '\0');
  Slice contents;
  DIFFINDEX_RETURN_NOT_OK(file->Read(file_size, &contents, scratch.data()));

  if (contents.size() < kHeaderSize) {
    return Status::Corruption("checkpoint truncated: " + path);
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(contents.data()));
  const uint32_t length = DecodeFixed32(contents.data() + 4);
  if (contents.size() < kHeaderSize + length) {
    return Status::Corruption("checkpoint truncated: " + path);
  }
  Slice payload(contents.data() + kHeaderSize, length);
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("checkpoint crc mismatch: " + path);
  }
  RegionCheckpoint ckpt;
  if (!DecodePayload(payload, &ckpt)) {
    return Status::Corruption("checkpoint undecodable: " + path);
  }
  if (ckpt.table != table || ckpt.region_id != region_id) {
    // A checkpoint naming another region in this directory can only come
    // from file-placement corruption; trusting its wal_seq could skip
    // edits that were never flushed here.
    return Status::Corruption("checkpoint region mismatch: " + path);
  }
  *out = std::move(ckpt);
  return Status::OK();
}

}  // namespace diffindex
