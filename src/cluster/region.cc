#include "cluster/region.h"

namespace diffindex {

std::string Region::DataDir(const std::string& data_root,
                            const std::string& table, uint64_t region_id) {
  return data_root + "/tables/" + table + "/r" + std::to_string(region_id);
}

std::string Region::LocalIndexDir(const std::string& data_root,
                                  const std::string& table,
                                  uint64_t region_id) {
  return DataDir(data_root, table, region_id) + "/lidx";
}

Status Region::Open(const LsmOptions& options, const std::string& data_root,
                    const RegionInfoWire& info,
                    std::unique_ptr<Region>* region) {
  std::unique_ptr<LsmTree> tree;
  DIFFINDEX_RETURN_NOT_OK(
      LsmTree::Open(options, DataDir(data_root, info.table, info.region_id),
                    &tree));
  // Any stale local index from a previous owner is discarded; the index
  // maintenance hooks rebuild it from the just-opened base tree.
  const std::string lidx_dir =
      LocalIndexDir(data_root, info.table, info.region_id);
  DIFFINDEX_RETURN_NOT_OK(options.env->RemoveDirRecursively(lidx_dir));
  // NOLINT(diffindex-naked-new): private-ctor factory
  region->reset(new Region(info, std::move(tree), lidx_dir));
  return Status::OK();
}

Status Region::EnsureLocalIndexTree(const LsmOptions& options) {
  if (local_index_tree_ != nullptr) return Status::OK();
  DIFFINDEX_RETURN_NOT_OK(
      LsmTree::Open(options, local_index_dir_, &local_index_tree_));
  local_index_view_.store(local_index_tree_.get(),
                          std::memory_order_release);
  return Status::OK();
}

}  // namespace diffindex
