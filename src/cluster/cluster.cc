#include "cluster/cluster.h"

#include "fault/failpoint.h"
#include "util/logging.h"

namespace diffindex {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), latency_(options.latency) {}

Status Cluster::Create(const ClusterOptions& options,
                       std::unique_ptr<Cluster>* cluster) {
  // NOLINT(diffindex-naked-new): private-ctor factory
  std::unique_ptr<Cluster> c(new Cluster(options));
  DIFFINDEX_RETURN_NOT_OK(c->Init());
  *cluster = std::move(c);
  return Status::OK();
}

Cluster::~Cluster() {
  // Stop index managers first (their APS threads talk over the fabric),
  // then servers, then the master.
  for (auto& [id, bundle] : servers_) {
    if (bundle.index_manager != nullptr) bundle.index_manager->Shutdown();
  }
  for (auto& bundle : graveyard_) {
    if (bundle.index_manager != nullptr) bundle.index_manager->Shutdown();
  }
  for (auto& [id, bundle] : servers_) {
    // Teardown keeps going even if one server's final flush fails.
    bundle.server->Stop().IgnoreError();
  }
  if (master_ != nullptr) master_->Stop();
  servers_.clear();
  graveyard_.clear();
  // Detach the global failpoint registry from this cluster's metrics (if
  // Init attached it) before the registry member dies.
  auto* failpoints = fault::FailpointRegistry::Global();
  if (failpoints->metrics() == &metrics_) failpoints->SetMetrics(nullptr);
  if (options_.remove_data_on_destroy && !options_.data_root.empty()) {
    // Best-effort cleanup of the test/bench data root.
    options_.env->RemoveDirRecursively(options_.data_root).IgnoreError();
  }
}

Status Cluster::Init() {
  if (options_.env == nullptr) options_.env = Env::Default();
  if (options_.data_root.empty()) {
    options_.data_root =
        "/tmp/diffindex_cluster_" +
        std::to_string(TimestampOracle::NowMicros()) + "_" +
        std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff);
  }
  DIFFINDEX_RETURN_NOT_OK(
      options_.env->CreateDirIfMissing(options_.data_root));

  options_.server.lsm.env = options_.env;
  options_.server.lsm.latency = &latency_;
  options_.master.default_regions_per_table = options_.regions_per_table;

  // One registry/collector for the whole deployment: fabric, servers,
  // LSM trees, AUQ/APS and clients all report here.
  options_.server.metrics = &metrics_;
  options_.server.traces = &traces_;
  options_.server.lsm.metrics = &metrics_;
  options_.master.metrics = &metrics_;
  options_.auq.metrics = &metrics_;
  options_.auq.traces = &traces_;
  stats_.Bind(&metrics_);
  // Injected faults count into the same deployment-wide registry
  // (fault.injected.* from failpoints, fault.net.* from the fabric).
  fault::FailpointRegistry::Global()->SetMetrics(&metrics_);

  fabric_ = std::make_unique<Fabric>(&latency_);
  fabric_->SetObservers(&metrics_, &traces_);
  master_ = std::make_unique<Master>(fabric_.get(), options_.data_root,
                                     options_.master);
  DIFFINDEX_RETURN_NOT_OK(master_->Start());

  for (int i = 1; i <= options_.num_servers; i++) {
    DIFFINDEX_RETURN_NOT_OK(AddServer(static_cast<NodeId>(i)));
  }
  return Status::OK();
}

Status Cluster::StartServer(NodeId id, ServerBundle* bundle) {
  bundle->server = std::make_shared<RegionServer>(
      id, options_.data_root, fabric_.get(), options_.server);
  DIFFINDEX_RETURN_NOT_OK(bundle->server->Start());
  // The coprocessors deliver index updates through an internal client
  // whose fabric identity is the server itself.
  ClientOptions internal_opts = options_.client;
  internal_opts.metrics = &metrics_;
  internal_opts.traces = &traces_;
  bundle->internal_client =
      std::make_shared<Client>(fabric_.get(), id, internal_opts);
  bundle->index_manager = std::make_unique<IndexManager>(
      bundle->server.get(), bundle->internal_client, &stats_, options_.auq);
  bundle->server->SetHooks(bundle->index_manager.get());
  return Status::OK();
}

Status Cluster::AddServer(NodeId id) {
  if (servers_.count(id) > 0) {
    return Status::InvalidArgument("server id in use");
  }
  ServerBundle bundle;
  DIFFINDEX_RETURN_NOT_OK(StartServer(id, &bundle));
  DIFFINDEX_RETURN_NOT_OK(master_->RegisterServer(bundle.server.get()));
  servers_[id] = std::move(bundle);
  return Status::OK();
}

Status Cluster::SilentlyCrashServer(NodeId id) {
  auto it = servers_.find(id);
  if (it == servers_.end()) return Status::NotFound("no such server");

  // The crash: node unreachable, pending AUQ work and memtables lost.
  // Abandon (not Shutdown) the index manager: a graceful shutdown would
  // keep delivering the queued index updates — work a real crash loses —
  // and would leave their count stuck in the shared auq.depth gauge.
  fabric_->SetNodeDown(id, true);
  fabric_->UnregisterNode(id);
  it->second.server->Crash();
  it->second.index_manager->Abandon();

  // Quarantine the object (in-flight RPC handlers may still reference it).
  graveyard_.push_back(std::move(it->second));
  servers_.erase(it);
  return Status::OK();
}

Status Cluster::KillServer(NodeId id) {
  DIFFINDEX_RETURN_NOT_OK(SilentlyCrashServer(id));
  // ZooKeeper-equivalent: detect and reassign, with WAL split + replay on
  // the new owners.
  return master_->OnServerDead(id);
}

RegionServer* Cluster::server(NodeId id) {
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second.server.get();
}

IndexManager* Cluster::index_manager(NodeId id) {
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second.index_manager.get();
}

std::vector<NodeId> Cluster::server_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, bundle] : servers_) ids.push_back(id);
  return ids;
}

std::shared_ptr<Client> Cluster::NewClient() {
  const NodeId node = next_client_node_.fetch_add(1);
  ClientOptions opts = options_.client;
  opts.metrics = &metrics_;
  opts.traces = &traces_;
  return std::make_shared<Client>(fabric_.get(), node, opts);
}

std::unique_ptr<DiffIndexClient> Cluster::NewDiffIndexClient(
    const SessionOptions& session_options) {
  return std::make_unique<DiffIndexClient>(NewClient(), &stats_,
                                           session_options);
}

void Cluster::AggregateStaleness(Histogram* out) const {
  for (const auto& [id, bundle] : servers_) {
    out->Merge(bundle.index_manager->auq()->staleness());
  }
  for (const auto& bundle : graveyard_) {
    out->Merge(bundle.index_manager->auq()->staleness());
  }
}

uint64_t Cluster::TotalFlushStallMicros() const {
  uint64_t total = 0;
  for (const auto& [id, bundle] : servers_) {
    total += bundle.server->flush_stall_micros();
  }
  return total;
}

uint64_t Cluster::TotalFlushes() const {
  uint64_t total = 0;
  for (const auto& [id, bundle] : servers_) {
    total += bundle.server->flush_count();
  }
  return total;
}

}  // namespace diffindex
